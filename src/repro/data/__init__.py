"""Data substrate: schemas, synthetic long-tail generators and dataset configs.

The paper evaluates on proprietary Alipay service-search logs (Sep. A/B/C) and
three Amazon product-search datasets.  Neither is available offline, so this
package generates synthetic datasets that reproduce the *distributional*
properties the paper depends on:

* a Zipf-like query frequency distribution where ~1 % of queries account for
  ~90 % of search page views (the long-tail phenomenon of Sec. I),
* an intention forest (≤5 levels) to which every query and service attaches,
* intention-conditioned relevance, so that head and tail queries under the
  same intention genuinely share transferable knowledge,
* per-service quality signals (MAU and authoritative rating, Sec. V-F),
* correlation attributes (city, brand, category, …) shared between related
  queries and services (the "correlation condition" of Sec. III), and
* timestamps enabling chronological train/validation/test splits.
"""

from repro.data.amazon import AMAZON_DATASETS, amazon_config
from repro.data.industrial import INDUSTRIAL_DATASETS, industrial_config
from repro.data.loaders import BatchLoader, InteractionBatch
from repro.data.schema import (
    DatasetStatistics,
    Intention,
    Interaction,
    Query,
    Service,
    ServiceSearchDataset,
)
from repro.data.splits import DataSplits, HeadTailSplit, chronological_split, head_tail_split
from repro.data.synthetic import SyntheticConfig, SyntheticDataGenerator, generate_dataset

__all__ = [
    "Query",
    "Service",
    "Intention",
    "Interaction",
    "ServiceSearchDataset",
    "DatasetStatistics",
    "SyntheticConfig",
    "SyntheticDataGenerator",
    "generate_dataset",
    "industrial_config",
    "INDUSTRIAL_DATASETS",
    "amazon_config",
    "AMAZON_DATASETS",
    "chronological_split",
    "head_tail_split",
    "DataSplits",
    "HeadTailSplit",
    "InteractionBatch",
    "BatchLoader",
]
