"""Synthetic stand-ins for the Alipay industrial datasets (Sep. A / B / C).

The paper chronologically splits one month of Alipay logs into three
ten-day sub-datasets.  At full size they contain ~2×10⁷ users and 3.89×10⁹
interactions — far beyond what a laptop-scale pure-Python reproduction can
train on.  The configs below keep the *relative* shape (three consecutive
windows drawn from the same latent scenario with slightly different mixes,
head ≈ 1-1.7 % of queries carrying ≈ 94 % of page views) at three selectable
scales:

* ``tiny``  — seconds per training run; used by the test-suite.
* ``small`` — the default for benchmarks; minutes per full Table III row.
* ``medium`` — closer to the published head/tail ratios, for longer runs.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.data.synthetic import SyntheticConfig

#: Names of the three industrial windows used throughout the paper.
INDUSTRIAL_DATASETS: Tuple[str, ...] = ("Sep. A", "Sep. B", "Sep. C")

_SCALES: Dict[str, Dict[str, int]] = {
    "tiny": {
        "num_queries": 200,
        "num_services": 60,
        "num_interactions": 4_000,
        "total_page_views": 40_000,
    },
    "small": {
        "num_queries": 600,
        "num_services": 160,
        "num_interactions": 16_000,
        "total_page_views": 200_000,
    },
    "medium": {
        "num_queries": 2_000,
        "num_services": 500,
        "num_interactions": 60_000,
        "total_page_views": 1_000_000,
    },
}

# Per-window tweaks: each ten-day window gets its own seed and a slightly
# different exposure-noise mix, mirroring the mild drift between Sep. A/B/C.
_WINDOWS: Dict[str, Dict[str, float]] = {
    "Sep. A": {"seed": 11, "exposure_noise_tail": 0.45},
    "Sep. B": {"seed": 22, "exposure_noise_tail": 0.50},
    "Sep. C": {"seed": 33, "exposure_noise_tail": 0.48},
}


def industrial_config(name: str = "Sep. A", scale: str = "small") -> SyntheticConfig:
    """Return the synthetic config for one industrial window.

    Parameters
    ----------
    name:
        One of ``"Sep. A"``, ``"Sep. B"``, ``"Sep. C"``.
    scale:
        ``"tiny"``, ``"small"`` or ``"medium"``.
    """
    if name not in _WINDOWS:
        raise ValueError(f"unknown industrial dataset {name!r}; expected one of {INDUSTRIAL_DATASETS}")
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {sorted(_SCALES)}")
    size = _SCALES[scale]
    window = _WINDOWS[name]
    return SyntheticConfig(
        name=name,
        num_queries=size["num_queries"],
        num_services=size["num_services"],
        num_interactions=size["num_interactions"],
        total_page_views=size["total_page_views"],
        num_days=10,
        num_intention_trees=6,
        intention_depth=5,
        intention_branching=3,
        zipf_exponent=2.0,
        head_fraction=0.015,
        exposure_noise_tail=window["exposure_noise_tail"],
        seed=int(window["seed"]),
    )
