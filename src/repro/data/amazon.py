"""Synthetic stand-ins for the public Amazon product-search datasets.

The paper evaluates on three Amazon domains (Software, Video game, Music)
converted into a query → item search task.  The raw review dumps are not
available offline, so each domain is generated synthetically with the
published *relative* sizes and head/tail query ratios (Table I):

===========  =========  ========  =============  ==================
domain       users      items     interactions   head query share
===========  =========  ========  =============  ==================
Software     1,826      802       12,805         10.95 %
Video game   55,223     17,408    497,576        3.62 %
Music        27,530     10,620    231,392        3.63 %
===========  =========  ========  =============  ==================

Compared with the industrial datasets, the Amazon domains have a flatter
traffic distribution (larger head share, milder Zipf exponent) and smaller
intention forests, which the configs below reflect.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.data.synthetic import SyntheticConfig

#: Names of the three Amazon domains used in the paper.
AMAZON_DATASETS: Tuple[str, ...] = ("Software", "Video game", "Music")

_SCALES: Dict[str, float] = {
    "tiny": 0.3,
    "small": 1.0,
    "medium": 3.0,
}

# Base (scale == "small") sizes; ratios between domains follow the paper.
_DOMAINS: Dict[str, Dict[str, float]] = {
    "Software": {
        "num_queries": 300,
        "num_services": 130,
        "num_interactions": 6_000,
        "total_page_views": 30_000,
        "zipf_exponent": 1.1,
        "head_fraction": 0.11,
        "num_intention_trees": 4,
        "intention_depth": 3,
        "seed": 101,
    },
    "Video game": {
        "num_queries": 900,
        "num_services": 280,
        "num_interactions": 22_000,
        "total_page_views": 120_000,
        "zipf_exponent": 1.5,
        "head_fraction": 0.036,
        "num_intention_trees": 5,
        "intention_depth": 4,
        "seed": 102,
    },
    "Music": {
        "num_queries": 700,
        "num_services": 220,
        "num_interactions": 15_000,
        "total_page_views": 90_000,
        "zipf_exponent": 1.5,
        "head_fraction": 0.036,
        "num_intention_trees": 5,
        "intention_depth": 4,
        "seed": 103,
    },
}


def amazon_config(name: str = "Software", scale: str = "small") -> SyntheticConfig:
    """Return the synthetic config for one Amazon domain at the given scale."""
    if name not in _DOMAINS:
        raise ValueError(f"unknown Amazon dataset {name!r}; expected one of {AMAZON_DATASETS}")
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {sorted(_SCALES)}")
    domain = _DOMAINS[name]
    factor = _SCALES[scale]
    return SyntheticConfig(
        name=name,
        num_queries=max(60, int(domain["num_queries"] * factor)),
        num_services=max(30, int(domain["num_services"] * factor)),
        num_interactions=max(1_500, int(domain["num_interactions"] * factor)),
        total_page_views=max(5_000, int(domain["total_page_views"] * factor)),
        num_days=30,
        num_intention_trees=int(domain["num_intention_trees"]),
        intention_depth=int(domain["intention_depth"]),
        intention_branching=3,
        zipf_exponent=float(domain["zipf_exponent"]),
        head_fraction=float(domain["head_fraction"]),
        exposure_noise_tail=0.40,
        seed=int(domain["seed"]),
    )
