"""Synthetic long-tail service-search data generator.

This module substitutes the proprietary Alipay query logs (and the Amazon
product-search conversions) used in the paper.  The generator produces a
:class:`~repro.data.schema.ServiceSearchDataset` whose distributional
properties match what GARCIA's design exploits:

1. **Zipf-distributed query traffic** — query page views follow a power law
   whose exponent is tuned so that the head (top ~1 %) of queries accounts for
   ~90 % of traffic, the statistic the paper reports for Alipay.
2. **Intention forest** — a multi-tree taxonomy (≤5 levels).  Every query and
   service attaches to a leaf intention; queries sharing an intention are the
   "same intention, different surface form" pairs (e.g. "Phone Rental" vs
   "Iphone Rental") that knowledge transfer relies on.
3. **Correlation attributes** — city / brand / category attributes shared
   between related queries and services, feeding the correlation condition of
   the service-search graph.
4. **Popularity-biased click feedback** — head queries receive abundant,
   well-targeted exposure while tail queries receive scarce and noisier
   exposure, reproducing the under-fitting problem GARCIA addresses.
5. **Ground-truth click oracle** — the latent relevance model is kept around
   (:class:`ClickOracle`) so the online A/B simulation can replay user
   behaviour against competing rankers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.schema import (
    CORRELATION_ATTRIBUTES,
    Intention,
    Interaction,
    Query,
    Service,
    ServiceSearchDataset,
)


@dataclass
class SyntheticConfig:
    """Parameters controlling the synthetic dataset generator."""

    name: str = "synthetic"
    num_queries: int = 600
    num_services: int = 200
    num_interactions: int = 20_000
    num_days: int = 30

    # Intention forest shape.
    num_intention_trees: int = 6
    intention_depth: int = 5
    intention_branching: int = 3

    # Correlation attribute cardinalities (city / brand / category …).
    num_cities: int = 12
    num_brands: int = 25

    # Long-tail traffic shape.
    zipf_exponent: float = 2.0
    total_page_views: int = 200_000
    head_fraction: float = 0.01

    # Click model.
    relevance_weight: float = 4.0
    quality_weight: float = 1.5
    exposure_noise_tail: float = 0.45
    exposure_noise_head: float = 0.10
    base_click_logit: float = -1.0
    conversion_rate: float = 0.35

    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_queries <= 0 or self.num_services <= 0:
            raise ValueError("num_queries and num_services must be positive")
        if self.num_interactions <= 0:
            raise ValueError("num_interactions must be positive")
        if not 1 <= self.intention_depth <= 5:
            raise ValueError("intention_depth must be between 1 and 5 (paper: at most 5 levels)")
        if self.intention_branching < 1:
            raise ValueError("intention_branching must be at least 1")
        if not 0.0 < self.head_fraction < 1.0:
            raise ValueError("head_fraction must be in (0, 1)")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")


@dataclass
class ClickOracle:
    """Ground-truth user behaviour used to label feedback and drive A/B replay.

    The oracle holds the latent relevance matrix together with per-service
    quality; both are combined into click / conversion probabilities.  It is
    the synthetic stand-in for "real users" in the online experiments.
    """

    relevance: np.ndarray  # (num_queries, num_services) in [0, 1]
    service_quality: np.ndarray  # (num_services,) in [0, 1]
    relevance_weight: float
    quality_weight: float
    base_click_logit: float
    conversion_rate: float

    def click_probability(self, query_ids: Sequence[int], service_ids: Sequence[int]) -> np.ndarray:
        """Probability that a user clicks ``service`` when issuing ``query``."""
        query_ids = np.asarray(query_ids, dtype=np.int64)
        service_ids = np.asarray(service_ids, dtype=np.int64)
        logits = (
            self.base_click_logit
            + self.relevance_weight * self.relevance[query_ids, service_ids]
            + self.quality_weight * self.service_quality[service_ids]
        )
        return 1.0 / (1.0 + np.exp(-logits))

    def conversion_probability(self, query_ids: Sequence[int], service_ids: Sequence[int]) -> np.ndarray:
        """Probability of a *valid* click (in-service conversion) given a click."""
        query_ids = np.asarray(query_ids, dtype=np.int64)
        service_ids = np.asarray(service_ids, dtype=np.int64)
        return self.conversion_rate * (
            0.5 * self.relevance[query_ids, service_ids] + 0.5 * self.service_quality[service_ids]
        )


class SyntheticDataGenerator:
    """Generate a long-tail service-search dataset from a :class:`SyntheticConfig`."""

    def __init__(self, config: SyntheticConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.oracle: Optional[ClickOracle] = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def generate(self) -> ServiceSearchDataset:
        """Build the full dataset (intentions, services, queries, feedback)."""
        intentions, leaves = self._build_intention_forest()
        services = self._build_services(intentions, leaves)
        queries = self._build_queries(intentions, leaves, services)
        relevance = self._relevance_matrix(queries, services, intentions)
        quality = self._quality_vector(services)
        self.oracle = ClickOracle(
            relevance=relevance,
            service_quality=quality,
            relevance_weight=self.config.relevance_weight,
            quality_weight=self.config.quality_weight,
            base_click_logit=self.config.base_click_logit,
            conversion_rate=self.config.conversion_rate,
        )
        interactions = self._build_interactions(queries, services, relevance, quality)
        dataset = ServiceSearchDataset(
            name=self.config.name,
            queries=queries,
            services=services,
            intentions=intentions,
            interactions=interactions,
            attribute_cardinalities={
                "city": self.config.num_cities,
                "brand": self.config.num_brands,
                "category": self.config.num_intention_trees,
            },
        )
        dataset.validate()
        return dataset

    # ------------------------------------------------------------------ #
    # Intention forest
    # ------------------------------------------------------------------ #
    def _build_intention_forest(self) -> Tuple[List[Intention], List[int]]:
        config = self.config
        intentions: List[Intention] = []
        leaves: List[int] = []

        def add_node(level: int, parent_id: Optional[int], tree_id: int) -> int:
            node_id = len(intentions)
            intentions.append(
                Intention(
                    intention_id=node_id,
                    level=level,
                    parent_id=parent_id,
                    tree_id=tree_id,
                    name=f"intent_t{tree_id}_l{level}_n{node_id}",
                )
            )
            if parent_id is not None:
                intentions[parent_id].children.append(node_id)
            return node_id

        for tree_id in range(config.num_intention_trees):
            root = add_node(level=1, parent_id=None, tree_id=tree_id)
            frontier = [root]
            for level in range(2, config.intention_depth + 1):
                next_frontier: List[int] = []
                for parent in frontier:
                    num_children = int(self._rng.integers(1, config.intention_branching + 1))
                    for _ in range(num_children):
                        next_frontier.append(add_node(level=level, parent_id=parent, tree_id=tree_id))
                frontier = next_frontier
            leaves.extend(frontier)

        if not leaves:  # depth == 1: roots themselves act as leaves
            leaves = [i.intention_id for i in intentions if i.is_root]
        return intentions, leaves

    # ------------------------------------------------------------------ #
    # Entities
    # ------------------------------------------------------------------ #
    def _build_services(self, intentions: List[Intention], leaves: List[int]) -> List[Service]:
        config = self.config
        # Leaf popularity is itself skewed so some intentions are "hot".
        leaf_weights = self._rng.dirichlet(np.ones(len(leaves)) * 0.6)
        services: List[Service] = []
        # Brands cluster within trees so correlations are informative.
        brands_per_tree = {
            tree_id: self._rng.integers(0, config.num_brands, size=max(2, config.num_brands // 4))
            for tree_id in range(config.num_intention_trees)
        }
        for service_id in range(config.num_services):
            leaf = int(self._rng.choice(leaves, p=leaf_weights))
            tree_id = intentions[leaf].tree_id
            mau = int(np.exp(self._rng.normal(9.0, 2.2)))
            rating = int(np.clip(round(1 + 4 * (np.log1p(mau) / 16.0) + self._rng.normal(0, 0.5)), 1, 5))
            attributes = {
                "city": int(self._rng.integers(0, config.num_cities)),
                "brand": int(self._rng.choice(brands_per_tree[tree_id])),
                "category": tree_id,
            }
            services.append(
                Service(
                    service_id=service_id,
                    intention_id=leaf,
                    attributes=attributes,
                    mau=mau,
                    rating=rating,
                    name=f"service_{service_id}",
                )
            )
        return services

    def _build_queries(self, intentions: List[Intention], leaves: List[int],
                       services: List[Service]) -> List[Query]:
        config = self.config
        # Queries concentrate on leaves that actually have services.
        leaf_service_count = {leaf: 0 for leaf in leaves}
        for service in services:
            leaf_service_count[service.intention_id] = leaf_service_count.get(service.intention_id, 0) + 1
        weights = np.array([1.0 + leaf_service_count.get(leaf, 0) for leaf in leaves], dtype=np.float64)
        weights /= weights.sum()

        frequencies = self._zipf_frequencies(config.num_queries)
        # Services of the same intention define the attribute pool the query
        # draws from, so correlation edges connect the right pairs.
        services_by_leaf: Dict[int, List[Service]] = {}
        for service in services:
            services_by_leaf.setdefault(service.intention_id, []).append(service)

        queries: List[Query] = []
        for query_id in range(config.num_queries):
            leaf = int(self._rng.choice(leaves, p=weights))
            pool = services_by_leaf.get(leaf)
            if pool:
                template = pool[int(self._rng.integers(0, len(pool)))]
                attributes = {
                    "city": template.attributes["city"],
                    "brand": template.attributes["brand"],
                    "category": template.attributes["category"],
                }
            else:
                attributes = {
                    "city": int(self._rng.integers(0, config.num_cities)),
                    "brand": int(self._rng.integers(0, config.num_brands)),
                    "category": intentions[leaf].tree_id,
                }
            queries.append(
                Query(
                    query_id=query_id,
                    intention_id=leaf,
                    attributes=attributes,
                    frequency=int(frequencies[query_id]),
                    text=f"query_{query_id}",
                )
            )
        return queries

    def _zipf_frequencies(self, num_queries: int) -> np.ndarray:
        """Page views per query following a Zipf law, shuffled over query ids."""
        config = self.config
        ranks = np.arange(1, num_queries + 1, dtype=np.float64)
        weights = ranks ** (-config.zipf_exponent)
        weights /= weights.sum()
        frequencies = np.maximum(1, np.round(weights * config.total_page_views)).astype(np.int64)
        self._rng.shuffle(frequencies)
        return frequencies

    # ------------------------------------------------------------------ #
    # Relevance / quality oracle
    # ------------------------------------------------------------------ #
    def _ancestors(self, intentions: List[Intention], intention_id: int) -> List[int]:
        chain = []
        current = intentions[intention_id]
        while current.parent_id is not None:
            chain.append(current.parent_id)
            current = intentions[current.parent_id]
        return chain

    def _relevance_matrix(self, queries: List[Query], services: List[Service],
                          intentions: List[Intention]) -> np.ndarray:
        """Latent relevance in [0, 1] driven by intention proximity and attributes."""
        num_queries, num_services = len(queries), len(services)
        query_intents = np.array([q.intention_id for q in queries])
        service_intents = np.array([s.intention_id for s in services])

        ancestor_sets = [set([i] + self._ancestors(intentions, i)) for i in range(len(intentions))]
        tree_ids = np.array([i.tree_id for i in intentions])

        relevance = np.zeros((num_queries, num_services), dtype=np.float64)
        for query_index in range(num_queries):
            q_intent = query_intents[query_index]
            q_ancestors = ancestor_sets[q_intent]
            q_tree = tree_ids[q_intent]
            q_attrs = queries[query_index].attributes
            for service_index in range(num_services):
                s_intent = service_intents[service_index]
                if s_intent == q_intent:
                    intent_score = 1.0
                else:
                    shared = len(q_ancestors & ancestor_sets[s_intent])
                    if shared > 0:
                        intent_score = min(0.85, 0.25 * shared)
                    elif tree_ids[s_intent] == q_tree:
                        intent_score = 0.15
                    else:
                        intent_score = 0.0
                s_attrs = services[service_index].attributes
                attr_matches = sum(
                    1 for key in CORRELATION_ATTRIBUTES if q_attrs.get(key) == s_attrs.get(key)
                )
                attr_score = attr_matches / len(CORRELATION_ATTRIBUTES)
                relevance[query_index, service_index] = 0.75 * intent_score + 0.25 * attr_score
        noise = self._rng.normal(0.0, 0.03, size=relevance.shape)
        return np.clip(relevance + noise, 0.0, 1.0)

    def _quality_vector(self, services: List[Service]) -> np.ndarray:
        """Normalised composite quality in [0, 1] from MAU and rating."""
        log_mau = np.array([math.log1p(s.mau) for s in services])
        rating = np.array([s.rating for s in services], dtype=np.float64)
        log_mau = (log_mau - log_mau.min()) / max(log_mau.max() - log_mau.min(), 1e-9)
        rating = (rating - 1.0) / 4.0
        return 0.6 * log_mau + 0.4 * rating

    # ------------------------------------------------------------------ #
    # Feedback generation
    # ------------------------------------------------------------------ #
    def _build_interactions(self, queries: List[Query], services: List[Service],
                            relevance: np.ndarray, quality: np.ndarray) -> List[Interaction]:
        """Sample exposures and click labels with popularity bias.

        Exposures per query are proportional to query traffic; the candidate
        shown for a head query is sampled almost greedily from the truly
        relevant services (the production system has learnt them), while tail
        queries receive a large fraction of weakly-targeted exposures.  This
        reproduces the low quality of tail results the paper motivates with.
        """
        config = self.config
        frequencies = np.array([q.frequency for q in queries], dtype=np.float64)
        exposure_share = frequencies / frequencies.sum()
        exposures_per_query = np.maximum(
            4, np.round(exposure_share * config.num_interactions).astype(np.int64)
        )
        head_count = max(1, int(round(config.head_fraction * len(queries))))
        head_ids = set(np.argsort(-frequencies)[:head_count].tolist())

        num_services = len(services)
        interactions: List[Interaction] = []
        for query_id, num_exposures in enumerate(exposures_per_query):
            noise_level = (
                config.exposure_noise_head if query_id in head_ids else config.exposure_noise_tail
            )
            # Exposure distribution: mixture of relevance-targeted and random.
            targeting = relevance[query_id] + 0.3 * quality
            targeting = np.exp(3.0 * targeting)
            targeting /= targeting.sum()
            uniform = np.full(num_services, 1.0 / num_services)
            exposure_probs = (1.0 - noise_level) * targeting + noise_level * uniform

            shown = self._rng.choice(num_services, size=int(num_exposures), p=exposure_probs)
            click_probs = self.oracle.click_probability(np.full(len(shown), query_id), shown)
            clicks = (self._rng.random(len(shown)) < click_probs).astype(np.int64)
            conversion_probs = self.oracle.conversion_probability(np.full(len(shown), query_id), shown)
            conversions = clicks * (self._rng.random(len(shown)) < conversion_probs).astype(np.int64)
            timestamps = self._rng.integers(0, config.num_days, size=len(shown))
            for service_id, clicked, converted, timestamp in zip(shown, clicks, conversions, timestamps):
                interactions.append(
                    Interaction(
                        query_id=int(query_id),
                        service_id=int(service_id),
                        clicked=int(clicked),
                        timestamp=int(timestamp),
                        converted=int(converted),
                    )
                )
        self._rng.shuffle(interactions)
        return interactions


def generate_dataset(config: SyntheticConfig) -> ServiceSearchDataset:
    """Convenience wrapper: build a generator and return its dataset."""
    return SyntheticDataGenerator(config).generate()
