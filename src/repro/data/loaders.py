"""Mini-batch loading for training and evaluation.

The models consume interactions as aligned integer arrays (query ids, service
ids, click labels).  :class:`BatchLoader` shuffles per epoch with its own
generator so that data order is reproducible independently of model
initialisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.data.schema import Interaction


@dataclass
class InteractionBatch:
    """A mini-batch of (query, service, label) triples."""

    query_ids: np.ndarray
    service_ids: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return len(self.query_ids)

    def __post_init__(self) -> None:
        if not (len(self.query_ids) == len(self.service_ids) == len(self.labels)):
            raise ValueError("batch arrays must have identical lengths")


def interactions_to_arrays(interactions: Sequence[Interaction]) -> InteractionBatch:
    """Convert a list of interactions into a single (possibly large) batch."""
    if not interactions:
        return InteractionBatch(
            query_ids=np.zeros(0, dtype=np.int64),
            service_ids=np.zeros(0, dtype=np.int64),
            labels=np.zeros(0, dtype=np.float64),
        )
    query_ids = np.array([i.query_id for i in interactions], dtype=np.int64)
    service_ids = np.array([i.service_id for i in interactions], dtype=np.int64)
    labels = np.array([i.clicked for i in interactions], dtype=np.float64)
    return InteractionBatch(query_ids=query_ids, service_ids=service_ids, labels=labels)


class BatchLoader:
    """Iterate over interactions in shuffled mini-batches.

    Parameters
    ----------
    interactions:
        The interaction list to batch (typically the train split).
    batch_size:
        Number of triples per batch; the paper uses 1024, the scaled-down
        reproduction defaults to 256.
    shuffle:
        Whether to reshuffle at the start of every epoch.
    seed:
        Seed of the shuffling generator.
    drop_last:
        Drop the final incomplete batch (useful for in-batch negative
        sampling losses that expect a fixed batch size).
    """

    def __init__(
        self,
        interactions: Sequence[Interaction],
        batch_size: int = 256,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self._full = interactions_to_arrays(list(interactions))
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self._full)
        if self.drop_last:
            return n // self.batch_size
        return int(np.ceil(n / self.batch_size))

    @property
    def num_interactions(self) -> int:
        return len(self._full)

    def __iter__(self) -> Iterator[InteractionBatch]:
        n = len(self._full)
        indices = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, n, self.batch_size):
            chunk = indices[start:start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                break
            yield InteractionBatch(
                query_ids=self._full.query_ids[chunk],
                service_ids=self._full.service_ids[chunk],
                labels=self._full.labels[chunk],
            )
