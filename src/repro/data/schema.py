"""Dataset schemas: queries, services, intentions, interactions.

These dataclasses are deliberately plain containers.  All heavy lifting
(generation, splitting, graph construction) lives in dedicated modules so the
schemas remain dependency-free and trivially serialisable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Names of the correlation attributes used by the "correlation condition"
#: of the service search graph (Sec. III).  The paper mentions city, brand
#: and category explicitly and "about 11 semantic-related attributes" overall.
CORRELATION_ATTRIBUTES: Tuple[str, ...] = ("city", "brand", "category")


@dataclass
class Intention:
    """A node in an intention tree.

    Attributes
    ----------
    intention_id:
        Global integer id of the intention node (unique across the forest).
    level:
        1-based depth; level 1 is a root ("coarsest concept").
    parent_id:
        ``None`` for roots, otherwise the id of the parent intention.
    children:
        Ids of child intentions.
    tree_id:
        Which tree of the forest this node belongs to.
    name:
        Human-readable label, mainly for case studies and debugging.
    """

    intention_id: int
    level: int
    parent_id: Optional[int]
    children: List[int] = field(default_factory=list)
    tree_id: int = 0
    name: str = ""

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    @property
    def is_leaf(self) -> bool:
        return not self.children


@dataclass
class Service:
    """A service (mini-program) that can be retrieved for a query."""

    service_id: int
    intention_id: int
    attributes: Dict[str, int] = field(default_factory=dict)
    mau: int = 0
    rating: int = 1
    name: str = ""

    def quality_score(self) -> float:
        """Composite quality used by case studies: log-MAU blended with rating."""
        return float(np.log1p(self.mau) + self.rating)


@dataclass
class Query:
    """A textual query issued by users.

    ``frequency`` is the number of search page views attributed to the query
    over the dataset window — the quantity whose skew defines head vs tail.
    """

    query_id: int
    intention_id: int
    attributes: Dict[str, int] = field(default_factory=dict)
    frequency: int = 0
    text: str = ""


@dataclass
class Interaction:
    """One exposure of a service under a query, with its click label."""

    query_id: int
    service_id: int
    clicked: int
    timestamp: int
    converted: int = 0


@dataclass
class DatasetStatistics:
    """Summary statistics mirroring Table I of the paper."""

    name: str
    num_queries: int
    num_services: int
    num_interactions: int
    head_query_fraction: float
    tail_query_fraction: float
    head_pv_fraction: float
    tail_pv_fraction: float
    num_train: int
    num_validation: int
    num_test: int

    def as_row(self) -> Dict[str, object]:
        """Flatten to a dict suitable for tabular printing."""
        return {
            "dataset": self.name,
            "queries_head_pct": round(100.0 * self.head_query_fraction, 2),
            "queries_tail_pct": round(100.0 * self.tail_query_fraction, 2),
            "pv_head_pct": round(100.0 * self.head_pv_fraction, 2),
            "pv_tail_pct": round(100.0 * self.tail_pv_fraction, 2),
            "train": self.num_train,
            "validation": self.num_validation,
            "test": self.num_test,
        }


@dataclass
class ServiceSearchDataset:
    """A complete service-search dataset: entities, taxonomy and feedback."""

    name: str
    queries: List[Query]
    services: List[Service]
    intentions: List[Intention]
    interactions: List[Interaction]
    attribute_cardinalities: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def num_queries(self) -> int:
        return len(self.queries)

    @property
    def num_services(self) -> int:
        return len(self.services)

    @property
    def num_intentions(self) -> int:
        return len(self.intentions)

    @property
    def num_interactions(self) -> int:
        return len(self.interactions)

    def query_by_id(self, query_id: int) -> Query:
        return self.queries[query_id]

    def service_by_id(self, service_id: int) -> Service:
        return self.services[service_id]

    def intention_by_id(self, intention_id: int) -> Intention:
        return self.intentions[intention_id]

    def query_frequencies(self) -> np.ndarray:
        """Search PV per query as an array indexed by ``query_id``."""
        return np.array([query.frequency for query in self.queries], dtype=np.int64)

    def interaction_array(self) -> np.ndarray:
        """Interactions as an ``(n, 5)`` int array.

        Columns: query_id, service_id, clicked, timestamp, converted.
        """
        if not self.interactions:
            return np.zeros((0, 5), dtype=np.int64)
        return np.array(
            [
                (i.query_id, i.service_id, i.clicked, i.timestamp, i.converted)
                for i in self.interactions
            ],
            dtype=np.int64,
        )

    def validate(self) -> None:
        """Check referential integrity; raises ``ValueError`` on corruption."""
        query_ids = {query.query_id for query in self.queries}
        service_ids = {service.service_id for service in self.services}
        intention_ids = {intention.intention_id for intention in self.intentions}
        if query_ids != set(range(len(self.queries))):
            raise ValueError("query ids must be contiguous and start at 0")
        if service_ids != set(range(len(self.services))):
            raise ValueError("service ids must be contiguous and start at 0")
        for query in self.queries:
            if query.intention_id not in intention_ids:
                raise ValueError(f"query {query.query_id} references unknown intention")
        for service in self.services:
            if service.intention_id not in intention_ids:
                raise ValueError(f"service {service.service_id} references unknown intention")
        for interaction in self.interactions:
            if interaction.query_id not in query_ids:
                raise ValueError("interaction references unknown query")
            if interaction.service_id not in service_ids:
                raise ValueError("interaction references unknown service")
            if interaction.clicked not in (0, 1):
                raise ValueError("click labels must be binary")

    def statistics(self, head_query_ids: Optional[Sequence[int]] = None,
                   splits: Optional[Tuple[int, int, int]] = None) -> DatasetStatistics:
        """Compute Table I style statistics.

        Parameters
        ----------
        head_query_ids:
            Ids of queries classified as head; if omitted, the top 1 % by
            frequency are used (the paper's observation for Alipay).
        splits:
            Optional (train, validation, test) interaction counts.
        """
        frequencies = self.query_frequencies()
        total_pv = max(int(frequencies.sum()), 1)
        if head_query_ids is None:
            num_head = max(1, int(round(0.01 * len(self.queries))))
            head_query_ids = np.argsort(-frequencies)[:num_head]
        head_set = set(int(q) for q in head_query_ids)
        head_pv = int(sum(self.queries[q].frequency for q in head_set))
        head_fraction = len(head_set) / max(len(self.queries), 1)
        train, validation, test = splits if splits is not None else (len(self.interactions), 0, 0)
        return DatasetStatistics(
            name=self.name,
            num_queries=self.num_queries,
            num_services=self.num_services,
            num_interactions=self.num_interactions,
            head_query_fraction=head_fraction,
            tail_query_fraction=1.0 - head_fraction,
            head_pv_fraction=head_pv / total_pv,
            tail_pv_fraction=1.0 - head_pv / total_pv,
            num_train=train,
            num_validation=validation,
            num_test=test,
        )
