"""Chronological splitting and head/tail query partitioning.

The paper splits interactions chronologically into train / validation / test
and partitions queries into head and tail by exposure (the top ~10k queries by
page views in production; here a configurable fraction or count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.data.schema import Interaction, ServiceSearchDataset


@dataclass
class DataSplits:
    """Train / validation / test interaction lists."""

    train: List[Interaction]
    validation: List[Interaction]
    test: List[Interaction]

    @property
    def sizes(self) -> Tuple[int, int, int]:
        return (len(self.train), len(self.validation), len(self.test))


@dataclass
class HeadTailSplit:
    """Partition of query ids into head and tail by traffic."""

    head_query_ids: Set[int]
    tail_query_ids: Set[int]

    def is_head(self, query_id: int) -> bool:
        return query_id in self.head_query_ids

    def is_tail(self, query_id: int) -> bool:
        return query_id in self.tail_query_ids

    @property
    def num_head(self) -> int:
        return len(self.head_query_ids)

    @property
    def num_tail(self) -> int:
        return len(self.tail_query_ids)

    def head_array(self) -> np.ndarray:
        return np.array(sorted(self.head_query_ids), dtype=np.int64)

    def tail_array(self) -> np.ndarray:
        return np.array(sorted(self.tail_query_ids), dtype=np.int64)


def chronological_split(
    dataset: ServiceSearchDataset,
    validation_fraction: float = 0.1,
    test_fraction: float = 0.1,
) -> DataSplits:
    """Split interactions by timestamp: earliest → train, latest → test.

    Ties on the same timestamp are broken deterministically by the original
    interaction order, which mimics intra-day ordering of a log.
    """
    if validation_fraction < 0 or test_fraction < 0 or validation_fraction + test_fraction >= 1.0:
        raise ValueError("validation and test fractions must be non-negative and sum below 1")
    interactions = dataset.interactions
    order = sorted(range(len(interactions)), key=lambda i: (interactions[i].timestamp, i))
    n = len(order)
    num_test = int(round(test_fraction * n))
    num_validation = int(round(validation_fraction * n))
    num_train = n - num_validation - num_test
    train = [interactions[i] for i in order[:num_train]]
    validation = [interactions[i] for i in order[num_train:num_train + num_validation]]
    test = [interactions[i] for i in order[num_train + num_validation:]]
    return DataSplits(train=train, validation=validation, test=test)


def head_tail_split(
    dataset: ServiceSearchDataset,
    head_fraction: Optional[float] = None,
    head_count: Optional[int] = None,
) -> HeadTailSplit:
    """Split queries into head and tail by search page views.

    Exactly one of ``head_fraction`` / ``head_count`` may be given; the
    default follows the paper's production rule of "top queries by exposure"
    with a 1 % fraction.
    """
    if head_fraction is not None and head_count is not None:
        raise ValueError("give either head_fraction or head_count, not both")
    frequencies = dataset.query_frequencies()
    num_queries = len(frequencies)
    if head_count is None:
        fraction = 0.01 if head_fraction is None else head_fraction
        if not 0.0 < fraction < 1.0:
            raise ValueError("head_fraction must be in (0, 1)")
        head_count = max(1, int(round(fraction * num_queries)))
    if not 0 < head_count < num_queries:
        raise ValueError("head_count must be positive and smaller than the number of queries")
    ranked = np.argsort(-frequencies, kind="stable")
    head_ids = set(int(q) for q in ranked[:head_count])
    tail_ids = set(range(num_queries)) - head_ids
    return HeadTailSplit(head_query_ids=head_ids, tail_query_ids=tail_ids)


def interactions_by_slice(
    interactions: Sequence[Interaction],
    split: HeadTailSplit,
) -> Tuple[List[Interaction], List[Interaction]]:
    """Partition interactions into (head, tail) according to their query."""
    head = [i for i in interactions if split.is_head(i.query_id)]
    tail = [i for i in interactions if split.is_tail(i.query_id)]
    return head, tail
