"""Reproduction of GARCIA (ICDE 2023).

GARCIA powers representations of long-tail queries in service search with a
graph encoder, an intention-tree encoder and a multi-granularity contrastive
learning objective.  This package re-implements the full system — including
every substrate the paper depends on (autograd engine, GNN layers, synthetic
long-tail data, service-search graph, serving pipeline and A/B simulator) —
in pure NumPy-backed Python.

High-level entry points:

* :func:`repro.pipeline.prepare_scenario` — dataset → splits → graph → forest.
* :class:`repro.models.GARCIA` and :func:`repro.models.garcia.model.build_garcia`.
* :func:`repro.training.finetuner.train_garcia` — pre-train then fine-tune.
* :class:`repro.eval.Evaluator` — head / tail / overall AUC, GAUC, NDCG@K.
* :mod:`repro.experiments` — one driver per table / figure of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
