"""The per-replica health surface a fleet router polls.

:class:`HealthSnapshot` is a frozen value object built by
``GatewayTelemetry.health()`` in O(buckets) time — every field is read
from a counter or a fixed-size histogram, never from per-request history —
so polling it per-request (the fleet-routing use case) costs microseconds
and allocates one small object.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict


@dataclass(frozen=True)
class HealthSnapshot:
    """Point-in-time serving health of one gateway replica."""

    requests: float
    qps: float
    p50_ms: float
    p99_ms: float
    queue_depth_mean: float
    queue_depth_max: float
    loop_lag_mean_ms: float
    loop_lag_max_ms: float
    overload_rejections: float
    deadline_misses: float
    cancelled_requests: float
    shed_rate: float

    def as_dict(self) -> Dict[str, float]:
        return asdict(self)

    def overloaded(
        self,
        p99_budget_ms: float = math.inf,
        shed_budget: float = 1.0,
    ) -> bool:
        """True when the replica is outside the given tail/shed budgets."""
        if math.isfinite(self.p99_ms) and self.p99_ms > p99_budget_ms:
            return True
        return self.shed_rate > shed_budget

    def pressure(
        self,
        p99_budget_ms: float = math.inf,
        queue_budget: float = math.inf,
        loop_lag_budget_ms: float = math.inf,
        shed_budget: float = 1.0,
    ) -> float:
        """Scalar load score: the worst budget utilisation across signals.

        Each term is ``observed / budget`` (0 = idle, 1 = at budget, > 1 =
        over), and the score is their max — one saturated dimension is
        enough to make a replica a bad routing target.  Budgets default to
        ``inf`` so unconfigured signals contribute 0.  This is what the
        fleet router's least-loaded fallback ranks replicas by.
        """
        terms = [self.shed_rate / shed_budget if shed_budget > 0 else 0.0]
        if math.isfinite(p99_budget_ms) and math.isfinite(self.p99_ms):
            terms.append(self.p99_ms / p99_budget_ms)
        if math.isfinite(queue_budget):
            terms.append(self.queue_depth_mean / queue_budget)
        if math.isfinite(loop_lag_budget_ms):
            terms.append(self.loop_lag_mean_ms / loop_lag_budget_ms)
        return max(terms)
