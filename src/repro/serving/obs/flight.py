"""Flight recorder: a bounded ring of recent traces worth keeping.

Tail-sampling over finished traces.  Every trace is offered via
:meth:`FlightRecorder.record`; the recorder keeps

* every trace whose status is not ``ok`` (shed, cancelled, error) — the
  requests someone will ask about,
* every trace at least ``slow_s`` long — the tail the fleet router cares
  about,
* plus one in every ``sample_every`` ordinary traces as background
  context.

Kept traces land in a ``deque(maxlen=capacity)``: memory is bounded by the
ring size regardless of traffic, and the oldest kept trace falls off
first.  ``explain()`` renders the span tree of a request, a trace, or a
trace id — the "where did my request spend its time" call.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.serving.obs.tracing import STATUS_OK, Trace


class FlightRecorder:
    """Keep slow/shed/error traces always, ordinary ones 1-in-N."""

    def __init__(
        self,
        capacity: int = 256,
        sample_every: int = 16,
        slow_s: Optional[float] = 0.050,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.capacity = capacity
        self.sample_every = sample_every
        self.slow_s = slow_s
        self._ring: deque = deque(maxlen=capacity)
        self.seen = 0
        self.kept: Dict[str, int] = {
            "slow": 0,
            "not_ok": 0,
            "sampled": 0,
        }

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(self, trace: Trace) -> None:
        seen = self.seen
        self.seen = seen + 1
        if trace.status != STATUS_OK:
            reason = "not_ok"
        elif self.slow_s is not None and trace.duration_s >= self.slow_s:
            reason = "slow"
        elif seen % self.sample_every == 0:
            reason = "sampled"
        else:
            return
        self.kept[reason] += 1
        self._ring.append(trace)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._ring)

    def dump(self) -> List[Trace]:
        """Kept traces, oldest first."""
        return list(self._ring)

    def find(self, trace_id: int) -> Optional[Trace]:
        for trace in self._ring:
            if trace.trace_id == trace_id:
                return trace
        return None

    def slowest(self) -> Optional[Trace]:
        if not self._ring:
            return None
        return max(self._ring, key=lambda trace: trace.duration_s)

    def explain(self, request) -> str:
        """Span tree of a request / trace / trace id, or why there is none."""
        trace: Optional[Trace]
        if isinstance(request, Trace):
            trace = request
        elif isinstance(request, int):
            trace = self.find(request)
            if trace is None:
                return f"trace {request:#x}: not in the flight recorder"
        else:
            trace = getattr(request, "trace", None)
            if trace is None:
                return (
                    "no trace attached to this request "
                    "(tracing disabled or request untraced)"
                )
        return trace.format()

    def stats(self) -> Dict[str, float]:
        return {
            "seen": float(self.seen),
            "kept": float(len(self._ring)),
            "kept_not_ok": float(self.kept["not_ok"]),
            "kept_slow": float(self.kept["slow"]),
            "kept_sampled": float(self.kept["sampled"]),
            "capacity": float(self.capacity),
        }

    def clear(self) -> None:
        self._ring.clear()
        self.seen = 0
        for key in self.kept:
            self.kept[key] = 0
