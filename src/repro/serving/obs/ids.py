"""Deterministic id generation for routing and tracing: splitmix64.

One finaliser, two call shapes.  :func:`splitmix64` is the vectorised
numpy form used by the A/B bucket router (moved here from
``repro.serving.abtest`` so the hash lives next to its other consumer);
:func:`splitmix64_int` is the scalar pure-Python form the tracer uses to
derive trace and span ids without paying numpy dispatch per request.

Both produce identical output for the same input: the classic splitmix64
finaliser (Steele et al.), whose constants assume wrapping mod-2^64
arithmetic — numpy's uint64 wraps silently, the scalar form masks
explicitly.

On top of the finaliser sit the shared *salt-mixing* primitives every
router in the stack uses: :func:`mix64` / :func:`mix64_int` finalise
``value ^ salt`` (the A/B bucket hash and the fleet's rendezvous hash are
both this primitive, so their streams are provably the same family), and
:func:`key_to_u64` / :func:`ids_to_u64` canonicalise arbitrary routing
keys (ints, strings, numpy id arrays) into the uint64 domain without
per-process ``hash()`` randomisation.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: The splitmix64 stream increment ("golden gamma"); successive ids are
#: finalize(seed + n * GOLDEN_GAMMA), which is the canonical generator.
GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser: uint64 -> well-mixed uint64.

    Unsigned numpy arithmetic wraps silently, which is exactly the mod-2^64
    behaviour the constants assume.
    """
    z = values + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def splitmix64_int(value: int) -> int:
    """Scalar splitmix64 finaliser: int -> well-mixed 64-bit int."""
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def mix64(values: np.ndarray, salt: int = 0) -> np.ndarray:
    """Vectorised salt-mixed hash: ``splitmix64(values ^ salt)``.

    The shared routing primitive: the A/B bucket router's per-id uniform
    fractions and the fleet router's rendezvous scores are both streams of
    this function under different salts.
    """
    salted = np.asarray(values, dtype=np.uint64) ^ np.uint64(int(salt) & _MASK64)
    return splitmix64(salted)


def mix64_int(value: int, salt: int = 0) -> int:
    """Scalar salt-mixed hash: ``splitmix64_int(value ^ salt)``.

    Bit-identical to :func:`mix64` on the same ``(value, salt)`` — the
    scalar form is what per-request paths (rendezvous routing, trace ids)
    use to avoid numpy dispatch.
    """
    return splitmix64_int((value ^ salt) & _MASK64)


def key_to_u64(key: object) -> int:
    """Canonicalise a routing key (int-like or string) into uint64 space.

    Integers map by value (mod 2^64); anything else hashes its ``str``
    form through blake2b, which is stable across processes and runs —
    unlike builtin ``hash(str)``, which is salted per process.
    """
    if isinstance(key, (int, np.integer)):
        return int(key) & _MASK64
    digest = hashlib.blake2b(str(key).encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "little")


def ids_to_u64(ids) -> np.ndarray:
    """Canonicalise routing ids (int array, scalar, or strings) to uint64.

    Integer ids embed bijectively (int64 reinterprets its two's-complement
    bits); string ids hash elementwise through blake2b so the mapping is
    stable across processes (builtin ``hash(str)`` is salted per process).
    """
    array = np.asarray(ids)
    if array.ndim == 0:
        array = array[None]
    if np.issubdtype(array.dtype, np.integer):
        if array.dtype == np.int64:
            return array.view(np.uint64)
        return array.astype(np.uint64)
    return np.fromiter(
        (key_to_u64(value) for value in array),
        dtype=np.uint64,
        count=array.size,
    )
