"""Deterministic id generation for routing and tracing: splitmix64.

One finaliser, two call shapes.  :func:`splitmix64` is the vectorised
numpy form used by the A/B bucket router (moved here from
``repro.serving.abtest`` so the hash lives next to its other consumer);
:func:`splitmix64_int` is the scalar pure-Python form the tracer uses to
derive trace and span ids without paying numpy dispatch per request.

Both produce identical output for the same input: the classic splitmix64
finaliser (Steele et al.), whose constants assume wrapping mod-2^64
arithmetic — numpy's uint64 wraps silently, the scalar form masks
explicitly.
"""

from __future__ import annotations

import numpy as np

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: The splitmix64 stream increment ("golden gamma"); successive ids are
#: finalize(seed + n * GOLDEN_GAMMA), which is the canonical generator.
GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser: uint64 -> well-mixed uint64.

    Unsigned numpy arithmetic wraps silently, which is exactly the mod-2^64
    behaviour the constants assume.
    """
    z = values + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def splitmix64_int(value: int) -> int:
    """Scalar splitmix64 finaliser: int -> well-mixed 64-bit int."""
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)
