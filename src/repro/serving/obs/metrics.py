"""Bounded metrics core: counters, gauges, log-bucketed histograms.

Everything the gateway records at request rate lands here, and every
structure is O(buckets) — observing ten million requests costs exactly the
same memory as observing ten.  The pieces:

* :class:`Counter` / :class:`Gauge` — monotonic totals and point-in-time
  values.
* :class:`Histogram` — fixed-boundary log-bucketed distribution with
  Prometheus ``le`` (cumulative upper-bound) semantics.  Percentiles are
  bucket-interpolated against the nearest-rank order statistic; because
  consecutive boundaries grow by ``g = 10 ** (1 / per_decade)``, the
  estimate lands in the same bucket as the true order statistic and the
  relative error is bounded by ``g - 1`` (≈ 15.5% at the default 16
  buckets per decade) for values inside the boundary range.  Values
  outside the range clamp into the underflow/overflow bucket, whose span
  is tightened by the observed min/max.
* :class:`HistogramSnapshot` — an immutable copy that merges with any
  snapshot sharing the same boundaries; merge-of-snapshots equals
  snapshot-of-merged observation streams (bucket counts are exact ints).
* :class:`MetricFamily` / :class:`MetricsRegistry` — labeled series with
  an optional ``max_series`` cap: once distinct label sets hit the cap,
  new ones collapse into an explicit ``__overflow__`` series instead of
  growing the dict without bound.  The registry renders Prometheus text
  exposition and a JSON document carrying the same numbers.

:func:`sample_percentiles_ms` is the one shared exact-percentile helper
(numpy linear interpolation over raw samples) used by the load benches and
eval summaries that still hold full latency lists.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

#: Label value absorbing series beyond a family's ``max_series`` cap.
OVERFLOW_LABEL = "__overflow__"


def log_boundaries(
    lo: float, hi: float, per_decade: int = 16
) -> Tuple[float, ...]:
    """Geometric bucket boundaries from ``lo`` up to (at least) ``hi``.

    Consecutive boundaries differ by a factor of ``10 ** (1 / per_decade)``,
    which is what bounds the bucket-interpolated percentile's relative
    error at ``10 ** (1 / per_decade) - 1``.
    """
    if lo <= 0.0 or hi <= lo:
        raise ValueError("log_boundaries needs 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    steps = math.ceil(math.log10(hi / lo) * per_decade)
    return tuple(lo * 10.0 ** (i / per_decade) for i in range(steps + 1))


#: Default latency boundaries: 1µs .. ~64s at 16 buckets/decade.
DEFAULT_LATENCY_BOUNDARIES = log_boundaries(1e-6, 64.0, per_decade=16)

#: Documented relative error bound for percentiles over the default grid.
RELATIVE_ERROR_BOUND = 10.0 ** (1.0 / 16.0) - 1.0

#: Power-of-two boundaries for small-integer distributions (batch sizes,
#: queue depths): exact sums keep means exact, max tracks the true max.
POW2_BOUNDARIES = tuple(float(2**i) for i in range(17))


def _bucket_percentile(
    boundaries: Sequence[float],
    counts: Sequence[int],
    total: int,
    vmin: float,
    vmax: float,
    percentile: float,
) -> float:
    """Interpolated value of the nearest-rank order statistic.

    Walks the cumulative counts to the bucket holding the ``ceil(q/100 * n)``
    order statistic, then interpolates linearly inside that bucket.  The
    bucket edges are tightened by the observed min/max, so degenerate
    streams (all zeros under a fake clock) stay finite and exact.
    """
    if total <= 0:
        return math.nan
    rank = max(1, min(total, math.ceil(percentile / 100.0 * total)))
    cumulative = 0
    last = len(boundaries)
    for idx, count in enumerate(counts):
        if not count:
            continue
        if cumulative + count >= rank:
            lo = boundaries[idx - 1] if idx else vmin
            hi = boundaries[idx] if idx < last else vmax
            lo = max(lo, vmin)
            hi = min(hi, vmax)
            if hi <= lo:
                return lo
            fraction = (rank - cumulative) / count
            return lo + fraction * (hi - lo)
        cumulative += count
    return vmax


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value that can go up or down."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable histogram state; mergeable across identical boundaries."""

    boundaries: Tuple[float, ...]
    counts: Tuple[int, ...]
    count: int
    sum: float
    min: float
    max: float

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Combine two snapshots observed over the same bucket grid."""
        if self.boundaries != other.boundaries:
            raise ValueError("cannot merge snapshots with different boundaries")
        return HistogramSnapshot(
            boundaries=self.boundaries,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            count=self.count + other.count,
            sum=self.sum + other.sum,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    def percentile(self, percentile: float) -> float:
        return _bucket_percentile(
            self.boundaries, self.counts, self.count, self.min, self.max, percentile
        )

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan


class Histogram:
    """Fixed-boundary histogram with Prometheus ``le`` bucket semantics.

    Bucket ``i`` counts observations ``boundaries[i-1] < v <= boundaries[i]``;
    one extra overflow bucket catches everything above the last boundary.
    """

    kind = "histogram"
    __slots__ = ("boundaries", "counts", "count", "sum", "min", "max")

    def __init__(self, boundaries: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(
            float(b)
            for b in (DEFAULT_LATENCY_BOUNDARIES if boundaries is None else boundaries)
        )
        if len(bounds) < 1 or any(
            b <= a for a, b in zip(bounds, bounds[1:])
        ):
            raise ValueError("boundaries must be non-empty and strictly increasing")
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def percentile(self, percentile: float) -> float:
        return _bucket_percentile(
            self.boundaries, self.counts, self.count, self.min, self.max, percentile
        )

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            boundaries=self.boundaries,
            counts=tuple(self.counts),
            count=self.count,
            sum=self.sum,
            min=self.min,
            max=self.max,
        )


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric with labeled children and a bounded series count.

    ``labels(*values)`` returns (creating on first touch) the child series
    for one label-value tuple.  Once ``max_series`` distinct tuples exist,
    further tuples collapse into one explicit overflow child labeled
    :data:`OVERFLOW_LABEL` on every axis — totals stay exact, cardinality
    stays bounded, and the overflow is visible rather than silent.
    """

    __slots__ = (
        "kind",
        "name",
        "help",
        "label_names",
        "max_series",
        "boundaries",
        "_children",
        "_overflow_key",
    )

    def __init__(
        self,
        kind: str,
        name: str,
        help: str = "",
        label_names: Tuple[str, ...] = (),
        max_series: Optional[int] = None,
        boundaries: Optional[Sequence[float]] = None,
    ) -> None:
        if kind not in _METRIC_TYPES:
            raise ValueError(f"unknown metric kind: {kind!r}")
        self.kind = kind
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.max_series = max_series
        self.boundaries = boundaries
        self._children: Dict[Tuple[str, ...], object] = {}
        self._overflow_key = (OVERFLOW_LABEL,) * len(self.label_names)

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self.boundaries)
        return _METRIC_TYPES[self.kind]()

    def labels(self, *values) -> object:
        key = tuple(str(v) for v in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected {len(self.label_names)} label values, "
                f"got {len(key)}"
            )
        child = self._children.get(key)
        if child is None:
            if (
                self.max_series is not None
                and key != self._overflow_key
                and self.series_count >= self.max_series
            ):
                key = self._overflow_key
                child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def get(self, *values) -> Optional[object]:
        """The child for a label tuple, or ``None`` if never touched."""
        return self._children.get(tuple(str(v) for v in values))

    @property
    def series_count(self) -> int:
        """Distinct non-overflow series currently tracked."""
        if self._overflow_key in self._children:
            return len(self._children) - 1
        return len(self._children)

    @property
    def overflowed(self) -> bool:
        return self._overflow_key in self._children

    def items(self) -> List[Tuple[Tuple[str, ...], object]]:
        return sorted(self._children.items())


class MetricsRegistry:
    """Named metric families plus Prometheus/JSON exposition."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def family(
        self,
        kind: str,
        name: str,
        help: str = "",
        label_names: Tuple[str, ...] = (),
        max_series: Optional[int] = None,
        boundaries: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != tuple(label_names):
                raise ValueError(f"metric {name!r} already registered differently")
            return existing
        family = MetricFamily(
            kind,
            name,
            help=help,
            label_names=tuple(label_names),
            max_series=max_series,
            boundaries=boundaries,
        )
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        return self.family("counter", name, help=help).labels()

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self.family("gauge", name, help=help).labels()

    def histogram(
        self,
        name: str,
        help: str = "",
        boundaries: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self.family(
            "histogram", name, help=help, boundaries=boundaries
        ).labels()

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        return list(self._families.values())

    # ------------------------------------------------------------------ #
    # Exposition
    # ------------------------------------------------------------------ #
    def render_prometheus(self) -> str:
        """Prometheus text exposition (``# HELP`` / ``# TYPE`` + series)."""
        lines: List[str] = []
        for family in self._families.values():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.items():
                pairs = list(zip(family.label_names, key))
                if family.kind == "histogram":
                    cumulative = 0
                    for boundary, count in zip(child.boundaries, child.counts):
                        cumulative += count
                        lines.append(
                            f"{family.name}_bucket"
                            f"{_label_str(pairs + [('le', _fmt(boundary))])}"
                            f" {cumulative}"
                        )
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_label_str(pairs + [('le', '+Inf')])} {child.count}"
                    )
                    lines.append(
                        f"{family.name}_sum{_label_str(pairs)} {_fmt(child.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_label_str(pairs)} {child.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_label_str(pairs)} {_fmt(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    def to_json(self) -> Dict[str, dict]:
        """The same numbers as the text exposition, JSON-serialisable."""
        doc: Dict[str, dict] = {}
        for family in self._families.values():
            series = []
            for key, child in family.items():
                labels = dict(zip(family.label_names, key))
                if family.kind == "histogram":
                    series.append(
                        {
                            "labels": labels,
                            "boundaries": list(child.boundaries),
                            "counts": list(child.counts),
                            "count": child.count,
                            "sum": child.sum,
                            "min": child.min if child.count else None,
                            "max": child.max if child.count else None,
                        }
                    )
                else:
                    series.append({"labels": labels, "value": child.value})
            doc[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "series": series,
            }
        return doc


def _label_str(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (
        str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _fmt(value) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def sample_percentiles_ms(
    latencies_s: Iterable[float],
    percentiles: Sequence[float] = (50, 95, 99),
) -> Dict[str, float]:
    """Exact percentiles (milliseconds) over raw latency samples.

    The one shared helper behind ``repro.eval.latency_percentiles`` and the
    load benches; NaN-filled when the sample list is empty.
    """
    values = np.asarray(list(latencies_s), dtype=np.float64)
    if values.size == 0:
        return {f"p{int(p)}_ms": math.nan for p in percentiles}
    return {
        f"p{int(p)}_ms": float(np.percentile(values, p) * 1e3)
        for p in percentiles
    }
