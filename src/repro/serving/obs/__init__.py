"""Observability layer for the serving stack: metrics, tracing, recorder.

Four small modules, no dependencies on the gateway (the gateway depends on
*us*):

=================  ====================================================
module             contents
=================  ====================================================
``obs.ids``        splitmix64 (vectorised + scalar) deterministic ids,
                   the shared salt-mixing primitive (``mix64``) and
                   routing-key canonicalisers used by every router
``obs.metrics``    Counter / Gauge / log-bucket Histogram, snapshots,
                   labeled families with overflow caps, registry with
                   Prometheus text + JSON exposition
``obs.tracing``    Tracer / Trace / Span, batch-level span grafting,
                   pipe-portable worker span dicts
``obs.flight``     FlightRecorder ring buffer (always-keep slow/shed)
``obs.health``     HealthSnapshot — the poll-cheap fleet-router signal
=================  ====================================================
"""

from repro.serving.obs.flight import FlightRecorder
from repro.serving.obs.health import HealthSnapshot
from repro.serving.obs.ids import (
    GOLDEN_GAMMA,
    ids_to_u64,
    key_to_u64,
    mix64,
    mix64_int,
    splitmix64,
    splitmix64_int,
)
from repro.serving.obs.metrics import (
    DEFAULT_LATENCY_BOUNDARIES,
    OVERFLOW_LABEL,
    POW2_BOUNDARIES,
    RELATIVE_ERROR_BOUND,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricFamily,
    MetricsRegistry,
    log_boundaries,
    sample_percentiles_ms,
)
from repro.serving.obs.tracing import (
    BatchSpans,
    Span,
    Trace,
    Tracer,
    worker_span,
)

__all__ = [
    "BatchSpans",
    "Counter",
    "DEFAULT_LATENCY_BOUNDARIES",
    "FlightRecorder",
    "Gauge",
    "GOLDEN_GAMMA",
    "HealthSnapshot",
    "Histogram",
    "HistogramSnapshot",
    "ids_to_u64",
    "key_to_u64",
    "log_boundaries",
    "mix64",
    "mix64_int",
    "MetricFamily",
    "MetricsRegistry",
    "OVERFLOW_LABEL",
    "POW2_BOUNDARIES",
    "RELATIVE_ERROR_BOUND",
    "sample_percentiles_ms",
    "Span",
    "splitmix64",
    "splitmix64_int",
    "Trace",
    "Tracer",
    "worker_span",
]
