"""Request tracing: deterministic ids, cheap spans, cross-process context.

A :class:`Trace` follows one request from admission to reply.  Because the
gateway traces *every* request when tracing is on (the flight recorder
tail-samples afterwards, so slow/shed/error requests are never lost), the
per-span cost has to be tiny: spans are stored as plain tuples inside the
trace and only materialised into :class:`Span` objects when something
inspects the trace (``spans()`` / ``format()`` / ``find()``).

Ids are deterministic: the tracer derives trace ids from a splitmix64
stream (seeded, so two runs with the same traffic produce the same ids)
and span ids are finalised from ``trace_id + index * GOLDEN_GAMMA`` — no
RNG, no clock entropy, reproducible across reruns.

Batch-level work (cache planning, backend scoring, shard scatter/merge)
happens once per micro-batch, not once per request.  :class:`BatchSpans`
records those events once; at collect time they are grafted into every
traced request of the batch, each graft minting fresh per-trace span ids.

Shard workers live on the far side of a pipe with their own monotonic
clock.  The scatter span ships a ``(trace-context id, parent span id)``
tuple through the framed protocol; the worker emits a span *dict*
(:func:`worker_span`) measured on its own clock, and the gateway
re-anchors the child inside the observed scatter window when grafting —
durations are the worker's truth, absolute placement is the parent's.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.serving.obs.ids import GOLDEN_GAMMA, splitmix64_int

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Span/trace terminal statuses.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_SHED = "shed"
STATUS_CANCELLED = "cancelled"


@dataclass(frozen=True)
class Span:
    """One materialised timed operation inside a trace."""

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    end_s: float
    status: str = STATUS_OK
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def _span_id(trace_id: int, index: int) -> int:
    return splitmix64_int((trace_id + index * GOLDEN_GAMMA) & _MASK64)


class Trace:
    """Span tree for one request; spans held as tuples until inspected.

    Internal span records are ``(name, start_s, end_s, parent_index,
    status, attrs)``; index 0 is the root ``request`` span.  ``finish()``
    is idempotent and hands the trace to the tracer's recorder exactly
    once.
    """

    __slots__ = (
        "query_id",
        "tag",
        "status",
        "_tracer",
        "_records",
        "_grafts",
        "_finished",
        "_raw_id",
        "_mixed_id",
        "_start_s",
        "_end_s",
        "_root_attrs",
        "admission_end_s",
        "queue_depth",
        "queue_end_s",
        "reply_start_s",
        "reply_end_s",
    )

    def __init__(
        self,
        tracer: "Tracer",
        raw_id: int,
        query_id,
        tag: Optional[str],
        start_s: float,
    ) -> None:
        # Hot path: everything beyond these eight stores — the root record,
        # the records list, the id finalise, the stage-mark slots — is
        # deferred.  Unset __slots__ raise AttributeError, which the cold
        # paths absorb with getattr defaults.
        self._raw_id = raw_id
        self.query_id = query_id
        self.tag = tag
        self.status = STATUS_OK
        self._tracer = tracer
        self._finished = False
        self._start_s = start_s
        self._end_s = start_s

    @property
    def trace_id(self) -> int:
        """Deterministic splitmix64 id, finalised lazily off the hot path."""
        mixed = getattr(self, "_mixed_id", None)
        if mixed is None:
            mixed = self._mixed_id = splitmix64_int(self._raw_id)
        return mixed

    # ------------------------------------------------------------------ #
    # Recording (hot path)
    # ------------------------------------------------------------------ #
    def add_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: int = 0,
        status: str = STATUS_OK,
        **attrs,
    ) -> int:
        """Append one span; returns its index for use as a parent."""
        try:
            records = self._records
        except AttributeError:
            records = self._records = []
        records.append((name, start_s, end_s, parent, status, attrs or None))
        return len(records)  # the root span occupies index 0

    def graft(self, events: List[tuple]) -> None:
        """Adopt batch-level events by reference (no per-request copy).

        The event list is shared, not copied — the per-request cost of a
        64-request batch's spans is one list append.  Callers must not
        mutate the event list after grafting; parent indexes are remapped
        lazily when the trace is inspected.
        """
        try:
            self._grafts.append(events)
        except AttributeError:
            self._grafts = [events]

    def finish(
        self, status: str = STATUS_OK, end_s: Optional[float] = None, **attrs
    ) -> None:
        """Close the root span and deliver the trace to the recorder once."""
        if self._finished:
            return
        self._finished = True
        self.status = status
        if attrs:
            existing = getattr(self, "_root_attrs", None)
            self._root_attrs = {**existing, **attrs} if existing else attrs
        self._end_s = self._tracer.clock() if end_s is None else end_s
        self._tracer._record(self)

    def finish_ok(self, end_s: float) -> None:
        """``finish(STATUS_OK, end_s=...)`` without the kwargs machinery —
        the per-request completion loop calls this thousands of times."""
        if self._finished:
            return
        self._finished = True
        self._end_s = end_s
        self._tracer._record(self)

    # ------------------------------------------------------------------ #
    # Inspection (cold path)
    # ------------------------------------------------------------------ #
    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def start_s(self) -> float:
        return self._start_s

    @property
    def duration_s(self) -> float:
        return self._end_s - self._start_s

    def _all_records(self) -> List[tuple]:
        """Root, direct records, synthesised stage spans, grafted events.

        The fast-path stage marks become real span tuples here (all
        children of the root); grafted events keep their internal parent
        links, remapped by their offset in the combined list.
        """
        combined = [
            (
                "request",
                self._start_s,
                self._end_s,
                None,
                self.status,
                getattr(self, "_root_attrs", None),
            )
        ]
        combined.extend(getattr(self, "_records", ()))
        admission_end_s = getattr(self, "admission_end_s", None)
        if admission_end_s is not None:
            depth = getattr(self, "queue_depth", None)
            attrs = None if depth is None else {"queue_depth": depth}
            combined.append(
                ("admission", self._start_s, admission_end_s, 0, STATUS_OK, attrs)
            )
            queue_end_s = getattr(self, "queue_end_s", None)
            if queue_end_s is not None:
                # Queue wait starts the moment admission enqueued it.
                combined.append(
                    ("queue", admission_end_s, queue_end_s, 0, STATUS_OK, None)
                )
        reply_end_s = getattr(self, "reply_end_s", None)
        if reply_end_s is not None:
            combined.append(
                ("reply", self.reply_start_s, reply_end_s, 0, STATUS_OK, None)
            )
        for events in getattr(self, "_grafts", ()):
            offset = len(combined)
            for name, start_s, end_s, parent, status, attrs in events:
                combined.append(
                    (
                        name,
                        start_s,
                        end_s,
                        0 if parent is None else offset + parent,
                        status,
                        attrs,
                    )
                )
        return combined

    def spans(self) -> List[Span]:
        """Materialise every span with deterministic ids."""
        records = self._all_records()
        ids = [_span_id(self.trace_id, index) for index in range(len(records))]
        spans = []
        for index, (name, start_s, end_s, parent, status, attrs) in enumerate(
            records
        ):
            spans.append(
                Span(
                    trace_id=self.trace_id,
                    span_id=ids[index],
                    parent_id=None if parent is None else ids[parent],
                    name=name,
                    start_s=start_s,
                    end_s=end_s,
                    status=status,
                    attrs=dict(attrs) if attrs else {},
                )
            )
        return spans

    @property
    def root(self) -> Span:
        return self.spans()[0]

    def find(self, name: str) -> Optional[Span]:
        for span in self.spans():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List[Span]:
        return [span for span in self.spans() if span.name == name]

    def children(self, parent: Span) -> List[Span]:
        return [s for s in self.spans() if s.parent_id == parent.span_id]

    def format(self) -> str:
        """Render the span tree, one line per span, indented by depth.

        Siblings print in start-time order (grafted batch events land
        after the direct records, so insertion order is not chronology).
        """
        spans = self.spans()
        children: Dict[Optional[int], List[int]] = {}
        for index, record in enumerate(self._all_records()):
            children.setdefault(record[3], []).append(index)
        for siblings in children.values():
            siblings.sort(key=lambda index: spans[index].start_s)

        lines = [
            f"trace {self.trace_id:#018x} query={self.query_id!r} "
            f"tag={self.tag!r} status={self.status} "
            f"{self.duration_s * 1e3:.3f}ms"
        ]

        def walk(index: int, depth: int) -> None:
            span = spans[index]
            attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
            flag = "" if span.status == STATUS_OK else f" [{span.status}]"
            lines.append(
                "  " * depth
                + f"- {span.name} {span.duration_s * 1e3:.3f}ms{flag}"
                + (f" ({attrs})" if attrs else "")
            )
            for child in children.get(index, ()):
                walk(child, depth + 1)

        walk(0, 0)
        return "\n".join(lines)


class BatchSpans:
    """Once-per-batch span events, grafted into each traced request.

    Events mirror the trace's internal tuples but use event *indexes* as
    parents (``None`` means "child of the request root").  ``ctx_id`` is a
    deterministic batch context id; it doubles as the trace-context id
    shipped to shard workers over the pipe.
    """

    __slots__ = ("clock", "ctx_id", "events")

    def __init__(self, clock: Callable[[], float], ctx_id: int) -> None:
        self.clock = clock
        self.ctx_id = ctx_id
        self.events: List[tuple] = []

    def add(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: Optional[int] = None,
        status: str = STATUS_OK,
        **attrs,
    ) -> int:
        self.events.append((name, start_s, end_s, parent, status, attrs or None))
        return len(self.events) - 1

    def pipe_context(self) -> Tuple[int, int]:
        """(trace-context id, parent span id) for the framed-pipe protocol."""
        return (self.ctx_id, _span_id(self.ctx_id, 0))

    def graft_into(self, trace: Trace) -> None:
        """Share this batch's events with one traced request (by reference —
        do not ``add`` to this ``BatchSpans`` after the first graft)."""
        trace.graft(self.events)


def worker_span(
    trace_ctx: Tuple[int, int],
    shard: int,
    start_s: float,
    end_s: float,
    **attrs,
) -> dict:
    """Span dict a shard worker ships back over the pipe.

    ``start_s``/``end_s`` are on the *worker's* monotonic clock — only the
    duration is meaningful to the parent, which re-anchors the span inside
    its scatter window.  The pid is recorded so a grafted span proves it
    crossed the process boundary.
    """
    ctx_id, parent_id = trace_ctx
    return {
        "name": "shard_worker",
        "span_id": _span_id(ctx_id, shard + 1),
        "parent_id": parent_id,
        "shard": shard,
        "start_s": start_s,
        "end_s": end_s,
        "attrs": {"pid": os.getpid(), **attrs},
    }


class Tracer:
    """Mints traces with deterministic ids and routes finished ones.

    ``enabled=False`` turns :meth:`start_request` into a ``None`` return,
    which every instrumentation site treats as "don't trace" — the cost of
    disabled tracing is one attribute check per request.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        recorder=None,
        seed: int = 0,
        enabled: bool = True,
    ) -> None:
        self.clock = clock
        self.recorder = recorder
        self.enabled = enabled
        self.traces_started = 0
        self.traces_finished = 0
        self._seed = splitmix64_int(seed)
        self._counter = 0

    def _next_raw(self) -> int:
        """Next value of the raw id stream; the splitmix64 finalise happens
        lazily (``Trace.trace_id``) so the hot path pays one add."""
        self._counter += 1
        return (self._seed + self._counter * GOLDEN_GAMMA) & _MASK64

    def _next_id(self) -> int:
        return splitmix64_int(self._next_raw())

    def start_request(
        self,
        query_id=None,
        tag: Optional[str] = None,
        start_s: Optional[float] = None,
    ) -> Optional[Trace]:
        if not self.enabled:
            return None
        raw_id = self._next_raw()
        self.traces_started += 1
        if start_s is None:
            start_s = self.clock()
        return Trace(self, raw_id, query_id, tag, start_s)

    def batch_context(self) -> int:
        """A fresh deterministic id for one micro-batch's shared spans."""
        return self._next_id()

    def _record(self, trace: Trace) -> None:
        self.traces_finished += 1
        if self.recorder is not None:
            self.recorder.record(trace)
