"""OPQ: an orthonormal rotation learned on top of product quantization.

PQ's reconstruction error depends on how the embedding axes are cut into
sub-spaces: correlated or unevenly-scaled coordinates that share a sub-space
waste codebook capacity while easy sub-spaces idle.  Optimized Product
Quantization (OPQ, Ge et al. CVPR'13) learns an orthonormal rotation ``R``
so the *rotated* table quantizes better, solving

    min_{R, codebooks}  || X R^T - PQ(X R^T) ||_F^2     s.t.  R^T R = I

by alternating minimization.  With ``R`` fixed, the codebooks are the
ordinary per-sub-space k-means of :class:`ProductQuantizer` (the seeded
``kmeans.py`` Lloyd loop).  With the codebooks and codes fixed, the best
rotation is an orthogonal Procrustes problem solved exactly by one SVD:

    M = X^T X_hat = U S V^T      =>      R = V U^T

where ``X_hat`` is the PQ reconstruction of the rotated data.  ``R`` starts
from an eigen-allocation init: principal directions of the table, dealt to
sub-spaces so the variance each sub-space must encode is balanced (the
"parametric" OPQ warm start, which contributes most of the win on
near-Gaussian embeddings).

Because ``R`` is orthonormal, inner products survive the rotation —

    q . decode(code) == (R q) . codebook_reconstruction(code)

— so MIPS scoring rotates the query once inside ``adc_tables`` and reuses
the untouched ADC machinery (and the IVF-PQ scan loop) unchanged.  The
learned ``(padded_dim, padded_dim)`` float32 matrix persists as a
content-addressed snapshot chunk, so warm-started gateways, fleet replicas
and shard workers serve rotated codes without re-running the alternation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.serving.quant.pq import ProductQuantizer, PQTable


class OPQQuantizer(ProductQuantizer):
    """A :class:`ProductQuantizer` with a learned orthonormal pre-rotation.

    Drop-in: ``fit``/``encode``/``decode``/``adc_tables``/``adc_scores``
    keep their contracts, the rotation is applied internally in padded
    space.  ``opq_iters`` controls the alternating-minimization rounds
    (0 keeps the eigen-allocation init); ``opq_init`` is ``"eigen"`` or
    ``"identity"``.
    """

    def __init__(self, num_subspaces: int = 8, num_centroids: int = 256,
                 kmeans_iters: int = 10, seed: int = 0,
                 init: str = "kmeans++", opq_iters: int = 4,
                 opq_init: str = "eigen") -> None:
        super().__init__(num_subspaces=num_subspaces,
                         num_centroids=num_centroids,
                         kmeans_iters=kmeans_iters, seed=seed, init=init)
        if opq_iters < 0:
            raise ValueError("opq_iters must be >= 0")
        if opq_init not in ("eigen", "identity"):
            raise ValueError("opq_init must be 'eigen' or 'identity'")
        self.opq_iters = opq_iters
        self.opq_init = opq_init
        self.rotation_: Optional[np.ndarray] = None  # (pdim, pdim) float32

    # ------------------------------------------------------------------ #
    # Rotation plumbing (hooks used by the base encode/decode/adc paths)
    # ------------------------------------------------------------------ #
    def rotate(self, vectors: np.ndarray) -> np.ndarray:
        """Apply the learned rotation: ``(n, dim)`` -> ``(n, padded_dim)``."""
        if self.rotation_ is None:
            raise RuntimeError("quantizer not fitted")
        vectors = self._pad(np.asarray(vectors, dtype=np.float32))
        return vectors @ self.rotation_.T

    def _project(self, padded: np.ndarray) -> np.ndarray:
        if self.rotation_ is None:
            raise RuntimeError("quantizer not fitted")
        return np.asarray(padded, dtype=np.float32) @ self.rotation_.T

    def _unproject(self, padded: np.ndarray) -> np.ndarray:
        if self.rotation_ is None:
            raise RuntimeError("quantizer not fitted")
        return padded @ self.rotation_

    # ------------------------------------------------------------------ #
    # Training: eigen-allocation init + alternating k-means / Procrustes
    # ------------------------------------------------------------------ #
    def fit(self, vectors: np.ndarray) -> "OPQQuantizer":
        padded = self._pad(np.asarray(vectors, dtype=np.float32), fit=True)
        data = padded.astype(np.float64)
        rotation = self._init_rotation(data)
        for _ in range(self.opq_iters):
            rotated = (data @ rotation.T).astype(np.float32)
            self._fit_padded(rotated)
            codes = self._assign_padded(rotated)
            # Procrustes step: the orthonormal R closest (in Frobenius
            # sense) to mapping the data onto its fixed reconstruction.
            reconstructed = self._reconstruct_projected(codes).astype(np.float64)
            u, _, vt = np.linalg.svd(data.T @ reconstructed)
            rotation = vt.T @ u.T
        self.rotation_ = np.ascontiguousarray(rotation, dtype=np.float32)
        # Final codebooks must match the final rotation exactly.
        self._fit_padded((data @ rotation.T).astype(np.float32))
        return self

    def _init_rotation(self, data: np.ndarray) -> np.ndarray:
        pdim = self.padded_dim_
        if self.opq_init == "identity":
            return np.eye(pdim)
        # Eigen-allocation: deal principal directions to sub-spaces greedily
        # so each sub-space carries a balanced share of the (log) variance.
        cov = (data.T @ data) / max(1, data.shape[0])
        eigvals, eigvecs = np.linalg.eigh(cov)
        order = np.argsort(-eigvals)
        eigvals, eigvecs = eigvals[order], eigvecs[:, order]
        dsub = pdim // self.num_subspaces
        buckets: list[list[int]] = [[] for _ in range(self.num_subspaces)]
        loads = np.zeros(self.num_subspaces)
        for direction in range(pdim):
            open_buckets = [
                b for b in range(self.num_subspaces) if len(buckets[b]) < dsub
            ]
            target = min(open_buckets, key=lambda b: loads[b])
            buckets[target].append(direction)
            loads[target] += np.log(max(float(eigvals[direction]), 1e-12))
        slots = [direction for bucket in buckets for direction in bucket]
        # Row j of R is the principal direction assigned to rotated slot j.
        return eigvecs[:, slots].T.copy()


@dataclass(frozen=True)
class OPQTable(PQTable):
    """A rotated-PQ service table; the quantizer carries the rotation."""

    kind = "opq"

    @property
    def nbytes(self) -> int:
        """Resident size: codes + codebooks + the rotation matrix."""
        return int(
            self.codes.nbytes
            + self.quantizer.codebooks_.nbytes
            + self.quantizer.rotation_.nbytes
        )

    def rows(self, lo: int, hi: int) -> "OPQTable":
        """A zero-copy view of one contiguous row range (shard layout)."""
        return OPQTable(codes=self.codes[lo:hi], quantizer=self.quantizer)


def quantize_opq(vectors: np.ndarray, num_subspaces: int = 8,
                 num_centroids: int = 256, kmeans_iters: int = 10,
                 seed: int = 0, init: str = "kmeans++",
                 opq_iters: int = 4, opq_init: str = "eigen") -> OPQTable:
    """Fit + encode one float table into an immutable :class:`OPQTable`."""
    quantizer = OPQQuantizer(
        num_subspaces=num_subspaces, num_centroids=num_centroids,
        kmeans_iters=kmeans_iters, seed=seed, init=init,
        opq_iters=opq_iters, opq_init=opq_init,
    ).fit(vectors)
    codes = quantizer.encode(vectors)
    codes.setflags(write=False)
    return OPQTable(codes=codes, quantizer=quantizer)
