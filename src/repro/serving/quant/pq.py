"""Product quantization: sub-space codebooks + asymmetric-distance scoring.

Product quantization (PQ) splits the embedding dimension into ``M``
sub-spaces and learns a small k-means codebook (``K <= 256`` centroids, so a
code fits one byte) independently per sub-space; a vector is stored as its
``M`` nearest-centroid ids — one byte per sub-space instead of 4–8 bytes per
*dimension*.  With ``dim = 48`` and ``M = 8`` the service table shrinks 24x
against float32 while the codebooks stay a few kilobytes.

Scoring is *asymmetric* (ADC): the query stays full-precision and is scored
against reconstructed codes without decompressing the table.  For the
paper's MIPS retrieval (Sec. V-F.1, inner-product head) the identity

    q . decode(code) == sum_m  <q_m, codebook_m[code_m]>

means one ``(M, K)`` lookup table of query/centroid inner products per query
turns scoring a candidate into ``M`` table lookups and adds — no float
reconstruction of the catalogue, which is what lets IVF-PQ scan probed cells
straight over the byte codes (:mod:`repro.serving.quant.ivfpq`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.serving.quant.kmeans import assign, kmeans


class ProductQuantizer:
    """k-means-trained sub-space codebooks with uint8 codes."""

    def __init__(self, num_subspaces: int = 8, num_centroids: int = 256,
                 kmeans_iters: int = 10, seed: int = 0,
                 init: str = "kmeans++") -> None:
        if num_subspaces <= 0:
            raise ValueError("num_subspaces must be positive")
        if not 1 < num_centroids <= 256:
            raise ValueError("num_centroids must be in (1, 256] so codes fit uint8")
        self.num_subspaces = num_subspaces
        self.num_centroids = num_centroids
        self.kmeans_iters = kmeans_iters
        self.seed = seed
        self.init = init
        self.dim_: Optional[int] = None
        self.padded_dim_: Optional[int] = None
        self.codebooks_: Optional[np.ndarray] = None  # (M, K, dsub) float32

    # ------------------------------------------------------------------ #
    # Train / encode / decode
    # ------------------------------------------------------------------ #
    @property
    def subspace_dim(self) -> int:
        if self.padded_dim_ is None:
            raise RuntimeError("quantizer not fitted")
        return self.padded_dim_ // self.num_subspaces

    def fit(self, vectors: np.ndarray) -> "ProductQuantizer":
        vectors = self._pad(np.asarray(vectors, dtype=np.float32), fit=True)
        self._fit_padded(vectors)
        return self

    def _fit_padded(self, vectors: np.ndarray) -> None:
        """Per-sub-space k-means over an already padded/projected matrix."""
        rng = np.random.default_rng(self.seed)
        num_centroids = min(self.num_centroids, vectors.shape[0])
        dsub = self.subspace_dim
        codebooks = np.zeros(
            (self.num_subspaces, num_centroids, dsub), dtype=np.float32
        )
        for m in range(self.num_subspaces):
            sub = vectors[:, m * dsub:(m + 1) * dsub].astype(np.float64)
            centroids, _ = kmeans(sub, num_centroids, iters=self.kmeans_iters,
                                  rng=rng, init=self.init)
            codebooks[m] = centroids.astype(np.float32)
        self.codebooks_ = codebooks

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """``(n, dim)`` float matrix -> ``(n, M)`` uint8 code matrix."""
        if self.codebooks_ is None:
            raise RuntimeError("quantizer not fitted")
        vectors = self._project(self._pad(np.asarray(vectors, dtype=np.float32)))
        return self._assign_padded(vectors)

    def _assign_padded(self, vectors: np.ndarray) -> np.ndarray:
        """Nearest-centroid codes for an already padded/projected matrix."""
        dsub = self.subspace_dim
        codes = np.empty((vectors.shape[0], self.num_subspaces), dtype=np.uint8)
        for m in range(self.num_subspaces):
            sub = vectors[:, m * dsub:(m + 1) * dsub]
            codes[:, m] = assign(sub, self.codebooks_[m]).astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct float32 embeddings (padding stripped) from codes."""
        if self.codebooks_ is None:
            raise RuntimeError("quantizer not fitted")
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != self.num_subspaces:
            raise ValueError(f"codes must be (n, {self.num_subspaces})")
        return self._unproject(self._reconstruct_projected(codes))[:, :self.dim_]

    def _reconstruct_projected(self, codes: np.ndarray) -> np.ndarray:
        """Centroid lookup in code space, before any un-projection."""
        dsub = self.subspace_dim
        out = np.empty((codes.shape[0], self.padded_dim_), dtype=np.float32)
        for m in range(self.num_subspaces):
            out[:, m * dsub:(m + 1) * dsub] = self.codebooks_[m][codes[:, m]]
        return out

    # ------------------------------------------------------------------ #
    # Asymmetric-distance (ADC) scoring
    # ------------------------------------------------------------------ #
    def adc_tables(self, queries: np.ndarray) -> np.ndarray:
        """Per-query inner-product lookup tables, shape ``(batch, M, K)``.

        ``tables[q, m, c] = <query_q sub-vector m, codebook_m[c]>`` — scoring
        any candidate then costs ``M`` lookups + adds, independent of dim.
        """
        if self.codebooks_ is None:
            raise RuntimeError("quantizer not fitted")
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None, :]
        queries = self._project(self._pad(queries))
        dsub = self.subspace_dim
        num_centroids = self.codebooks_.shape[1]
        tables = np.empty(
            (queries.shape[0], self.num_subspaces, num_centroids), dtype=np.float32
        )
        for m in range(self.num_subspaces):
            tables[:, m, :] = queries[:, m * dsub:(m + 1) * dsub] @ self.codebooks_[m].T
        return tables

    def adc_scores(self, tables: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """``(batch, n)`` scores of every query table against every code row."""
        if self.codebooks_ is None:
            raise RuntimeError("quantizer not fitted")
        codes = np.asarray(codes)
        out = np.zeros((tables.shape[0], codes.shape[0]), dtype=np.float32)
        for m in range(self.num_subspaces):
            out += tables[:, m, codes[:, m]]
        return out

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _project(self, padded: np.ndarray) -> np.ndarray:
        """Map padded vectors into code space (identity; OPQ rotates here)."""
        return padded

    def _unproject(self, padded: np.ndarray) -> np.ndarray:
        """Map code-space reconstructions back to padded input space."""
        return padded

    def _pad(self, vectors: np.ndarray, fit: bool = False) -> np.ndarray:
        """Zero-pad columns so dim divides evenly into sub-spaces.

        Padded coordinates are identically zero for every training point, so
        learned centroids are zero there and padded queries contribute
        nothing to any inner product.
        """
        if vectors.ndim != 2:
            raise ValueError("expected a (n, dim) matrix")
        if fit:
            self.dim_ = vectors.shape[1]
            self.padded_dim_ = -(-vectors.shape[1] // self.num_subspaces) * self.num_subspaces
        elif vectors.shape[1] != self.dim_:
            raise ValueError(f"expected dim {self.dim_}, got {vectors.shape[1]}")
        if vectors.shape[1] == self.padded_dim_:
            return vectors
        padded = np.zeros((vectors.shape[0], self.padded_dim_), dtype=vectors.dtype)
        padded[:, :vectors.shape[1]] = vectors
        return padded


@dataclass(frozen=True)
class PQTable:
    """A PQ-coded service table, row-aligned with the fp table it mirrors."""

    codes: np.ndarray  # (num_vectors, M) uint8, read-only
    quantizer: ProductQuantizer

    kind = "pq"

    @property
    def num_vectors(self) -> int:
        return self.codes.shape[0]

    @property
    def dim(self) -> int:
        return int(self.quantizer.dim_)

    @property
    def nbytes(self) -> int:
        """Resident size of the compressed table (codes + codebooks)."""
        return int(self.codes.nbytes + self.quantizer.codebooks_.nbytes)

    def decode(self, ids: Optional[np.ndarray] = None) -> np.ndarray:
        codes = self.codes if ids is None else self.codes[np.asarray(ids, dtype=np.int64)]
        return self.quantizer.decode(codes)

    def scores(self, queries: np.ndarray) -> np.ndarray:
        """Full ADC scan: ``(batch, num_vectors)`` without decompressing."""
        tables = self.quantizer.adc_tables(queries)
        return self.quantizer.adc_scores(tables, self.codes)

    def rows(self, lo: int, hi: int) -> "PQTable":
        """A zero-copy view of one contiguous row range (shard layout)."""
        return PQTable(codes=self.codes[lo:hi], quantizer=self.quantizer)


def quantize_pq(vectors: np.ndarray, num_subspaces: int = 8,
                num_centroids: int = 256, kmeans_iters: int = 10,
                seed: int = 0, init: str = "kmeans++") -> PQTable:
    """Fit + encode one float table into an immutable :class:`PQTable`."""
    quantizer = ProductQuantizer(
        num_subspaces=num_subspaces, num_centroids=num_centroids,
        kmeans_iters=kmeans_iters, seed=seed, init=init,
    ).fit(vectors)
    codes = quantizer.encode(vectors)
    codes.setflags(write=False)
    return PQTable(codes=codes, quantizer=quantizer)
