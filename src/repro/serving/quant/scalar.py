"""Symmetric int8 scalar quantization with per-dimension scales.

The daily-refresh serving contract (Sec. V-F / Fig. 9) re-exports the full
service table every day; at production catalogue sizes the table's resident
size — not the scoring FLOPs — caps how many services one shard can hold.
Symmetric int8 quantization stores each embedding entry in one byte:

    code[i, d] = clip(round(x[i, d] / scale[d]), -127, 127)

with ``scale[d] = max_i |x[i, d]| / 127`` chosen per dimension, so the
round-trip error is bounded by ``scale[d] / 2`` elementwise.  Scoring never
decompresses the table: folding the scales into the query once,

    q' = q * scale        =>        q . decode(code) == q' . code,

turns maximum-inner-product search over the quantized table into a plain
matmul against the int8 codes.

:meth:`Int8Table.scores_int` goes one step further and quantizes the folded
query itself to int8, so the hot matmul runs over integer operands end to
end (int8 x int8 products accumulated in int32).  The extra rounding error
is bounded per score by ``qscale / 2 * ||code_row||_1`` where ``qscale`` is
the query quantization step — see :meth:`Int8Table.quantize_queries`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


class Int8Quantizer:
    """Per-dimension symmetric linear quantizer onto the int8 range."""

    def __init__(self) -> None:
        self.scales_: Optional[np.ndarray] = None

    @property
    def dim(self) -> int:
        if self.scales_ is None:
            raise RuntimeError("quantizer not fitted")
        return self.scales_.shape[0]

    def fit(self, vectors: np.ndarray) -> "Int8Quantizer":
        vectors = _check_matrix(vectors)
        peaks = np.max(np.abs(vectors), axis=0)
        scales = peaks / 127.0
        scales[scales == 0.0] = 1.0  # constant-zero dims decode to exact zero
        self.scales_ = scales.astype(np.float32)
        return self

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """``(n, dim)`` float matrix -> ``(n, dim)`` int8 code matrix."""
        vectors = _check_matrix(vectors)
        if self.scales_ is None:
            raise RuntimeError("quantizer not fitted")
        if vectors.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vectors.shape[1]}")
        codes = np.rint(vectors / self.scales_)
        return np.clip(codes, -127, 127).astype(np.int8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct float32 embeddings from int8 codes."""
        if self.scales_ is None:
            raise RuntimeError("quantizer not fitted")
        return np.asarray(codes, dtype=np.float32) * self.scales_

    def transform_queries(self, queries: np.ndarray) -> np.ndarray:
        """Fold the scales into fp queries: ``q' . code == q . decode(code)``."""
        if self.scales_ is None:
            raise RuntimeError("quantizer not fitted")
        queries = _check_matrix(queries)
        return queries.astype(np.float32) * self.scales_


@dataclass(frozen=True)
class Int8Table:
    """An int8-coded service table, row-aligned with the fp table it mirrors.

    ``query_scale`` optionally freezes the *query* quantization step used by
    the integer scoring path.  The store computes it at publish time from
    the snapshot's query table, so every replica — warm-started gateways,
    fleet revivals, shard workers — quantizes queries identically and ranks
    bit-identically.  When ``None`` the step is derived per query.
    """

    codes: np.ndarray   # (num_vectors, dim) int8, read-only
    scales: np.ndarray  # (dim,) float32
    query_scale: Optional[float] = None

    kind = "int8"

    @property
    def num_vectors(self) -> int:
        return self.codes.shape[0]

    @property
    def dim(self) -> int:
        return self.codes.shape[1]

    @property
    def nbytes(self) -> int:
        """Resident size of the compressed table (codes + scales).

        Includes the transposed code copy once the integer path has
        materialized it (see :attr:`codes_t`).
        """
        cached = self.__dict__.get("_codes_t")
        extra = 0 if cached is None else int(cached.nbytes)
        return int(self.codes.nbytes + self.scales.nbytes) + extra

    @property
    def codes_t(self) -> np.ndarray:
        """``(dim, num_vectors)`` contiguous transpose, built lazily.

        The integer path streams columns of this layout through BLAS; a
        per-chunk strided transpose measures slower than one up-front copy.
        Cached on first use (a benign race under threads — both winners
        produce identical read-only arrays).
        """
        cached = self.__dict__.get("_codes_t")
        if cached is None:
            cached = np.ascontiguousarray(self.codes.T)
            cached.setflags(write=False)
            object.__setattr__(self, "_codes_t", cached)
        return cached

    def decode(self, ids: Optional[np.ndarray] = None) -> np.ndarray:
        codes = self.codes if ids is None else self.codes[np.asarray(ids, dtype=np.int64)]
        return codes.astype(np.float32) * self.scales

    def scores(self, queries: np.ndarray, chunk: int = 8192) -> np.ndarray:
        """``(batch, num_vectors)`` inner products against the decoded table.

        The scales are folded into the queries, and one preallocated float32
        scratch buffer receives each widened code chunk — peak temp memory
        stays bounded regardless of table size and no per-chunk allocation
        hits the hot loop.
        """
        queries = _check_matrix(queries).astype(np.float32) * self.scales
        out = np.empty((queries.shape[0], self.num_vectors), dtype=np.float32)
        chunk = max(1, chunk)
        scratch = np.empty(
            (min(chunk, max(1, self.num_vectors)), self.dim), dtype=np.float32
        )
        for lo in range(0, self.num_vectors, chunk):
            hi = min(lo + chunk, self.num_vectors)
            widened = scratch[:hi - lo]
            np.copyto(widened, self.codes[lo:hi], casting="unsafe")
            out[:, lo:hi] = queries @ widened.T
        return out

    def quantize_queries(self, queries: np.ndarray) -> tuple:
        """Quantize scale-folded queries to int8: ``(q8, qscale)``.

        ``q8`` holds integer code values in a float32 carrier (so it can
        ride BLAS); ``qscale`` is the per-query step such that
        ``(q8[i] . codes[j]) * qscale[i]`` approximates the float-folded
        score.  Rounding moves each folded coordinate by at most
        ``qscale / 2``, so the documented error bound per score is

            |scores_int - scores|  <=  qscale / 2 * ||codes[j]||_1.

        With :attr:`query_scale` set the step is the published global one
        (deterministic across replicas); otherwise it is ``peak / 127`` of
        each folded query row.
        """
        folded = _check_matrix(queries).astype(np.float32) * self.scales
        if self.query_scale is not None:
            qscale = np.full(
                folded.shape[0], np.float32(self.query_scale), dtype=np.float32
            )
        else:
            peaks = np.max(np.abs(folded), axis=1) if folded.size else np.zeros(folded.shape[0])
            qscale = np.where(peaks > 0, peaks / 127.0, 1.0).astype(np.float32)
        q8 = np.clip(np.rint(folded / qscale[:, None]), -127.0, 127.0)
        return q8.astype(np.float32), qscale

    def scores_int(self, queries: np.ndarray, chunk: int = 8192) -> np.ndarray:
        """Integer-arithmetic scores: int8 query x int8 codes, exact sums.

        Both operands are int8 code values, so every product is an integer
        with magnitude <= 127**2 and a dot product over ``dim`` terms is an
        integer below ``dim * 127**2``.  While that stays under ``2**24``
        (dim <= 1040) every partial sum is exactly representable in float32,
        so the accumulation is carried in float32 — bit-identical to an
        int32 accumulator but running on BLAS; wider tables fall back to a
        true int32 matmul.  The query scale multiplies back in once at the
        end.
        """
        q8, qscale = self.quantize_queries(queries)
        out = np.empty((q8.shape[0], self.num_vectors), dtype=np.float32)
        codes_t = self.codes_t
        chunk = max(1, chunk)
        qcol = qscale[:, None]
        if self.dim * 127 * 127 < 2 ** 24:
            scratch = np.empty(
                (self.dim, min(chunk, max(1, self.num_vectors))), dtype=np.float32
            )
            for lo in range(0, self.num_vectors, chunk):
                hi = min(lo + chunk, self.num_vectors)
                widened = scratch[:, :hi - lo]
                np.copyto(widened, codes_t[:, lo:hi], casting="unsafe")
                block = out[:, lo:hi]
                np.matmul(q8, widened, out=block)
                # Scale back while the block is cache-hot: one pass over a
                # cold (batch, num_vectors) matrix measures ~8-13% slower.
                block *= qcol
        else:  # pragma: no cover - only reachable past dim 1040
            out[:] = q8.astype(np.int32) @ codes_t.astype(np.int32)
            out *= qcol
        return out

    def rows(self, lo: int, hi: int) -> "Int8Table":
        """A zero-copy view of one contiguous row range (shard layout)."""
        return Int8Table(
            codes=self.codes[lo:hi], scales=self.scales,
            query_scale=self.query_scale,
        )


def quantize_int8(vectors: np.ndarray,
                  queries: Optional[np.ndarray] = None) -> Int8Table:
    """Fit + encode one float table into an immutable :class:`Int8Table`.

    When ``queries`` is given, the global query quantization step
    (``max |q . scales| / 127`` over the query table) is frozen into the
    table so the integer scoring path is deterministic across replicas.
    """
    quantizer = Int8Quantizer().fit(vectors)
    codes = quantizer.encode(vectors)
    codes.setflags(write=False)
    scales = quantizer.scales_.copy()
    scales.setflags(write=False)
    query_scale = None
    if queries is not None:
        folded = _check_matrix(queries).astype(np.float32) * scales
        peak = float(np.max(np.abs(folded))) if folded.size else 0.0
        # Frozen at float32 precision: the snapshot stores the scale as a
        # float32 chunk, so this keeps the in-memory table bit-identical
        # to every restored replica.
        query_scale = float(np.float32(peak / 127.0)) if peak > 0.0 else 1.0
    return Int8Table(codes=codes, scales=scales, query_scale=query_scale)


def _check_matrix(vectors: np.ndarray) -> np.ndarray:
    vectors = np.asarray(vectors)
    if vectors.ndim == 1:
        vectors = vectors[None, :]
    if vectors.ndim != 2:
        raise ValueError("expected a (n, dim) matrix")
    return vectors
