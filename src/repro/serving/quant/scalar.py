"""Symmetric int8 scalar quantization with per-dimension scales.

The daily-refresh serving contract (Sec. V-F / Fig. 9) re-exports the full
service table every day; at production catalogue sizes the table's resident
size — not the scoring FLOPs — caps how many services one shard can hold.
Symmetric int8 quantization stores each embedding entry in one byte:

    code[i, d] = clip(round(x[i, d] / scale[d]), -127, 127)

with ``scale[d] = max_i |x[i, d]| / 127`` chosen per dimension, so the
round-trip error is bounded by ``scale[d] / 2`` elementwise.  Scoring never
decompresses the table: folding the scales into the query once,

    q' = q * scale        =>        q . decode(code) == q' . code,

turns maximum-inner-product search over the quantized table into a plain
matmul against the int8 codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


class Int8Quantizer:
    """Per-dimension symmetric linear quantizer onto the int8 range."""

    def __init__(self) -> None:
        self.scales_: Optional[np.ndarray] = None

    @property
    def dim(self) -> int:
        if self.scales_ is None:
            raise RuntimeError("quantizer not fitted")
        return self.scales_.shape[0]

    def fit(self, vectors: np.ndarray) -> "Int8Quantizer":
        vectors = _check_matrix(vectors)
        peaks = np.max(np.abs(vectors), axis=0)
        scales = peaks / 127.0
        scales[scales == 0.0] = 1.0  # constant-zero dims decode to exact zero
        self.scales_ = scales.astype(np.float32)
        return self

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """``(n, dim)`` float matrix -> ``(n, dim)`` int8 code matrix."""
        vectors = _check_matrix(vectors)
        if self.scales_ is None:
            raise RuntimeError("quantizer not fitted")
        if vectors.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vectors.shape[1]}")
        codes = np.rint(vectors / self.scales_)
        return np.clip(codes, -127, 127).astype(np.int8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct float32 embeddings from int8 codes."""
        if self.scales_ is None:
            raise RuntimeError("quantizer not fitted")
        return np.asarray(codes, dtype=np.float32) * self.scales_

    def transform_queries(self, queries: np.ndarray) -> np.ndarray:
        """Fold the scales into fp queries: ``q' . code == q . decode(code)``."""
        if self.scales_ is None:
            raise RuntimeError("quantizer not fitted")
        queries = _check_matrix(queries)
        return queries.astype(np.float32) * self.scales_


@dataclass(frozen=True)
class Int8Table:
    """An int8-coded service table, row-aligned with the fp table it mirrors."""

    codes: np.ndarray   # (num_vectors, dim) int8, read-only
    scales: np.ndarray  # (dim,) float32

    kind = "int8"

    @property
    def num_vectors(self) -> int:
        return self.codes.shape[0]

    @property
    def dim(self) -> int:
        return self.codes.shape[1]

    @property
    def nbytes(self) -> int:
        """Resident size of the compressed table (codes + scales)."""
        return int(self.codes.nbytes + self.scales.nbytes)

    def decode(self, ids: Optional[np.ndarray] = None) -> np.ndarray:
        codes = self.codes if ids is None else self.codes[np.asarray(ids, dtype=np.int64)]
        return codes.astype(np.float32) * self.scales

    def scores(self, queries: np.ndarray, chunk: int = 8192) -> np.ndarray:
        """``(batch, num_vectors)`` inner products against the decoded table.

        The scales are folded into the queries, so only ``chunk`` code rows
        at a time are widened to float32 — peak temp memory stays bounded
        regardless of table size.
        """
        queries = _check_matrix(queries).astype(np.float32) * self.scales
        out = np.empty((queries.shape[0], self.num_vectors), dtype=np.float32)
        for lo in range(0, self.num_vectors, max(1, chunk)):
            hi = min(lo + chunk, self.num_vectors)
            out[:, lo:hi] = queries @ self.codes[lo:hi].astype(np.float32).T
        return out

    def rows(self, lo: int, hi: int) -> "Int8Table":
        """A zero-copy view of one contiguous row range (shard layout)."""
        return Int8Table(codes=self.codes[lo:hi], scales=self.scales)


def quantize_int8(vectors: np.ndarray) -> Int8Table:
    """Fit + encode one float table into an immutable :class:`Int8Table`."""
    quantizer = Int8Quantizer().fit(vectors)
    codes = quantizer.encode(vectors)
    codes.setflags(write=False)
    scales = quantizer.scales_.copy()
    scales.setflags(write=False)
    return Int8Table(codes=codes, scales=scales)


def _check_matrix(vectors: np.ndarray) -> np.ndarray:
    vectors = np.asarray(vectors)
    if vectors.ndim == 1:
        vectors = vectors[None, :]
    if vectors.ndim != 2:
        raise ValueError("expected a (n, dim) matrix")
    return vectors
