"""Quantized retrieval indexes: IVF-PQ (coarse cells + ADC scan) and int8.

:class:`IVFPQIndex` is the classic IVFADC layout mapped onto the gateway's
:class:`~repro.serving.gateway.index.RetrievalIndex` protocol: a k-means
coarse quantizer partitions the catalogue into inverted lists (like the fp
:class:`~repro.serving.gateway.index.IVFIndex`), but the lists store *PQ
codes of the residuals* ``x - centroid`` instead of float vectors.  A query
scores a probed cell as

    q . x_hat  =  q . centroid  +  ADC(q, residual code)

so the scan touches a few bytes per candidate — an order of magnitude less
memory traffic than the fp scan — and never reconstructs the catalogue.
An optional refinement stage (IVFADC+R) re-scores the ADC shortlist
(``refine_factor * k`` candidates per query) against a symmetric int8 table,
recovering most of the PQ reconstruction loss for one byte per dimension.

Two deviations from the textbook layout keep the pure-numpy scan fast:

* **Balanced cells.**  The coarse assignment is capacity-constrained (every
  cell holds exactly ``ceil(n / num_lists)`` slots, most-confident points
  claim their nearest cell first), so a probe set expands to a *rectangular*
  ``(batch, probes * cell_size)`` candidate block — the entire micro-batch
  is scored with one flat gather and one BLAS matvec, no ragged scatter and
  no per-cell python loop.  Balanced lists also bound worst-case scan cost,
  which is what a latency SLO actually needs (and what a sharded tier wants
  shipped per shard).
* **Sentinel LUT column.**  The handful of padding slots in the last cells
  point at an extra always ``-inf`` column appended to each query's ADC
  table, so padding is masked by the same sum that scores real candidates.

Like every gateway index both classes are immutable once built; the daily
hot-swap (Sec. V-F / Fig. 9) rebuilds them from the freshly published
snapshot.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.serving.gateway.index import RetrievalIndex
from repro.serving.quant.kmeans import kmeans
from repro.serving.quant.opq import OPQQuantizer
from repro.serving.quant.pq import ProductQuantizer
from repro.serving.quant.scalar import Int8Table, quantize_int8

#: Default adaptive-shortlist margin (see ``IVFPQIndex(shrink_margin=...)``).
#: Calibrated on the bench workload: the relative margin an eventually-top-k
#: candidate sits below the ADC kth score reaches ~4.1 at the tail, so 4.0
#: trims only candidates far outside anything the refinement ever promotes.
DEFAULT_SHRINK_MARGIN = 4.0


class Int8Index(RetrievalIndex):
    """Brute-force MIPS over an int8 service table (recall ~1, memory / 4).

    ``int8_table`` lets a caller that already holds the catalogue's int8
    codes (the store publishes one per snapshot, see
    :class:`~repro.serving.gateway.store.VersionedEmbeddingStore`) share it
    instead of re-quantizing — the gateway wires this up automatically.

    ``scoring="int"`` (the default) quantizes the folded query to int8 too
    and scores in integer arithmetic (:meth:`Int8Table.scores_int`);
    ``scoring="float"`` keeps the float-folded matmul of earlier releases.
    """

    name = "int8"

    def __init__(self, chunk: int = 8192,
                 int8_table: Optional[Int8Table] = None,
                 scoring: str = "int") -> None:
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        if scoring not in ("int", "float"):
            raise ValueError("scoring must be 'int' or 'float'")
        self.chunk = chunk
        self.scoring = scoring
        self._prebuilt = int8_table
        self._table: Optional[Int8Table] = None

    def build(self, services: np.ndarray) -> "Int8Index":
        services = np.asarray(services)
        if services.ndim != 2:
            raise ValueError("services must be a (num_services, dim) matrix")
        if self._prebuilt is not None:
            if self._prebuilt.codes.shape != services.shape:
                raise ValueError(
                    f"prebuilt int8 table shape {self._prebuilt.codes.shape} "
                    f"does not match services {services.shape}"
                )
            self._table = self._prebuilt
        else:
            self._table = quantize_int8(services)
        return self

    @property
    def num_services(self) -> int:
        if self._table is None:
            raise RuntimeError("index not built")
        return self._table.num_vectors

    @property
    def nbytes(self) -> int:
        if self._table is None:
            raise RuntimeError("index not built")
        return self._table.nbytes

    @property
    def table(self) -> Int8Table:
        if self._table is None:
            raise RuntimeError("index not built")
        return self._table

    def search(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._table is None:
            raise RuntimeError("index not built")
        queries = self._check_queries(queries, k)
        if self.scoring == "int":
            scores = self._table.scores_int(queries, chunk=self.chunk)
        else:
            scores = self._table.scores(queries, chunk=self.chunk)
        all_ids = np.arange(self._table.num_vectors, dtype=np.int64)
        return self._batched_top_k(all_ids, scores, k)


class IVFPQIndex(RetrievalIndex):
    """Balanced inverted-file index over PQ residual codes (IVFADC+R).

    ``build`` clusters the catalogue into ``num_lists`` equal-size cells,
    trains one shared :class:`ProductQuantizer` on the residuals and lays
    the codes out slot-major.  ``search`` probes the ``num_probes`` best
    cells per query (same affinity rule as the fp IVF index) and scores the
    whole batch's probed candidates with a single ADC gather.

    ``refine="int8"`` (the default) re-scores a ``refine_factor * k``
    shortlist against an int8 copy of the catalogue before the final top-k:
    PQ codes rank the scan cheaply, int8 fixes the near-tie ordering PQ
    blurs.  ``refine=None`` disables the stage (and the int8 table's
    memory).  ``int8_table`` shares an already-quantized copy (the store
    publishes one per snapshot) instead of re-quantizing at build.

    ``rotation="opq"`` trains the residual codebooks through an OPQ learned
    rotation (:class:`~repro.serving.quant.opq.OPQQuantizer`, ``opq_iters``
    alternation rounds) — same scan loop, better codes.  ``shrink_margin``
    adaptively narrows the refinement shortlist per batch: candidates whose
    ADC score falls more than ``margin * (best - kth)`` below the k-th best
    are dropped before the int8 re-score (``None`` disables the shrink).
    """

    name = "ivfpq"

    def __init__(self, num_lists: Optional[int] = None, num_probes: Optional[int] = None,
                 num_subspaces: int = 8, num_centroids: int = 256,
                 kmeans_iters: int = 8, pq_kmeans_iters: int = 10,
                 refine: Optional[str] = "int8", refine_factor: int = 8,
                 slack: float = 1.3, int8_table: Optional[Int8Table] = None,
                 seed: int = 0, rotation: Optional[str] = None,
                 opq_iters: int = 4,
                 shrink_margin: Optional[float] = DEFAULT_SHRINK_MARGIN) -> None:
        if num_lists is not None and num_lists <= 0:
            raise ValueError("num_lists must be positive")
        if num_probes is not None and num_probes <= 0:
            raise ValueError("num_probes must be positive")
        if refine not in (None, "int8"):
            raise ValueError("refine must be None or 'int8'")
        if refine_factor <= 0:
            raise ValueError("refine_factor must be positive")
        if slack < 1.0:
            raise ValueError("slack must be >= 1")
        if rotation not in (None, "opq"):
            raise ValueError("rotation must be None or 'opq'")
        if opq_iters < 0:
            raise ValueError("opq_iters must be >= 0")
        if shrink_margin is not None and shrink_margin < 0:
            raise ValueError("shrink_margin must be None or >= 0")
        self.num_lists = num_lists
        self.num_probes = num_probes
        self.num_subspaces = num_subspaces
        self.num_centroids = num_centroids
        self.kmeans_iters = kmeans_iters
        self.pq_kmeans_iters = pq_kmeans_iters
        self.refine = refine
        self.refine_factor = refine_factor
        self.slack = slack
        self.rotation = rotation
        self.opq_iters = opq_iters
        self.shrink_margin = shrink_margin
        self._prebuilt_int8 = int8_table
        self.seed = seed
        self._shortlist_candidates = 0
        self._shortlist_kept = 0
        self._pq: Optional[ProductQuantizer] = None
        self._refine_table: Optional[Int8Table] = None
        self._centroids: Optional[np.ndarray] = None     # (cells, dim) float32
        self._half_sq_norms: Optional[np.ndarray] = None
        self._slot_ids: Optional[np.ndarray] = None      # (cells * size,) int32, -1 pads
        self._slot_codes: Optional[np.ndarray] = None    # (cells * size, M) uint8
        self._slot_flat_codes: Optional[np.ndarray] = None  # pre-offset LUT positions
        self._cell_size = 0
        self._sum_ones: Optional[np.ndarray] = None
        self._num_services = 0

    # ------------------------------------------------------------------ #
    # Build: balanced coarse cells + residual PQ, slot-major layout
    # ------------------------------------------------------------------ #
    def build(self, services: np.ndarray) -> "IVFPQIndex":
        services = np.asarray(services, dtype=np.float64)
        if services.ndim != 2:
            raise ValueError("services must be a (num_services, dim) matrix")
        num_services = services.shape[0]
        # Finer default cells than the fp IVF (3x sqrt(n)): byte codes make
        # small lists cheap to scan, and finer granularity buys coverage per
        # scanned slot (the probe default scales to match, ~1.3 sqrt(cells)).
        num_lists = self.num_lists or max(1, int(round(3 * np.sqrt(num_services))))
        num_lists = min(num_lists, num_services)
        centroids, _ = kmeans(
            services, num_lists, iters=max(1, self.kmeans_iters), rng=self.seed
        )
        assignment = _balanced_assign(services, centroids, self.slack)
        # Re-fit centroids on the balanced membership so residuals (and the
        # probing affinity) reflect the lists actually being scanned.
        for cell in range(num_lists):
            members = assignment == cell
            if np.any(members):
                centroids[cell] = services[members].mean(axis=0)
        residuals = services - centroids[assignment]
        if self.rotation == "opq":
            pq: ProductQuantizer = OPQQuantizer(
                num_subspaces=self.num_subspaces,
                num_centroids=self.num_centroids,
                kmeans_iters=self.pq_kmeans_iters, seed=self.seed,
                opq_iters=self.opq_iters,
            ).fit(residuals)
        else:
            pq = ProductQuantizer(
                num_subspaces=self.num_subspaces,
                num_centroids=self.num_centroids,
                kmeans_iters=self.pq_kmeans_iters, seed=self.seed,
            ).fit(residuals)
        codes = pq.encode(residuals)

        # Slot-major layout: cell c owns slots [c * size, (c + 1) * size);
        # unused slots hold id -1 and point at the sentinel LUT column.
        size = int(np.max(np.bincount(assignment, minlength=num_lists)))
        num_subspaces, num_centroids = pq.num_subspaces, pq.codebooks_.shape[1]
        sentinel = num_subspaces * num_centroids  # the appended -inf column
        flat_dtype = np.int16 if sentinel + 1 <= np.iinfo(np.int16).max else np.int32
        self._slot_ids = np.full(num_lists * size, -1, dtype=np.int32)
        self._slot_codes = np.zeros((num_lists * size, num_subspaces), dtype=np.uint8)
        self._slot_flat_codes = np.full(
            (num_lists * size, num_subspaces), sentinel, dtype=flat_dtype
        )
        offsets = np.arange(num_subspaces, dtype=np.int64) * num_centroids
        order = np.argsort(assignment, kind="stable")
        fill = np.concatenate([
            np.arange(cell * size, cell * size + count)
            for cell, count in zip(*np.unique(assignment, return_counts=True))
        ])
        self._slot_ids[fill] = order.astype(np.int32)
        self._slot_codes[fill] = codes[order]
        self._slot_flat_codes[fill] = (
            codes[order].astype(np.int64) + offsets
        ).astype(flat_dtype)
        self._cell_size = size
        self._centroids = centroids.astype(np.float32)
        self._half_sq_norms = 0.5 * np.sum(self._centroids ** 2, axis=1)
        self._sum_ones = np.ones(num_subspaces, dtype=np.float32)
        self._pq = pq
        self._num_services = num_services
        if self.refine != "int8":
            self._refine_table = None
        elif self._prebuilt_int8 is not None:
            if self._prebuilt_int8.codes.shape != services.shape:
                raise ValueError(
                    f"prebuilt int8 table shape {self._prebuilt_int8.codes.shape} "
                    f"does not match services {services.shape}"
                )
            self._refine_table = self._prebuilt_int8
        else:
            self._refine_table = quantize_int8(services)
        return self

    @property
    def num_services(self) -> int:
        if self._pq is None:
            raise RuntimeError("index not built")
        return self._num_services

    @property
    def num_cells(self) -> int:
        return 0 if self._centroids is None else self._centroids.shape[0]

    @property
    def cell_size(self) -> int:
        """Slots per cell (balanced layout: identical for every cell)."""
        return self._cell_size

    @property
    def quantizer(self) -> ProductQuantizer:
        if self._pq is None:
            raise RuntimeError("index not built")
        return self._pq

    @property
    def code_nbytes(self) -> int:
        """Bytes held by the byte codes alone (the shippable table)."""
        if self._slot_codes is None:
            raise RuntimeError("index not built")
        return int(self._slot_codes.nbytes)

    @property
    def nbytes(self) -> int:
        """Full resident size: codes, gather structures, codebooks,
        centroids, and the int8 refinement table when enabled."""
        if self._pq is None:
            raise RuntimeError("index not built")
        return int(
            self._slot_codes.nbytes
            + self._slot_flat_codes.nbytes
            + self._slot_ids.nbytes
            + self._pq.codebooks_.nbytes
            + self._centroids.nbytes
            + (self._refine_table.nbytes if self._refine_table is not None else 0)
        )

    def cell_members(self, cell: int) -> np.ndarray:
        """Service ids stored in one inverted list (diagnostics/tests)."""
        slots = self._slot_ids[cell * self._cell_size:(cell + 1) * self._cell_size]
        return slots[slots >= 0].astype(np.int64)

    # ------------------------------------------------------------------ #
    # Durable state (snapshot index payloads)
    # ------------------------------------------------------------------ #
    def export_state(self) -> Tuple[dict, dict]:
        """The trained state worth persisting: ``(meta, arrays)``.

        Covers everything expensive to recompute — coarse centroids (cell
        k-means), the slot-major layout (balanced assignment), residual PQ
        codebooks (per-subspace k-means) and codes.  Derived gather
        structures (``_half_sq_norms``, ``_slot_flat_codes``, ``_sum_ones``)
        are cheap vectorised transforms and are rebuilt on restore.
        """
        if self._pq is None:
            raise RuntimeError("index not built")
        meta = {
            "name": self.name,
            "cell_size": int(self._cell_size),
            "num_services": int(self._num_services),
            "num_subspaces": int(self._pq.num_subspaces),
            "num_centroids": int(self._pq.num_centroids),
            "kmeans_iters": int(self.kmeans_iters),
            "pq_kmeans_iters": int(self.pq_kmeans_iters),
            "seed": int(self.seed),
            "refine": self.refine,
            "refine_factor": int(self.refine_factor),
            "slack": float(self.slack),
            "dim": int(self._pq.dim_),
            "padded_dim": int(self._pq.padded_dim_),
            "rotation": self.rotation,
            "opq_iters": int(self.opq_iters),
        }
        arrays = {
            "centroids": self._centroids,
            "slot_ids": self._slot_ids,
            "slot_codes": self._slot_codes,
            "codebooks": self._pq.codebooks_,
        }
        if self.rotation == "opq":
            arrays["rotation"] = self._pq.rotation_
        return meta, arrays

    @classmethod
    def from_state(cls, meta: dict, arrays: dict,
                   int8_table: Optional[Int8Table] = None,
                   params: Optional[dict] = None) -> "IVFPQIndex":
        """Rebuild a serving-ready index from persisted state — no k-means.

        ``params`` carries search-time overrides (``num_probes``,
        ``refine_factor``); trained structure always comes from ``meta`` /
        ``arrays``.  ``int8_table`` supplies the refinement table when the
        persisted index used ``refine="int8"`` (the store publishes one
        per snapshot, so it is never re-quantized here).
        """
        params = dict(params or {})
        refine = params.pop("refine", meta.get("refine"))
        rotation = meta.get("rotation")
        index = cls(
            num_lists=None,
            num_probes=params.pop("num_probes", None),
            num_subspaces=int(meta["num_subspaces"]),
            num_centroids=int(meta["num_centroids"]),
            kmeans_iters=int(meta.get("kmeans_iters", 8)),
            pq_kmeans_iters=int(meta.get("pq_kmeans_iters", 10)),
            refine=refine,
            refine_factor=int(params.pop("refine_factor", meta.get("refine_factor", 8))),
            slack=float(meta.get("slack", 1.3)),
            int8_table=int8_table,
            seed=int(meta.get("seed", 0)),
            rotation=rotation,
            opq_iters=int(meta.get("opq_iters", 4)),
            shrink_margin=params.pop("shrink_margin", DEFAULT_SHRINK_MARGIN),
        )
        params.pop("num_lists", None)  # layout is fixed by the persisted slots
        if params:
            raise ValueError(f"unknown index restore params: {sorted(params)}")

        centroids = np.ascontiguousarray(arrays["centroids"], dtype=np.float32)
        slot_ids = np.asarray(arrays["slot_ids"], dtype=np.int32)
        slot_codes = np.asarray(arrays["slot_codes"], dtype=np.uint8)
        codebooks = np.ascontiguousarray(arrays["codebooks"], dtype=np.float32)
        cell_size = int(meta["cell_size"])
        num_services = int(meta["num_services"])
        num_subspaces = int(meta["num_subspaces"])
        cells = centroids.shape[0]
        if (
            codebooks.ndim != 3
            or codebooks.shape[0] != num_subspaces
            or slot_codes.shape != (cells * cell_size, num_subspaces)
            or slot_ids.shape != (cells * cell_size,)
        ):
            raise ValueError(
                f"persisted IVF-PQ state is inconsistent: cells={cells}, "
                f"cell_size={cell_size}, slot_ids={slot_ids.shape}, "
                f"slot_codes={slot_codes.shape}, codebooks={codebooks.shape}"
            )

        if rotation == "opq":
            rotation_matrix = arrays.get("rotation")
            if rotation_matrix is None:
                raise ValueError(
                    "persisted index used rotation='opq' but no rotation "
                    "array was stored"
                )
            rotation_matrix = np.ascontiguousarray(
                rotation_matrix, dtype=np.float32
            )
            padded_dim = int(meta["padded_dim"])
            if rotation_matrix.shape != (padded_dim, padded_dim):
                raise ValueError(
                    f"rotation matrix shape {rotation_matrix.shape} does not "
                    f"match padded dim {padded_dim}"
                )
            pq: ProductQuantizer = OPQQuantizer(
                num_subspaces=num_subspaces,
                num_centroids=int(meta["num_centroids"]),
                kmeans_iters=int(meta.get("pq_kmeans_iters", 10)),
                seed=int(meta.get("seed", 0)),
                opq_iters=int(meta.get("opq_iters", 4)),
            )
            pq.rotation_ = rotation_matrix
        else:
            pq = ProductQuantizer(
                num_subspaces=num_subspaces,
                num_centroids=int(meta["num_centroids"]),
                kmeans_iters=int(meta.get("pq_kmeans_iters", 10)),
                seed=int(meta.get("seed", 0)),
            )
        pq.dim_ = int(meta["dim"])
        pq.padded_dim_ = int(meta["padded_dim"])
        pq.codebooks_ = codebooks

        fitted_centroids = codebooks.shape[1]
        sentinel = num_subspaces * fitted_centroids
        flat_dtype = np.int16 if sentinel + 1 <= np.iinfo(np.int16).max else np.int32
        offsets = np.arange(num_subspaces, dtype=np.int64) * fitted_centroids
        flat = (slot_codes.astype(np.int64) + offsets).astype(flat_dtype)
        flat[slot_ids < 0] = sentinel

        index._pq = pq
        index._centroids = centroids
        index._half_sq_norms = 0.5 * np.sum(centroids ** 2, axis=1)
        index._slot_ids = slot_ids
        index._slot_codes = slot_codes
        index._slot_flat_codes = flat
        index._cell_size = cell_size
        index._sum_ones = np.ones(num_subspaces, dtype=np.float32)
        index._num_services = num_services
        if index.refine == "int8":
            if int8_table is None:
                raise ValueError(
                    "persisted index used refine='int8'; pass the snapshot's "
                    "int8_table to restore it"
                )
            if int8_table.codes.shape != (num_services, int(meta["dim"])):
                raise ValueError(
                    f"int8 refine table shape {int8_table.codes.shape} does not "
                    f"match persisted index ({num_services}, {meta['dim']})"
                )
            index._refine_table = int8_table
        else:
            index._refine_table = None
        return index

    # ------------------------------------------------------------------ #
    # Search: rectangular probe expansion + one ADC gather + batched top-k
    # ------------------------------------------------------------------ #
    def search(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._pq is None or self._centroids is None:
            raise RuntimeError("index not built")
        queries = self._check_queries(queries, k).astype(np.float32)
        batch = queries.shape[0]
        cells = self.num_cells
        size = self._cell_size
        probes = min(self.num_probes or max(1, int(round(1.3 * np.sqrt(cells)))), cells)

        # Per-query ADC tables, flattened with the sentinel -inf column so
        # padding slots mask themselves during the scoring sum.
        tables = self._pq.adc_tables(queries)
        table_width = tables.shape[1] * tables.shape[2] + 1
        tables_flat = np.empty((batch, table_width), dtype=np.float32)
        tables_flat[:, :-1] = tables.reshape(batch, -1)
        tables_flat[:, -1] = -np.inf

        q_dot_c = queries @ self._centroids.T
        affinity = q_dot_c - self._half_sq_norms
        if probes < cells:
            probed = np.argpartition(-affinity, probes - 1, axis=1)[:, :probes]
        else:
            probed = np.tile(np.arange(cells), (batch, 1))
        # Cell-sorted probes: ascending cell ids turn the block gather below
        # into forward memory sweeps over the slot-major code layout.
        probed.sort(axis=1)

        # Balanced cells make the candidate block rectangular: cell c owns
        # slot block [c * size, (c + 1) * size), so indexing the 3-D code
        # view by ``probed`` copies whole blocks (one memcpy per probe), and
        # one flat gather + one BLAS matvec scores the entire micro-batch.
        codes_3d = self._slot_flat_codes.reshape(cells, size, -1)
        gather_pos = (
            (np.arange(batch, dtype=np.int32) * np.int32(table_width))[:, None, None, None]
            + codes_3d[probed]
        )
        scores = (
            tables_flat.ravel().take(gather_pos).reshape(batch, probes * size, -1)
            @ self._sum_ones
        )
        # Coarse term q.centroid, identical across a probed cell's slots —
        # added as a broadcast over the (batch, probes, size) view instead
        # of materializing a repeated (batch, probes * size) copy.
        probed_dots = np.take_along_axis(q_dot_c, probed, axis=1)
        scores_by_cell = scores.reshape(batch, probes, size)
        scores_by_cell += probed_dots[:, :, None]

        refining = self._refine_table is not None
        shortlist_size = k * self.refine_factor if refining else k
        width = scores.shape[1]
        if shortlist_size < width:
            keep = np.argpartition(-scores, shortlist_size - 1,
                                   axis=1)[:, :shortlist_size]
        else:
            keep = np.tile(np.arange(width, dtype=np.int64), (batch, 1))
        before = keep.shape[1]
        if refining and self.shrink_margin is not None and before > k:
            keep = self._shrink_shortlist(scores, keep, k)
        self._shortlist_candidates += batch * before
        self._shortlist_kept += batch * keep.shape[1]
        # Map kept columns back to slots (cheap: shortlist-sized only).
        short_cells = np.take_along_axis(probed, keep // size, axis=1)
        short_ids = self._slot_ids[short_cells * size + keep % size]
        if refining:
            short_scores = self._refine_shortlist(queries, short_ids)
        else:
            short_scores = np.take_along_axis(scores, keep, axis=1)
        return _batched_rank(short_ids, short_scores, k)

    def take_shortlist_stats(self) -> Tuple[int, int]:
        """``(candidates, kept)`` shortlist counts since the last call.

        ``candidates`` is the refinement work the static ``refine_factor *
        k`` shortlist would have cost; ``kept`` is what the adaptive shrink
        actually re-scored.  The gateway drains this into its telemetry.
        """
        stats = (self._shortlist_candidates, self._shortlist_kept)
        self._shortlist_candidates = 0
        self._shortlist_kept = 0
        return stats

    def _shrink_shortlist(self, scores: np.ndarray, keep: np.ndarray,
                          k: int) -> np.ndarray:
        """Adaptively narrow the shortlist on the per-query ADC margin.

        With ``best`` and ``kth`` the best and k-th best ADC scores inside a
        query's shortlist, candidates below ``kth - margin * (best - kth)``
        are very unlikely to be re-ranked into the top k by the int8
        refinement, so they are dropped before the expensive gather.  The
        batch stays rectangular: every query keeps the batch-max kept count
        (fill slots just carry extra below-cutoff candidates).
        """
        short = np.take_along_axis(scores, keep, axis=1)
        full = short.shape[1]
        kth = -np.partition(-short, k - 1, axis=1)[:, k - 1]
        best = short.max(axis=1)
        cutoff = kth - np.float32(self.shrink_margin) * (best - kth)
        kept_counts = (short >= cutoff[:, None]).sum(axis=1)
        target = max(k, int(kept_counts.max(initial=0)))
        if target >= full:
            return keep
        narrowed = np.argpartition(-short, target - 1, axis=1)[:, :target]
        return np.take_along_axis(keep, narrowed, axis=1)

    def _refine_shortlist(self, queries: np.ndarray,
                          short_ids: np.ndarray) -> np.ndarray:
        """Re-score the ADC shortlist against the int8 table (IVFADC+R).

        The re-score is integer end-to-end: the folded query is quantized
        to int8 (:meth:`Int8Table.quantize_queries`), so candidate scores
        are exact integer dot products scaled back once — identical
        arithmetic to :meth:`Int8Table.scores_int`, and deterministic
        across replicas when the table carries a published ``query_scale``.
        """
        refine = self._refine_table
        codes = refine.codes[np.maximum(short_ids, 0)].astype(np.float32)
        if refine.dim * 127 * 127 < 2 ** 24:
            q8, qscale = refine.quantize_queries(queries)
            rescored = np.matmul(codes, q8[:, :, None])[:, :, 0]
            rescored *= qscale[:, None]
        else:  # pragma: no cover - only reachable past dim 1040
            scaled_queries = queries * refine.scales
            rescored = np.matmul(codes, scaled_queries[:, :, None])[:, :, 0]
        rescored[short_ids < 0] = -np.inf
        return rescored


def _balanced_assign(points: np.ndarray, centroids: np.ndarray,
                     slack: float = 1.5) -> np.ndarray:
    """Capacity-constrained nearest-centroid assignment.

    Every cell receives at most ``ceil(slack * n / cells)`` members — the
    scan block stays rectangular (bounding worst-case latency) while only
    points past the slack actually spill.  Points claim cells in decreasing
    order of how much they prefer their best cell over their runner-up, so
    the points a spill would hurt most are placed first and the spilled
    remainder land in near-equivalent cells.
    """
    num_points, num_cells = points.shape[0], centroids.shape[0]
    capacity = np.full(
        num_cells,
        max(1, int(np.ceil(slack * num_points / num_cells))),
        dtype=np.int64,
    )
    affinity = points @ centroids.T - 0.5 * np.sum(centroids ** 2, axis=1)
    preference = np.argsort(-affinity, axis=1)
    if num_cells > 1:
        top2 = -np.partition(-affinity, 1, axis=1)[:, :2]
        margin = top2[:, 0] - top2[:, 1]
    else:
        margin = np.zeros(num_points)
    assignment = np.empty(num_points, dtype=np.int64)
    for point in np.argsort(-margin):
        for cell in preference[point]:
            if capacity[cell] > 0:
                assignment[point] = cell
                capacity[cell] -= 1
                break
    return assignment


def _batched_rank(ids: np.ndarray, scores: np.ndarray, k: int
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Final sorted top-k with ``(-1, -inf)`` padding, batched over rows."""
    if scores.shape[1] > 4 * k:
        # Pre-select ~4k columns by partition before the full sort: the
        # sort then runs on a 4k-wide block instead of the whole shortlist.
        part = np.argpartition(-scores, 4 * k - 1, axis=1)[:, :4 * k]
        ids = np.take_along_axis(ids, part, axis=1)
        scores = np.take_along_axis(scores, part, axis=1)
    order = np.argsort(-scores, axis=1, kind="stable")[:, :k]
    top_ids = np.take_along_axis(ids, order, axis=1).astype(np.int64)
    top_scores = np.take_along_axis(scores, order, axis=1).astype(np.float64)
    top_ids[~np.isfinite(top_scores)] = -1
    if top_ids.shape[1] < k:  # fewer candidates than k: pad to width k
        pad = k - top_ids.shape[1]
        top_ids = np.pad(top_ids, ((0, 0), (0, pad)), constant_values=-1)
        top_scores = np.pad(top_scores, ((0, 0), (0, pad)), constant_values=-np.inf)
    out_scores = np.where(top_ids >= 0, top_scores, -np.inf)
    return top_ids, out_scores
