"""Seeded Lloyd k-means shared by the coarse and product quantizers.

Every quantizer in this package — the IVF coarse partitioner, the PQ
sub-space codebooks and the IVF-PQ residual codebooks — reduces to the same
primitive: cluster a point set into ``k`` cells with a fixed seed so index
builds are reproducible across the daily refresh (Sec. V-F / Fig. 9).  The
assignment step uses the expanded-distance identity

    argmin_c ||x - c||^2  ==  argmax_c  x.c - ||c||^2 / 2

so each iteration is one BLAS matmul instead of a pairwise-distance tensor.
Empty cells are re-seeded on a random point, which keeps all ``k`` centroids
live even on degenerate inputs (fewer distinct points than cells).

Initialisation defaults to **k-means++** (the ROADMAP's "smarter PQ
codebooks" first step): each successive seed is sampled proportionally to
its squared distance from the seeds chosen so far, which spreads the
codebook across the data instead of betting on a lucky uniform draw.  With
the few Lloyd iterations the quantizers run, the init quality carries
straight into ADC recall at the same code budget; ``init="random"`` keeps
the PR-2 behaviour for A/B comparisons.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

RngLike = Union[int, np.random.Generator]

INIT_KINDS = ("kmeans++", "random")


def _kmeanspp_init(points: np.ndarray, num_clusters: int,
                   rng: np.random.Generator) -> np.ndarray:
    """D²-weighted seeding (Arthur & Vassilvitskii), one matvec per seed.

    Maintains the running squared distance to the nearest chosen seed and
    samples the next seed proportionally to it; duplicate-heavy inputs
    (total mass zero) fall back to uniform draws so ``k`` seeds always
    come back.
    """
    num_points = points.shape[0]
    sq_norms = np.sum(points ** 2, axis=1)
    chosen = np.empty(num_clusters, dtype=np.int64)
    chosen[0] = rng.integers(num_points)
    d2 = sq_norms + sq_norms[chosen[0]] - 2.0 * (points @ points[chosen[0]])
    np.maximum(d2, 0.0, out=d2)
    for seed in range(1, num_clusters):
        total = float(d2.sum())
        if total <= 0.0:  # all remaining points coincide with a chosen seed
            chosen[seed] = rng.integers(num_points)
        else:
            chosen[seed] = rng.choice(num_points, p=d2 / total)
        candidate = sq_norms + sq_norms[chosen[seed]] - 2.0 * (points @ points[chosen[seed]])
        np.minimum(d2, np.maximum(candidate, 0.0), out=d2)
    return points[chosen].copy()


def kmeans(points: np.ndarray, num_clusters: int, iters: int = 8,
           rng: RngLike = 0, init: str = "kmeans++") -> Tuple[np.ndarray, np.ndarray]:
    """Cluster ``points`` into ``num_clusters`` cells.

    Returns ``(centroids, assignment)`` where ``centroids`` has shape
    ``(num_clusters, dim)`` in the input dtype's float flavour and
    ``assignment`` maps each point to its final cell (``int64``).
    ``num_clusters`` is clamped to the number of points.  ``init`` picks the
    seeding strategy: ``"kmeans++"`` (default, D²-weighted) or ``"random"``
    (uniform without replacement, the PR-2 behaviour).
    """
    points = np.asarray(points)
    if points.ndim != 2:
        raise ValueError("points must be a (num_points, dim) matrix")
    if num_clusters <= 0:
        raise ValueError("num_clusters must be positive")
    if iters <= 0:
        raise ValueError("iters must be positive")
    if init not in INIT_KINDS:
        known = ", ".join(INIT_KINDS)
        raise ValueError(f"unknown init {init!r} (known: {known})")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    num_points = points.shape[0]
    num_clusters = min(num_clusters, num_points)
    if init == "kmeans++":
        centroids = _kmeanspp_init(points, num_clusters, rng)
    else:
        centroids = points[rng.choice(num_points, size=num_clusters, replace=False)].copy()
    assignment = np.zeros(num_points, dtype=np.int64)
    for _ in range(iters):
        affinity = points @ centroids.T - 0.5 * np.sum(centroids ** 2, axis=1)
        assignment = np.argmax(affinity, axis=1)
        for cell in range(num_clusters):
            members = assignment == cell
            if np.any(members):
                centroids[cell] = points[members].mean(axis=0)
            else:  # re-seed empty cells on a random point
                centroids[cell] = points[rng.integers(num_points)]
    return centroids, assignment


def assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid (squared euclidean) assignment, one matmul."""
    affinity = points @ centroids.T - 0.5 * np.sum(centroids ** 2, axis=1)
    return np.argmax(affinity, axis=1)
