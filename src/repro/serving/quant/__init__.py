"""Quantized embedding subsystem for the serving tier (Sec. V-F).

The daily-refresh deployment (Sec. V-F / Fig. 9) re-exports the full
query/service tables once per day and serves every request from them; at
millions of services the *resident table size* — not scoring compute — is
what caps a shard.  This package compresses the service tables while keeping
maximum-inner-product retrieval exact enough to pass the gateway's recall@K
telemetry:

* :mod:`~repro.serving.quant.scalar` — symmetric int8 with per-dimension
  scales (4x vs float32, recall ~1);
* :mod:`~repro.serving.quant.pq` — product quantization: k-means sub-space
  codebooks, byte codes, and asymmetric-distance (ADC) lookup tables that
  score queries against codes without decompressing;
* :mod:`~repro.serving.quant.opq` — OPQ: a learned orthonormal rotation
  (alternating k-means / SVD Procrustes) in front of the PQ codebooks,
  persisted as a snapshot chunk so replicas never retrain it;
* :mod:`~repro.serving.quant.ivfpq` — the quantized retrieval indexes
  (:class:`IVFPQIndex`, :class:`Int8Index`) registered with the gateway's
  :func:`~repro.serving.gateway.index.build_index`;
* :mod:`~repro.serving.quant.kmeans` — the seeded Lloyd iteration shared by
  every quantizer (and by the fp IVF coarse quantizer).

:func:`quantize_table` is the store-facing entry point: the
:class:`~repro.serving.gateway.store.VersionedEmbeddingStore` publishes the
tables it returns alongside the fp snapshot, so quantized replicas hot-swap
atomically with the embeddings they mirror.
"""

from __future__ import annotations

from repro.serving.quant.kmeans import kmeans
from repro.serving.quant.opq import OPQQuantizer, OPQTable, quantize_opq
from repro.serving.quant.pq import PQTable, ProductQuantizer, quantize_pq
from repro.serving.quant.scalar import Int8Quantizer, Int8Table, quantize_int8

#: Snapshot-table kinds the store can publish (see ``quantize_table``).
QUANTIZER_KINDS = ("int8", "pq", "opq")


def quantize_table(kind: str, vectors, **params):
    """Compress one float table into an immutable quantized table.

    ``kind`` is ``"int8"`` (:func:`quantize_int8`; the only parameter is
    ``queries``, which freezes the global query-quantization step for the
    integer scoring path), ``"pq"`` (:func:`quantize_pq`; accepts
    ``num_subspaces``, ``num_centroids``, ``kmeans_iters``, ``seed``) or
    ``"opq"`` (:func:`quantize_opq`; PQ parameters plus ``opq_iters`` /
    ``opq_init`` for the learned rotation).
    """
    if kind == "int8":
        queries = params.pop("queries", None)
        if params:
            raise ValueError(f"int8 quantization takes no parameters, got {params}")
        return quantize_int8(vectors, queries=queries)
    if kind == "pq":
        return quantize_pq(vectors, **params)
    if kind == "opq":
        return quantize_opq(vectors, **params)
    known = ", ".join(QUANTIZER_KINDS)
    raise ValueError(f"unknown quantizer kind {kind!r} (known: {known})")


# The index classes import the gateway's RetrievalIndex base, which itself
# imports this package for the shared k-means — resolve them lazily (PEP 562)
# so either import order works.
def __getattr__(name):
    if name in ("IVFPQIndex", "Int8Index"):
        from repro.serving.quant import ivfpq

        return getattr(ivfpq, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Int8Index",
    "Int8Quantizer",
    "Int8Table",
    "IVFPQIndex",
    "OPQQuantizer",
    "OPQTable",
    "PQTable",
    "ProductQuantizer",
    "QUANTIZER_KINDS",
    "kmeans",
    "quantize_int8",
    "quantize_opq",
    "quantize_pq",
    "quantize_table",
]
