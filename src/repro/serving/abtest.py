"""Gateway-backed online A/B experimentation (Fig. 10 at serving scale).

The paper's headline production evidence is a week-long bucket test: a
fraction of live traffic is routed to GARCIA's bucket, the rest stays on
the deployed baseline, and the daily relative CTR / Valid-CTR improvement
is reported (+0.79 pp CTR aggregated).  The offline replay in
:mod:`repro.eval.ab_test` reproduces the *measurement*; this module
reproduces the *deployment shape*: buckets are real serving configurations
behind the gateway tier, traffic is routed by deterministic session-id
hashing, and the same experiment that moves CTR also moves serving cost —
QPS, latency percentiles and deadline misses land per bucket in
:meth:`~repro.serving.gateway.telemetry.GatewayTelemetry.bucket_rows`.

Three pieces:

* :class:`BucketRouter` — config-driven traffic splits (e.g. 90/10
  control/treatment) with a deterministic, salt-mixed splitmix64 hash of
  the session/user id, so the same id lands in the same bucket on every
  rerun, every process, and every replay of the log.  Each bucket routes
  to its own *arm* — any gateway-like object (single-process, sharded, a
  replicated fleet behind a :class:`repro.serving.fleet.FleetRouter`, or
  one shared gateway for an A/A test; arms may serve different models or
  the same model under different index/quantization/replication
  configurations).
* :class:`OnlineABExperiment` — replays day-partitioned session streams
  *open-loop* (seeded Poisson arrivals) through ``search_async``, tags
  every request with its bucket, and scores the returned top-K list
  against the click oracle with a per-session seeded RNG — so the CTR
  outcome is independent of async completion order and reproducible from
  one seed.  Clicks accumulate through the same
  :func:`repro.eval.ab_test.simulate_impressions` machinery the offline
  replay uses.
* :class:`GatewayABReport` — the joint outcome: per-day CTR / Valid-CTR
  improvement (via :class:`repro.eval.ab_test.ABTestResult`) alongside
  per-bucket serving cost (QPS, p50/p95/p99, deadline misses, overload
  rejections, sessions shed before scoring).

Sessions shed by admission control or deadlines produce *no impressions* —
an under-provisioned treatment bucket loses quality through serving cost,
which is exactly the coupling the joint report exists to expose.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.eval.ab_test import (
    ABTestResult,
    BucketDailyMetrics,
    date_label,
    simulate_impressions,
)
from repro.serving.gateway import DeadlineExceededError, OverloadError
from repro.serving.gateway.workload import flash_crowd_gaps, poisson_gaps
from repro.serving.obs.ids import ids_to_u64, key_to_u64, mix64, mix64_int

#: Position-bias discounts applied per top-K slot (mirrors ABTestConfig).
DEFAULT_POSITION_BIAS: Tuple[float, ...] = (1.0, 0.75, 0.55, 0.4, 0.3)

_SPLIT_TOLERANCE = 1e-6

_LOAD_SHAPES = ("poisson", "flash_crowd")


class BucketRouter:
    """Deterministic session-id hashing into config-driven traffic buckets.

    ``splits`` maps bucket name to its traffic fraction (must sum to 1);
    ``arms`` (optional) maps each bucket to the gateway serving it — two
    buckets may share one gateway object (an A/A test, separable through
    per-bucket telemetry tags), or each may own a different model /
    index / quantization configuration.  ``salt`` decorrelates experiments:
    the same user population re-buckets independently under a new salt.
    """

    def __init__(self, splits: Mapping[str, float],
                 arms: Optional[Mapping[str, object]] = None,
                 salt=0) -> None:
        if not splits:
            raise ValueError("splits must name at least one bucket")
        fractions = np.asarray(list(splits.values()), dtype=np.float64)
        if np.any(fractions <= 0):
            raise ValueError("every bucket's traffic fraction must be positive")
        if abs(float(fractions.sum()) - 1.0) > _SPLIT_TOLERANCE:
            raise ValueError(
                f"traffic fractions must sum to 1.0, got {float(fractions.sum()):.6f}"
            )
        self.buckets: Tuple[str, ...] = tuple(splits)
        self.splits: Dict[str, float] = {
            name: float(fraction) for name, fraction in splits.items()
        }
        # Upper cumulative boundaries; the last is forced to 1.0 so no
        # float-sum gap can leave a fraction unassigned.
        self._boundaries = np.cumsum(fractions)
        self._boundaries[-1] = 1.0
        # Finalise the raw salt once; per-id hashing is then one shared
        # mix64 (identical to the fleet's rendezvous primitive).
        self._salt = mix64_int(key_to_u64(salt))
        if arms is not None and set(arms) != set(self.buckets):
            raise ValueError(
                f"arms must be keyed exactly by the split buckets "
                f"{sorted(self.buckets)}, got {sorted(arms)}"
            )
        self.arms: Optional[Dict[str, object]] = dict(arms) if arms else None

    def fractions(self, session_ids: Sequence) -> np.ndarray:
        """Deterministic uniform-[0, 1) hash fraction per session id."""
        hashed = mix64(ids_to_u64(session_ids), self._salt)
        return hashed.astype(np.float64) / float(2**64)

    def assign_indices(self, session_ids: Sequence) -> np.ndarray:
        """Bucket *index* (into :attr:`buckets`) per session id."""
        indices = np.searchsorted(self._boundaries, self.fractions(session_ids),
                                  side="right")
        return np.minimum(indices, len(self.buckets) - 1)

    def assign_many(self, session_ids: Sequence) -> List[str]:
        """Bucket name per session id (vectorised hashing)."""
        return [self.buckets[index] for index in self.assign_indices(session_ids)]

    def assign(self, session_id) -> str:
        """The bucket one session id deterministically lands in."""
        return self.buckets[int(self.assign_indices([session_id])[0])]

    def arm(self, bucket: str):
        """The gateway serving one bucket (requires ``arms``)."""
        if self.arms is None:
            raise ValueError("this router was built without arms to route to")
        try:
            return self.arms[bucket]
        except KeyError:
            raise KeyError(
                f"unknown bucket {bucket!r} (known: {sorted(self.buckets)})"
            ) from None

    def route(self, session_id) -> Tuple[str, object]:
        """``(bucket, gateway)`` for one session id."""
        bucket = self.assign(session_id)
        return bucket, self.arm(bucket)

    def unique_arms(self) -> List[object]:
        """Distinct gateway objects across buckets (shared arms deduped)."""
        if self.arms is None:
            return []
        seen: Dict[int, object] = {}
        for bucket in self.buckets:
            gateway = self.arms[bucket]
            seen.setdefault(id(gateway), gateway)
        return list(seen.values())


@dataclass
class ABExperimentConfig:
    """Parameters of one gateway-backed bucket test."""

    num_days: int = 7
    sessions_per_day: int = 5_000
    top_k: int = 5
    #: Open-loop Poisson arrival rate per day's replay; ``None`` submits the
    #: whole day as one burst (still open loop: nothing waits on completions).
    rate_qps: Optional[float] = 2_000.0
    #: Per-request deadline; sessions past it are shed *before* scoring and
    #: produce no impressions (quality pays for serving cost).
    deadline_s: Optional[float] = None
    #: Arrival shape when ``rate_qps`` is set: ``"poisson"`` (stationary)
    #: or ``"flash_crowd"`` — a seeded window of sessions arriving at
    #: ``spike_factor`` times the base rate (a promo burst inside the day).
    load_shape: str = "poisson"
    spike_factor: float = 10.0
    #: Spike window as fractions of the day's session stream.
    spike_start: float = 0.45
    spike_width: float = 0.1
    position_bias: Sequence[float] = DEFAULT_POSITION_BIAS
    seed: int = 0
    control: str = "control"
    treatment: str = "treatment"
    start_date: str = "2022/10/01"

    def __post_init__(self) -> None:
        if self.num_days <= 0 or self.sessions_per_day <= 0 or self.top_k <= 0:
            raise ValueError("num_days, sessions_per_day and top_k must be positive")
        if len(self.position_bias) < self.top_k:
            raise ValueError("position_bias must cover every slot of the top-K list")
        if self.rate_qps is not None and self.rate_qps <= 0:
            raise ValueError("rate_qps must be positive (or None for burst)")
        if self.load_shape not in _LOAD_SHAPES:
            raise ValueError(
                f"load_shape must be one of {_LOAD_SHAPES}, "
                f"got {self.load_shape!r}")
        if self.spike_factor < 1.0:
            raise ValueError("spike_factor must be >= 1.0")
        if not (0.0 <= self.spike_start
                and self.spike_start + self.spike_width <= 1.0
                and self.spike_width > 0.0):
            raise ValueError(
                "the spike window [spike_start, spike_start + spike_width) "
                "must lie inside [0, 1]")


@dataclass
class GatewayABReport:
    """Joint quality + serving-cost outcome of one bucket test."""

    days: List[str]
    buckets: Tuple[str, ...]
    control: str
    treatment: str
    #: Per-bucket, per-day click counters (index-aligned with ``days``).
    daily: Dict[str, List[BucketDailyMetrics]]
    #: Sessions routed to each bucket (traffic-split ground truth).
    sessions: Dict[str, int]
    #: Sessions shed before scoring (overload + deadline), per bucket.
    shed: Dict[str, int]
    #: Per-bucket serving-cost rows (gateway telemetry ``bucket_rows``).
    cost: List[Dict[str, float]] = field(default_factory=list)
    day_wall_s: List[float] = field(default_factory=list)

    def ab_result(self) -> ABTestResult:
        """The control/treatment slice in the Fig. 10 result shape."""
        return ABTestResult(
            days=list(self.days),
            baseline=list(self.daily[self.control]),
            treatment=list(self.daily[self.treatment]),
        )

    def ctr_improvement(self) -> List[float]:
        return self.ab_result().ctr_improvement()

    def valid_ctr_improvement(self) -> List[float]:
        return self.ab_result().valid_ctr_improvement()

    def joint_rows(self) -> List[Dict[str, object]]:
        """One row per day: both buckets' CTR plus the relative deltas."""
        result = self.ab_result()
        ctr_gains = result.ctr_improvement()
        valid_gains = result.valid_ctr_improvement()
        rows = []
        for index, day in enumerate(self.days):
            control = self.daily[self.control][index]
            treatment = self.daily[self.treatment][index]
            rows.append({
                "day": day,
                f"{self.control}_ctr": round(control.ctr, 4),
                f"{self.treatment}_ctr": round(treatment.ctr, 4),
                "ctr_improvement_pct": round(ctr_gains[index], 3),
                "valid_ctr_improvement_pct": round(valid_gains[index], 3),
                f"{self.control}_impressions": control.impressions,
                f"{self.treatment}_impressions": treatment.impressions,
            })
        return rows

    def cost_rows(self) -> List[Dict[str, float]]:
        """Per-bucket serving cost, enriched with routing/shed counters."""
        by_bucket = {row["bucket"]: dict(row) for row in self.cost}
        rows = []
        for bucket in self.buckets:
            row = by_bucket.get(bucket, {"bucket": bucket})
            row["sessions_routed"] = float(self.sessions.get(bucket, 0))
            row["sessions_shed"] = float(self.shed.get(bucket, 0))
            rows.append(row)
        return rows

    def summary(self) -> Dict[str, float]:
        """Headline numbers: aggregated gains + total shed traffic."""
        result = self.ab_result()
        return {
            "absolute_ctr_gain_pp": result.absolute_ctr_gain(),
            "absolute_valid_ctr_gain_pp": result.absolute_valid_ctr_gain(),
            "sessions_total": float(sum(self.sessions.values())),
            "sessions_shed_total": float(sum(self.shed.values())),
            "replay_wall_s": float(sum(self.day_wall_s)),
        }

    def as_payload(self) -> Dict[str, object]:
        """JSON-serialisable dump (the bench's results file)."""
        return {
            "days": list(self.days),
            "buckets": list(self.buckets),
            "control": self.control,
            "treatment": self.treatment,
            "joint_rows": self.joint_rows(),
            "cost_rows": self.cost_rows(),
            "ctr_improvement_pct": self.ctr_improvement(),
            "valid_ctr_improvement_pct": self.valid_ctr_improvement(),
            "sessions": {name: int(count) for name, count in self.sessions.items()},
            "sessions_shed": {name: int(count) for name, count in self.shed.items()},
            "summary": self.summary(),
        }


class OnlineABExperiment:
    """Replay bucketed session traffic through the gateway tier, open-loop.

    ``dataset`` supplies the query-traffic distribution
    (``query_frequencies``), ``oracle`` decides clicks, and ``router`` maps
    hashed session ids to the gateways serving each bucket.  Every request
    goes through ``search_async`` carrying its bucket as a telemetry tag,
    so one run yields both the Fig. 10 CTR series and the per-bucket
    QPS/p99/shed breakdown.

    Determinism: bucket assignment is a pure hash of (salt, session id);
    query sampling and arrival gaps derive from ``config.seed``; and each
    session's click draw is seeded by ``(seed, day, session id)`` — the CTR
    outcome does not depend on the order async completions land in.  With
    unbounded admission and no deadline the whole report is reproducible
    from one seed; with shedding enabled, *which* sessions are shed is
    timing-dependent by design (that is the serving-cost coupling).
    """

    def __init__(self, dataset, oracle, router: BucketRouter,
                 config: Optional[ABExperimentConfig] = None) -> None:
        config = config if config is not None else ABExperimentConfig()
        if router.arms is None:
            raise ValueError("OnlineABExperiment needs a router with arms "
                             "(bucket -> gateway)")
        for role in (config.control, config.treatment):
            if role not in router.buckets:
                raise ValueError(
                    f"config names bucket {role!r} but the router only splits "
                    f"{sorted(router.buckets)}"
                )
        self.dataset = dataset
        self.oracle = oracle
        self.router = router
        self.config = config
        frequencies = dataset.query_frequencies().astype(np.float64)
        total = frequencies.sum()
        if total <= 0:
            raise ValueError("dataset has no query traffic to replay")
        self._traffic = frequencies / total

    # ------------------------------------------------------------------ #
    # Driving
    # ------------------------------------------------------------------ #
    def run(self, start_date: Optional[str] = None) -> GatewayABReport:
        """Run every day's replay and assemble the joint report."""
        config = self.config
        start = config.start_date if start_date is None else start_date
        days = [date_label(start, offset) for offset in range(config.num_days)]
        rng = np.random.default_rng(config.seed)
        daily: Dict[str, List[BucketDailyMetrics]] = {
            bucket: [] for bucket in self.router.buckets
        }
        sessions: Dict[str, int] = {bucket: 0 for bucket in self.router.buckets}
        shed: Dict[str, int] = {bucket: 0 for bucket in self.router.buckets}
        day_wall_s: List[float] = []
        next_session_id = 0
        for day_index in range(config.num_days):
            query_ids = rng.choice(
                len(self._traffic), size=config.sessions_per_day, p=self._traffic
            )
            session_ids = np.arange(
                next_session_id, next_session_id + config.sessions_per_day,
                dtype=np.int64,
            )
            next_session_id += config.sessions_per_day
            bucket_indices = self.router.assign_indices(session_ids)
            metrics = {bucket: BucketDailyMetrics() for bucket in self.router.buckets}
            day_shed = {bucket: 0 for bucket in self.router.buckets}
            elapsed = asyncio.run(
                self._replay_day(day_index, session_ids, query_ids,
                                 bucket_indices, metrics, day_shed)
            )
            day_wall_s.append(elapsed)
            for position, bucket in enumerate(self.router.buckets):
                daily[bucket].append(metrics[bucket])
                sessions[bucket] += int((bucket_indices == position).sum())
                shed[bucket] += day_shed[bucket]
        return GatewayABReport(
            days=days,
            buckets=self.router.buckets,
            control=config.control,
            treatment=config.treatment,
            daily=daily,
            sessions=sessions,
            shed=shed,
            cost=self._gather_cost_rows(),
            day_wall_s=day_wall_s,
        )

    async def _replay_day(self, day_index: int, session_ids: np.ndarray,
                          query_ids: np.ndarray, bucket_indices: np.ndarray,
                          metrics: Dict[str, BucketDailyMetrics],
                          day_shed: Dict[str, int]) -> float:
        """One day's open-loop replay on a fresh event loop."""
        config = self.config
        buckets = self.router.buckets

        async def one_session(session_id: int, query_id: int, bucket: str) -> None:
            gateway = self.router.arm(bucket)
            try:
                ids, _ = await gateway.search_async(
                    int(query_id), k=config.top_k,
                    deadline_s=config.deadline_s, tag=bucket,
                )
            except (OverloadError, DeadlineExceededError):
                day_shed[bucket] += 1
                return
            click_rng = np.random.default_rng(
                (config.seed, day_index, int(session_id))
            )
            simulate_impressions(
                self.oracle, int(query_id), np.asarray(ids)[: config.top_k],
                config.position_bias, click_rng, metrics[bucket],
            )

        gaps: Optional[np.ndarray] = None
        if config.rate_qps is not None:
            arrival_rng = np.random.default_rng((config.seed, 7919, day_index))
            if config.load_shape == "flash_crowd":
                gaps = flash_crowd_gaps(
                    len(session_ids), config.rate_qps,
                    spike_factor=config.spike_factor,
                    spike_start=config.spike_start,
                    spike_width=config.spike_width, rng=arrival_rng,
                )
            else:
                gaps = poisson_gaps(
                    len(session_ids), config.rate_qps, rng=arrival_rng
                )
        loop = asyncio.get_running_loop()
        next_at = loop.time()
        tasks = []
        started = time.perf_counter()
        try:
            for position, (session_id, query_id) in enumerate(
                zip(session_ids, query_ids)
            ):
                if gaps is not None:
                    next_at += float(gaps[position])
                    delay = next_at - loop.time()
                    if delay > 0:
                        await asyncio.sleep(delay)
                bucket = buckets[bucket_indices[position]]
                tasks.append(
                    asyncio.ensure_future(one_session(session_id, query_id, bucket))
                )
            await asyncio.gather(*tasks)
            elapsed = time.perf_counter() - started
        finally:
            # Each day runs under its own asyncio.run loop; stop every arm's
            # drive task — even when a session errored — so the scheduler is
            # idle (and rebindable) at loop exit instead of pinned to a loop
            # that is about to close.
            for gateway in self.router.unique_arms():
                await gateway.stop_async()
        return elapsed

    def _gather_cost_rows(self) -> List[Dict[str, float]]:
        """Per-bucket telemetry rows across the (deduplicated) arm gateways."""
        rows: List[Dict[str, float]] = []
        for gateway in self.router.unique_arms():
            rows.extend(gateway.telemetry.bucket_rows())
        order = {bucket: index for index, bucket in enumerate(self.router.buckets)}
        return sorted(rows, key=lambda row: order.get(row["bucket"], len(order)))


def close_arms(router: BucketRouter) -> None:
    """Close every distinct arm gateway behind a router (idempotent helper)."""
    for gateway in router.unique_arms():
        gateway.close()


__all__ = [
    "ABExperimentConfig",
    "BucketRouter",
    "GatewayABReport",
    "OnlineABExperiment",
    "close_arms",
    "DEFAULT_POSITION_BIAS",
]
