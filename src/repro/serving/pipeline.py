"""The hybrid offline–online serving pipeline (Fig. 9).

:func:`deploy_model` packages the offline side — export embeddings from a
trained model into an :class:`~repro.serving.embedding_store.EmbeddingStore`
— and returns a :class:`ServingPipeline`, the online side, which answers
requests through retrieval + ranking and can be handed directly to the
A/B-test simulator (it satisfies the ``rank(query_id, k)`` ranker protocol).

Three scoring modes are supported:

* ``"model"`` (default) — every candidate service is scored with the model's
  own click head; exact but O(catalogue) per request.  Affordable at
  reproduction scale and keeps offline/online rankings consistent.
* ``"inner_product"`` — the paper's deployment choice (Sec. V-F.1): the MLP
  head is replaced by an inner product over exported embeddings so retrieval
  reduces to a maximum-inner-product search.
* ``"ann"`` — the gateway's approximate variant of the same search: an
  :class:`~repro.serving.gateway.index.RetrievalIndex` (IVF by default,
  ``ann_index="lsh"`` for hyperplane LSH) answers the MIPS query from an
  index instead of a brute-force scan.  For the full serving stack
  (micro-batching, caching, hot-swap, telemetry) use
  :func:`repro.serving.gateway.deploy_gateway`.
* ``"ivfpq"`` / ``"int8"`` — quantized MIPS over compressed service tables
  (:mod:`repro.serving.quant`): ``"int8"`` scans symmetric int8 codes
  exactly (4x smaller than float32, recall ~1), ``"ivfpq"`` probes coarse
  IVF cells and scores product-quantized residual codes with ADC lookup
  tables.  Sugar for ``scoring="ann"`` with the matching index kind.
* ``"sharded"`` — the scatter/gather tier
  (:mod:`repro.serving.sharded`): the catalogue is split into
  ``num_shards`` contiguous ranges, each with its own per-shard index
  (``ann_index`` names the kind; pick ``"exact"`` for bit-exact parity
  with the single-index ranking), and per-shard top-K lists are merged
  exactly.  For the full multi-process deployment (worker pool, two-phase
  hot-swap, per-shard telemetry) use
  :func:`repro.serving.gateway.deploy_gateway` with ``num_shards > 1``.

For *concurrent* serving use the gateway tier directly: every gateway
returned by :func:`repro.serving.gateway.deploy_gateway` is asyncio-native —
``await gateway.search_async(query_id)`` holds thousands of in-flight
requests as futures on one event loop at the same micro-batch deadlines,
with bounded-queue admission control, per-request deadline shedding and
cooperative cancellation; the synchronous ``rank`` / ``search`` surface this
pipeline shares is a thin wrapper over that same async core.  See
``src/repro/serving/README.md`` for the layered architecture and when to
pick each scoring mode.
"""

from __future__ import annotations

from typing import List, Optional

from repro.data.schema import ServiceSearchDataset
from repro.serving.embedding_store import EmbeddingStore
from repro.serving.ranking import RankedService, RankingModule
from repro.serving.retrieval import InnerProductRetriever, ModelScoringRetriever


class ServingPipeline:
    """Online request path: embedding lookup → retrieval → ranking."""

    def __init__(self, store: EmbeddingStore, dataset: Optional[ServiceSearchDataset] = None,
                 top_k: int = 5, normalize: bool = False, model=None,
                 scoring: str = "inner_product", ann_index: str = "ivf",
                 ann_index_params: Optional[dict] = None,
                 num_shards: int = 4) -> None:
        if scoring not in ("inner_product", "model", "ann", "ivfpq", "int8", "sharded"):
            raise ValueError(f"unknown scoring mode {scoring!r}")
        if scoring == "model" and model is None:
            raise ValueError("scoring='model' requires the trained model")
        self.store = store
        self.scoring = scoring
        if scoring == "model":
            self.retriever = ModelScoringRetriever(model, store.num_services)
        elif scoring == "sharded":
            from repro.serving.sharded import ShardedRetriever

            self.retriever = ShardedRetriever(store, num_shards=num_shards,
                                              index=ann_index,
                                              index_params=ann_index_params)
        elif scoring in ("ann", "ivfpq", "int8"):
            from repro.serving.gateway import IndexRetriever

            # "ivfpq" / "int8" are sugar for ann with the quantized index.
            index = ann_index if scoring == "ann" else scoring
            self.retriever = IndexRetriever(store, index=index,
                                            index_params=ann_index_params)
        else:
            self.retriever = InnerProductRetriever(store, normalize=normalize)
        self.ranking = RankingModule(self.retriever, dataset=dataset, top_k=top_k)

    # The A/B simulator's ranker protocol.
    def rank(self, query_id: int, k: Optional[int] = None) -> List[int]:
        """Top-K service ids for one query request."""
        return self.ranking.rank(query_id, k)

    def rank_with_metadata(self, query_id: int, k: Optional[int] = None) -> List[RankedService]:
        """Top-K services with MAU / rating metadata (case studies)."""
        return self.ranking.rank_with_metadata(query_id, k)

    def refresh_from_model(self, model) -> int:
        """Re-export embeddings from a newly trained model (daily refresh)."""
        return self.store.refresh(model.query_embeddings(), model.service_embeddings())


def deploy_model(model, dataset: Optional[ServiceSearchDataset] = None,
                 top_k: int = 5, normalize: bool = False,
                 scoring: str = "model", ann_index: str = "ivf",
                 ann_index_params: Optional[dict] = None,
                 num_shards: int = 4) -> ServingPipeline:
    """Export a trained model's embeddings and wrap them in a serving pipeline."""
    store = EmbeddingStore.from_model(model)
    return ServingPipeline(store, dataset=dataset, top_k=top_k, normalize=normalize,
                           model=model, scoring=scoring, ann_index=ann_index,
                           ann_index_params=ann_index_params, num_shards=num_shards)
