"""Online serving substrate (Fig. 9 of the paper).

The production deployment runs a hybrid offline–online pipeline:

1. **Data processing** — node-feature and relation extractors build the
   service-search graph (here: :mod:`repro.serving.feature_extractor` wrapping
   the graph builder);
2. **Offline training** — GARCIA is trained and its query/service embeddings
   are exported daily to an embedding store;
3. **Online serving** — a request looks up the query embedding, retrieves the
   top-K services by inner product (the MLP head of Eq. 12 is replaced by an
   inner product for latency reasons, Sec. V-F.1) and returns the ranked list.

The high-throughput production variant of step 3 lives in
:mod:`repro.serving.gateway`: approximate (IVF / LSH) retrieval indexes, a
versioned embedding store with atomic daily hot-swap, an asyncio-native
micro-batching request scheduler (bounded admission queue, per-request
deadlines, cooperative cancellation — with a synchronous facade over the
same core) plus an LRU+TTL result cache, and serving telemetry.  Its
scale-out deployment lives in :mod:`repro.serving.sharded`: one worker per
store shard (serial / thread / process backends) behind a scatter/gather
gateway with exact top-K merging and per-shard telemetry; the scatter
overlaps per-shard work on the event loop for async callers.  The
experimentation tier lives in :mod:`repro.serving.abtest`: deterministic
bucketed traffic routing over gateway arms with joint CTR + serving-cost
reporting (the paper's Fig. 10 bucket test replayed *through* the serving
stack).  The replicated tier lives in :mod:`repro.serving.fleet`: a
health-aware :class:`FleetRouter` front-end over N gateway replicas
(rendezvous session routing, least-loaded fallback, hysteretic
ejection/readmission, bounded retry-on-failover) plus a seeded chaos
controller that proves no request is lost when a replica dies, stalls,
or slow-rolls mid-storm.  The observability substrate lives in
:mod:`repro.serving.obs`:
a bounded metrics core (counters / gauges / log-bucketed histograms with
Prometheus + JSON export), end-to-end request tracing from the gateway
through shard workers, and a tail-sampling flight recorder with a
poll-cheap health snapshot.  The durability substrate lives in
:mod:`repro.serving.snapshot`: a chunked, checksummed, content-addressed
on-disk format for store versions (fp tables, int8 scales/codes, PQ
codebooks/codes, trained index payloads) behind an atomically-flipped
manifest pointer — publishes write only changed chunks, and replicas,
gateways, and process-pool shard workers warm-start by mmapping the
manifest's chunks read-only instead of re-quantizing.  See
``src/repro/serving/README.md`` for the layer map.
"""

from repro.serving.abtest import (
    ABExperimentConfig,
    BucketRouter,
    GatewayABReport,
    OnlineABExperiment,
)
from repro.serving.embedding_store import EmbeddingStore
from repro.serving.feature_extractor import NodeFeatureExtractor, RelationExtractor
from repro.serving.fleet import (
    ChaosController,
    FleetRouter,
    FleetUnavailableError,
    HealthPolicy,
    ReplicaDeadError,
    deploy_fleet,
)
from repro.serving.gateway import (
    ServingGateway,
    VersionedEmbeddingStore,
    deploy_gateway,
)
from repro.serving.obs import (
    FlightRecorder,
    HealthSnapshot,
    MetricsRegistry,
    Tracer,
)
from repro.serving.pipeline import ServingPipeline, deploy_model
from repro.serving.ranking import RankedService, RankingModule
from repro.serving.retrieval import InnerProductRetriever, ModelScoringRetriever
from repro.serving.sharded import ShardedGateway, ShardedRetriever
from repro.serving.snapshot import (
    SnapshotError,
    SnapshotIntegrityError,
    SnapshotNotFoundError,
    open_snapshot,
    write_snapshot,
)

__all__ = [
    "ABExperimentConfig",
    "BucketRouter",
    "ChaosController",
    "EmbeddingStore",
    "FleetRouter",
    "FleetUnavailableError",
    "FlightRecorder",
    "GatewayABReport",
    "HealthPolicy",
    "HealthSnapshot",
    "MetricsRegistry",
    "OnlineABExperiment",
    "ReplicaDeadError",
    "InnerProductRetriever",
    "ModelScoringRetriever",
    "NodeFeatureExtractor",
    "Tracer",
    "RankedService",
    "RankingModule",
    "RelationExtractor",
    "ServingGateway",
    "ServingPipeline",
    "ShardedGateway",
    "ShardedRetriever",
    "SnapshotError",
    "SnapshotIntegrityError",
    "SnapshotNotFoundError",
    "VersionedEmbeddingStore",
    "deploy_fleet",
    "deploy_gateway",
    "deploy_model",
    "open_snapshot",
    "write_snapshot",
]
