"""Node-feature and relation extractors (the data-processing boxes of Fig. 9).

In production these components mine node attributes and high-quality edges
from raw logs before the graph builder assembles the service-search graph.
Here they wrap the dataset and the :class:`~repro.graph.builder.GraphBuilder`
so the serving pipeline mirrors the paper's deployment diagram one-to-one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.data.schema import CORRELATION_ATTRIBUTES, Interaction, ServiceSearchDataset
from repro.data.splits import HeadTailSplit
from repro.graph.builder import GraphBuildConfig, GraphBuilder
from repro.graph.search_graph import ServiceSearchGraph


class NodeFeatureExtractor:
    """Extract per-node attribute features from the dataset entities."""

    def __init__(self, dataset: ServiceSearchDataset) -> None:
        self.dataset = dataset

    def query_features(self) -> Dict[str, np.ndarray]:
        """Correlation attributes of every query, keyed by attribute name."""
        features = {key: np.zeros(self.dataset.num_queries, dtype=np.int64) for key in CORRELATION_ATTRIBUTES}
        for query in self.dataset.queries:
            for key in CORRELATION_ATTRIBUTES:
                features[key][query.query_id] = query.attributes.get(key, 0)
        return features

    def service_features(self) -> Dict[str, np.ndarray]:
        """Correlation attributes plus quality signals of every service."""
        features = {key: np.zeros(self.dataset.num_services, dtype=np.int64) for key in CORRELATION_ATTRIBUTES}
        features["mau"] = np.zeros(self.dataset.num_services, dtype=np.int64)
        features["rating"] = np.zeros(self.dataset.num_services, dtype=np.int64)
        for service in self.dataset.services:
            for key in CORRELATION_ATTRIBUTES:
                features[key][service.service_id] = service.attributes.get(key, 0)
            features["mau"][service.service_id] = service.mau
            features["rating"][service.service_id] = service.rating
        return features


@dataclass
class ExtractedRelations:
    """Counts of the relations mined by the relation extractor."""

    num_interaction_pairs: int
    num_correlation_pairs: int


class RelationExtractor:
    """Mine interaction and correlation relations and build the graph."""

    def __init__(self, dataset: ServiceSearchDataset, config: GraphBuildConfig = GraphBuildConfig()) -> None:
        self.dataset = dataset
        self.config = config
        self._builder = GraphBuilder(config)

    def build_graph(self, train_interactions: Sequence[Interaction],
                    head_tail: HeadTailSplit) -> ServiceSearchGraph:
        """Assemble the service-search graph from the mined relations."""
        return self._builder.build(self.dataset, train_interactions, head_tail)

    def relation_summary(self, graph: ServiceSearchGraph) -> ExtractedRelations:
        """Summarise how many pairs each condition contributed."""
        interaction_pairs = int((graph.ctr > 0).sum()) // 2
        correlation_pairs = int((graph.correlation > 0).sum()) // 2
        return ExtractedRelations(
            num_interaction_pairs=interaction_pairs,
            num_correlation_pairs=correlation_pairs,
        )
