"""Durable chunked snapshot format with mmap warm-start.

A store version on disk is a set of content-addressed, checksummed chunk
files (:mod:`~repro.serving.snapshot.format`) behind a versioned manifest
and an atomically-flipped ``MANIFEST`` pointer
(:mod:`~repro.serving.snapshot.manifest`);
:mod:`~repro.serving.snapshot.codec` maps
:class:`~repro.serving.gateway.store.EmbeddingSnapshot` — fp tables, int8
scales/codes (and the frozen integer-scoring query scale), PQ/OPQ
codebooks/codes, the learned OPQ rotation, and trained index payloads —
onto that container (kinds registered in
:data:`~repro.serving.snapshot.format.SECTION_ARRAYS`).  ``write_snapshot`` publishes a delta (only chunks absent from
the store hit disk); ``open_snapshot`` mmaps everything read-only so a
replica warm-starts without re-quantizing or re-training anything.
"""

from repro.serving.snapshot.codec import (
    DurableRef,
    DurableSnapshot,
    WriteReport,
    abandon_snapshot,
    export_index_state,
    latest_version,
    open_snapshot,
    restore_index_state,
    shard_tables_from_manifest,
    write_snapshot,
)
from repro.serving.snapshot.format import (
    CHECKSUM_ALGO,
    FORMAT_VERSION,
    SECTION_ARRAYS,
    ChunkRef,
    SnapshotError,
    SnapshotIntegrityError,
    SnapshotNotFoundError,
    content_id,
    open_chunk,
    write_chunk,
)
from repro.serving.snapshot.manifest import (
    POINTER_NAME,
    flip_pointer,
    list_versions,
    load_manifest,
    pin_version,
    pinned_versions,
    prune,
    read_pointer,
    unpin_version,
)
from repro.serving.snapshot.transport import (
    FetchReport,
    ReplicationError,
    ReplicationIntegrityError,
    ReplicationProtocolError,
    ReplicationUnavailableError,
    SnapshotFetcher,
    SnapshotServer,
    fetch_snapshot,
)

__all__ = [
    "CHECKSUM_ALGO",
    "ChunkRef",
    "DurableRef",
    "DurableSnapshot",
    "FORMAT_VERSION",
    "FetchReport",
    "POINTER_NAME",
    "ReplicationError",
    "ReplicationIntegrityError",
    "ReplicationProtocolError",
    "ReplicationUnavailableError",
    "SECTION_ARRAYS",
    "SnapshotError",
    "SnapshotFetcher",
    "SnapshotIntegrityError",
    "SnapshotNotFoundError",
    "SnapshotServer",
    "WriteReport",
    "abandon_snapshot",
    "content_id",
    "export_index_state",
    "fetch_snapshot",
    "flip_pointer",
    "latest_version",
    "list_versions",
    "load_manifest",
    "open_chunk",
    "open_snapshot",
    "pin_version",
    "pinned_versions",
    "prune",
    "read_pointer",
    "restore_index_state",
    "shard_tables_from_manifest",
    "unpin_version",
    "write_chunk",
    "write_snapshot",
]
