"""Snapshot replication over a wire: peer chunk fetch for new-host hydration.

PR 8 made store versions durable on *local* disk; this module moves them
between hosts.  A :class:`SnapshotServer` serves manifests and chunks from
a durable directory over a minimal framed protocol (length-prefixed frames
on a local TCP socket — the same strictly-paired request/reply discipline
as the sharded tier's pipes in ``sharded/pool.py``), and a
:class:`SnapshotFetcher` hydrates a fresh durable directory from a peer:

* **manifest first** — the fetcher asks for the peer's live manifest (or a
  pinned explicit version), validates its self-checksum *in memory*, and
  derives the referenced chunk set from it;
* **delta economics for free** — chunk ids are content addresses, so only
  chunks absent from the local ``chunks/`` directory cross the wire; a
  re-fetch after a small republish transfers only the changed tables;
* **checksum-verified arrival** — every chunk's bytes are run through the
  full header/CRC pipeline (:func:`~repro.serving.snapshot.format.
  verify_chunk_bytes`) against the manifest's ref *before* touching disk;
* **resumable** — verified chunks land via temp file + ``os.replace``,
  and the local ``MANIFEST`` pointer flips only after every chunk and
  manifest file is durable; a fetch killed between chunk N and N+1 leaves
  the directory at its last good version, and the next fetch re-transfers
  nothing that already landed;
* **bounded retry/backoff** — transient failures (a dropped connection, a
  corrupt frame) retry per chunk up to ``retries`` times with exponential
  backoff before surfacing as a typed :class:`ReplicationError`;
* **prune-safe serving** — the server pins the version a session is
  streaming (:func:`~repro.serving.snapshot.manifest.pin_version`), so a
  concurrent publish with ``keep_last`` retention never garbage-collects a
  manifest or chunk out from under a mid-flight fetch.

Error taxonomy (all :class:`~repro.serving.snapshot.format.SnapshotError`
subclasses, so existing warm-start fallbacks treat a failed wire hydration
exactly like a damaged local snapshot):

* :class:`ReplicationError` — base class for wire-path failures;
* :class:`ReplicationProtocolError` — malformed, truncated or oversized
  frames, bad magic, replies out of protocol;
* :class:`ReplicationUnavailableError` — the peer is unreachable or died
  mid-fetch (also a ``ConnectionError``);
* :class:`ReplicationIntegrityError` — a chunk or manifest kept failing
  its checksums after every retry (also a ``SnapshotIntegrityError``).

Frame layout (one frame per message, strictly paired request → reply)::

    offset  size  field
    0       4     magic          b"RSNW"
    4       1     frame kind     (1=REQ json, 2=META json, 3=DATA bytes,
                                  4=ERR json)
    5       8     payload nbytes (u64, bounded by MAX_FRAME_BYTES)
    13      ...   payload

A request is one REQ frame carrying a JSON body (``{"op": ...}``).  The
reply is either one ERR frame, or one META frame optionally followed by
exactly one DATA frame (``meta["data"] is True``).  Chunk DATA payloads
are the chunk *file* bytes — 96-byte checksummed header included — so the
wire inherits the container's integrity envelope instead of inventing a
second one; manifest DATA payloads are the self-checksummed manifest file
bytes for the same reason.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.serving.snapshot.format import (
    ChunkRef,
    SnapshotError,
    SnapshotIntegrityError,
    chunk_path,
    fsync_dir,
    verify_chunk_bytes,
    write_bytes_atomic,
)
from repro.serving.snapshot.manifest import (
    MANIFEST_DIR,
    decode_manifest,
    flip_pointer,
    load_manifest,
    manifest_rel,
    pin_version,
    read_pointer,
    unpin_version,
)

__all__ = [
    "FetchReport",
    "ReplicationError",
    "ReplicationIntegrityError",
    "ReplicationProtocolError",
    "ReplicationUnavailableError",
    "SnapshotFetcher",
    "SnapshotServer",
    "fetch_snapshot",
]

FRAME_MAGIC = b"RSNW"
FRAME_REQ = 1
FRAME_META = 2
FRAME_DATA = 3
FRAME_ERR = 4
_FRAME_HEADER = struct.Struct("<4sBQ")
FRAME_HEADER_SIZE = _FRAME_HEADER.size  # 13
#: Hard per-frame bound: a manifest is KBs and a chunk is a table slice —
#: anything past this is a corrupt length field, not a real payload.
MAX_FRAME_BYTES = 1 << 33


class ReplicationError(SnapshotError):
    """Base class for snapshot-replication (wire path) failures."""


class ReplicationProtocolError(ReplicationError):
    """A frame was malformed, truncated, oversized, or out of protocol."""


class ReplicationUnavailableError(ReplicationError, ConnectionError):
    """The peer is unreachable, or died mid-fetch (retries exhausted)."""


class ReplicationIntegrityError(ReplicationError, SnapshotIntegrityError):
    """A chunk or manifest failed its checksums on every retry."""


# --------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------- #
def send_frame(sock: socket.socket, kind: int, payload: bytes) -> None:
    """Write one length-prefixed frame (header + payload) to ``sock``."""
    sock.sendall(_FRAME_HEADER.pack(FRAME_MAGIC, kind, len(payload)) + payload)


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    """Read exactly ``nbytes`` or raise on a mid-frame connection close."""
    parts = []
    remaining = nbytes
    while remaining:
        try:
            part = sock.recv(min(remaining, 1 << 20))
        except OSError as exc:
            raise ReplicationUnavailableError(
                f"connection lost mid-frame ({exc})"
            ) from exc
        if not part:
            raise ReplicationProtocolError(
                f"peer closed the connection mid-frame "
                f"({nbytes - remaining} of {nbytes} bytes arrived)"
            )
        parts.append(part)
        remaining -= len(part)
    return b"".join(parts)


def recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Read one frame; returns ``(kind, payload)`` or raises typed errors."""
    header = _recv_exact(sock, FRAME_HEADER_SIZE)
    magic, kind, nbytes = _FRAME_HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise ReplicationProtocolError(f"bad frame magic {magic!r}")
    if nbytes > MAX_FRAME_BYTES:
        raise ReplicationProtocolError(
            f"frame declares {nbytes} bytes (cap {MAX_FRAME_BYTES}); "
            f"treating as corrupt"
        )
    return kind, _recv_exact(sock, int(nbytes))


def _json_frame(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


# --------------------------------------------------------------------- #
# Server
# --------------------------------------------------------------------- #
class SnapshotServer:
    """Serve a durable snapshot directory to fetching peers.

    One accept-loop thread plus one handler thread per connection; every
    session speaks strictly-paired request/reply frames.  The manifest a
    session is streaming is pinned for the session's lifetime (released on
    ``done`` or disconnect), so retention pruning on the served directory
    never deletes a version mid-fetch.

    ``chunk_filter`` is a test seam: ``(chunk_id, raw_bytes) -> bytes``
    applied to every outgoing chunk payload, where fault-matrix tests
    truncate frames, flip payload bytes, or count wire transfers.
    """

    def __init__(self, root, host: str = "127.0.0.1", port: int = 0, *,
                 chunk_filter: Optional[Callable[[str, bytes], bytes]] = None,
                 timeout_s: float = 30.0) -> None:
        self.root = Path(root)
        self.chunk_filter = chunk_filter
        self.timeout_s = float(timeout_s)
        self._listen_host = host
        self._listen_port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._sessions: Set[socket.socket] = set()
        self._pinned: Dict[socket.socket, int] = {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> Tuple[str, int]:
        """Bind, listen, and start accepting; returns ``(host, port)``."""
        if self._listener is not None:
            return self.address
        listener = socket.create_server(
            (self._listen_host, self._listen_port), reuse_port=False
        )
        listener.settimeout(0.2)
        self._listener = listener
        self._stopping.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="snapshot-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("server is not started")
        host, port = self._listener.getsockname()[:2]
        return host, port

    def stop(self) -> None:
        """Stop accepting, drop every session, release every pin."""
        self._stopping.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        with self._lock:
            sessions = list(self._sessions)
        for conn in sessions:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        # Handler threads unpin on their way out; wait for them briefly so
        # a stop() immediately followed by prune() sees no stale pins.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            with self._lock:
                if not self._sessions:
                    break
            time.sleep(0.01)

    def __enter__(self) -> "SnapshotServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def pinned_count(self) -> int:
        """Live session pins (test/ops visibility)."""
        with self._lock:
            return len(self._pinned)

    # ------------------------------------------------------------------ #
    # Accept + session loops
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            listener = self._listener
            if listener is None:
                return
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us: stopping
            conn.settimeout(self.timeout_s)
            with self._lock:
                self._sessions.add(conn)
            threading.Thread(
                target=self._session_loop, args=(conn,),
                name="snapshot-server-session", daemon=True,
            ).start()

    def _session_loop(self, conn: socket.socket) -> None:
        try:
            while not self._stopping.is_set():
                try:
                    kind, payload = recv_frame(conn)
                except (ReplicationError, OSError):
                    return  # client went away; pins release in finally
                if kind != FRAME_REQ:
                    self._send_error(conn, "protocol",
                                     f"expected a request frame, got kind {kind}")
                    return
                try:
                    request = json.loads(payload)
                    op = request["op"]
                except (ValueError, KeyError, TypeError):
                    self._send_error(conn, "protocol", "malformed request body")
                    return
                try:
                    if not self._handle(conn, op, request):
                        return
                except BrokenPipeError:
                    return
                except SnapshotError as exc:
                    self._send_error(conn, "snapshot",
                                     f"{type(exc).__name__}: {exc}")
                except Exception as exc:  # keep the session alive on odd ops
                    self._send_error(conn, "internal",
                                     f"{type(exc).__name__}: {exc}")
        finally:
            self._unpin_session(conn)
            with self._lock:
                self._sessions.discard(conn)
            conn.close()

    def _handle(self, conn: socket.socket, op: str, request: dict) -> bool:
        """Serve one request; returns False when the session should end."""
        if op == "manifest":
            self._serve_manifest(conn, request.get("version"))
        elif op == "file":
            self._serve_file(conn, str(request.get("rel", "")))
        elif op == "chunk":
            self._serve_chunk(conn, str(request.get("id", "")))
        elif op == "done":
            self._unpin_session(conn)
            send_frame(conn, FRAME_META, _json_frame({"ok": True}))
        else:
            self._send_error(conn, "protocol", f"unknown op {op!r}")
        return True

    def _serve_manifest(self, conn: socket.socket,
                        version: Optional[int]) -> None:
        """Pin + serve the live (or explicitly requested) version manifest."""
        if version is None:
            rel = read_pointer(self.root)
        else:
            rel = manifest_rel(int(version))
        raw = self._read_rel(conn, rel)
        if raw is None:
            return
        manifest = decode_manifest(raw, source=rel)  # never serve garbage
        served_version = int(manifest["version"])
        # One pin per session: re-requesting (a resume, a different
        # version) swaps the pin rather than leaking the old one.
        self._unpin_session(conn)
        pin_version(self.root, served_version)
        with self._lock:
            self._pinned[conn] = served_version
        sidecars = sorted(
            f"{MANIFEST_DIR}/{path.name}"
            for path in (self.root / MANIFEST_DIR).glob(
                f"v{served_version}-index-*.json"
            )
        )
        send_frame(conn, FRAME_META, _json_frame({
            "rel": rel, "version": served_version,
            "sidecars": sidecars, "data": True,
        }))
        send_frame(conn, FRAME_DATA, raw)

    def _serve_file(self, conn: socket.socket, rel: str) -> None:
        """Serve a sidecar manifest of the session's pinned version."""
        with self._lock:
            pinned = self._pinned.get(conn)
        prefix = f"{MANIFEST_DIR}/v{pinned}-index-"
        if pinned is None or not rel.startswith(prefix) or "/" in rel[len(prefix):]:
            self._send_error(
                conn, "protocol",
                f"file {rel!r} is not a sidecar of the pinned version",
            )
            return
        raw = self._read_rel(conn, rel)
        if raw is None:
            return
        send_frame(conn, FRAME_META,
                   _json_frame({"rel": rel, "nbytes": len(raw), "data": True}))
        send_frame(conn, FRAME_DATA, raw)

    def _serve_chunk(self, conn: socket.socket, chunk_id: str) -> None:
        if len(chunk_id) != 32 or not all(c in "0123456789abcdef"
                                          for c in chunk_id):
            self._send_error(conn, "protocol", f"bad chunk id {chunk_id!r}")
            return
        try:
            raw = chunk_path(self.root, chunk_id).read_bytes()
        except FileNotFoundError:
            self._send_error(conn, "not_found", f"no chunk {chunk_id} on disk")
            return
        if self.chunk_filter is not None:
            raw = self.chunk_filter(chunk_id, raw)
        send_frame(conn, FRAME_META,
                   _json_frame({"id": chunk_id, "nbytes": len(raw),
                                "data": True}))
        send_frame(conn, FRAME_DATA, raw)

    def _read_rel(self, conn: socket.socket, rel: str) -> Optional[bytes]:
        try:
            return (self.root / rel).read_bytes()
        except FileNotFoundError:
            self._send_error(conn, "not_found", f"no manifest at {rel}")
            return None

    def _send_error(self, conn: socket.socket, code: str, message: str) -> None:
        try:
            send_frame(conn, FRAME_ERR,
                       _json_frame({"code": code, "message": message}))
        except OSError:
            pass

    def _unpin_session(self, conn: socket.socket) -> None:
        with self._lock:
            pinned = self._pinned.pop(conn, None)
        if pinned is not None:
            unpin_version(self.root, pinned)


# --------------------------------------------------------------------- #
# Client
# --------------------------------------------------------------------- #
class PeerConnection:
    """One framed request/reply session against a :class:`SnapshotServer`."""

    def __init__(self, peer: Tuple[str, int], timeout_s: float = 30.0) -> None:
        self.peer = (str(peer[0]), int(peer[1]))
        try:
            self._sock = socket.create_connection(self.peer, timeout=timeout_s)
        except OSError as exc:
            raise ReplicationUnavailableError(
                f"cannot reach snapshot peer {self.peer[0]}:{self.peer[1]} "
                f"({exc})"
            ) from exc
        self._sock.settimeout(timeout_s)

    def request(self, body: dict) -> Tuple[dict, Optional[bytes]]:
        """One paired round trip; returns ``(meta, data-or-None)``."""
        try:
            send_frame(self._sock, FRAME_REQ, _json_frame(body))
            kind, payload = recv_frame(self._sock)
        except socket.timeout as exc:
            raise ReplicationUnavailableError(
                f"peer {self.peer} timed out mid-request"
            ) from exc
        except OSError as exc:
            raise ReplicationUnavailableError(
                f"connection to peer {self.peer} failed ({exc})"
            ) from exc
        if kind == FRAME_ERR:
            error = json.loads(payload)
            code = error.get("code", "error")
            message = error.get("message", "")
            if code == "protocol":
                raise ReplicationProtocolError(f"peer rejected request: {message}")
            raise ReplicationError(f"peer error [{code}]: {message}")
        if kind != FRAME_META:
            raise ReplicationProtocolError(
                f"expected a META frame, got kind {kind}"
            )
        try:
            meta = json.loads(payload)
        except ValueError as exc:
            raise ReplicationProtocolError("META frame is not valid JSON") from exc
        data = None
        if meta.get("data"):
            try:
                kind, data = recv_frame(self._sock)
            except socket.timeout as exc:
                raise ReplicationUnavailableError(
                    f"peer {self.peer} timed out mid-payload"
                ) from exc
            if kind != FRAME_DATA:
                raise ReplicationProtocolError(
                    f"expected a DATA frame, got kind {kind}"
                )
            declared = meta.get("nbytes")
            if declared is not None and int(declared) != len(data):
                raise ReplicationProtocolError(
                    f"DATA frame holds {len(data)} bytes, META declared "
                    f"{declared}"
                )
        return meta, data

    def close(self, *, polite: bool = True) -> None:
        if polite:
            try:
                self.request({"op": "done"})
            except ReplicationError:
                pass
        self._sock.close()


@dataclass(frozen=True)
class FetchReport:
    """What one :meth:`SnapshotFetcher.fetch` actually moved and landed."""

    peer: Tuple[str, int]
    version: int
    manifest_rel: str
    chunks_fetched: int
    chunks_already_local: int
    bytes_fetched: int
    sidecars_fetched: int
    retries: int
    flipped: bool


class SnapshotFetcher:
    """Hydrate a local durable directory from a peer's snapshot server.

    ``observer`` (a test/telemetry seam) is called as
    ``observer(chunk_id, nbytes)`` after each chunk lands durably —
    raising from it models a process kill *between* chunk N and N+1.
    """

    def __init__(self, peer: Tuple[str, int], root, *, retries: int = 3,
                 backoff_s: float = 0.05, timeout_s: float = 30.0,
                 observer: Optional[Callable[[str, int], None]] = None) -> None:
        if retries < 1:
            raise ValueError("retries must be >= 1")
        self.peer = (str(peer[0]), int(peer[1]))
        self.root = Path(root)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.timeout_s = float(timeout_s)
        self.observer = observer
        self._retry_count = 0

    # ------------------------------------------------------------------ #
    # Connection + retry plumbing
    # ------------------------------------------------------------------ #
    def _connect(self) -> PeerConnection:
        return PeerConnection(self.peer, timeout_s=self.timeout_s)

    def _with_retries(self, attempt: Callable[[], object], what: str):
        """Run ``attempt`` up to ``retries`` times with exponential backoff.

        Transient failures — a dropped connection, a truncated frame, a
        chunk that failed its checksum — retry; the final failure surfaces
        typed: availability errors as
        :class:`ReplicationUnavailableError`, integrity errors as
        :class:`ReplicationIntegrityError`.
        """
        last: Optional[Exception] = None
        for round_index in range(self.retries):
            if round_index:
                self._retry_count += 1
                time.sleep(self.backoff_s * (2 ** (round_index - 1)))
            try:
                return attempt()
            except (ReplicationUnavailableError, ReplicationProtocolError,
                    ConnectionError, socket.timeout) as exc:
                last = exc
            except SnapshotIntegrityError as exc:
                last = exc
        if isinstance(last, SnapshotIntegrityError):
            raise ReplicationIntegrityError(
                f"{what} kept failing integrity checks after "
                f"{self.retries} attempts: {last}"
            ) from last
        raise ReplicationUnavailableError(
            f"{what} failed after {self.retries} attempts: {last}"
        ) from last

    # ------------------------------------------------------------------ #
    # Fetch
    # ------------------------------------------------------------------ #
    def fetch(self, version: Optional[int] = None) -> FetchReport:
        """Pull one version (the peer's live one by default) into ``root``.

        Ordering mirrors :func:`~repro.serving.snapshot.codec.
        write_snapshot`'s crash contract: every chunk lands (atomic
        replace), then the manifest files, then the ``MANIFEST`` pointer
        flips — so a kill anywhere leaves the directory at its last good
        version and a re-run resumes without re-transferring landed chunks.
        """
        self._retry_count = 0
        state: Dict[str, object] = {}

        def _open_session() -> PeerConnection:
            conn = self._connect()
            try:
                body: Dict[str, object] = {"op": "manifest"}
                # A resume (or a reconnect mid-fetch) must keep fetching
                # the *same* version even if the peer's pointer moved.
                wanted = state.get("version", version)
                if wanted is not None:
                    body["version"] = int(wanted)
                meta, raw = conn.request(body)
                manifest = decode_manifest(raw, source=str(meta.get("rel")))
                state["version"] = int(manifest["version"])
                state["rel"] = str(meta["rel"])
                state["manifest"] = manifest
                state["manifest_raw"] = raw
                state["sidecars"] = [str(s) for s in meta.get("sidecars", ())]
                return conn
            except BaseException:
                conn.close(polite=False)
                raise

        conn = self._with_retries(_open_session, "manifest fetch")
        try:
            report = self._fetch_pinned(conn, state)
        finally:
            conn.close()
        return report

    def _fetch_pinned(self, conn: PeerConnection,
                      state: Dict[str, object]) -> FetchReport:
        manifest: dict = state["manifest"]  # type: ignore[assignment]
        fetched_version = int(state["version"])  # type: ignore[arg-type]
        rel = str(state["rel"])

        # Sidecar index payloads ride along so a warm start on this host
        # restores the trained index too; their manifests arrive (and are
        # validated) before their chunks are scheduled.
        sidecar_raw: Dict[str, bytes] = {}
        sidecar_manifests: List[dict] = []
        for sidecar_rel in state["sidecars"]:  # type: ignore[union-attr]
            def _one_sidecar(rel_=sidecar_rel):
                _meta, raw = self._session_request(
                    conn, state, {"op": "file", "rel": rel_}
                )
                return decode_manifest(raw, source=rel_), raw

            decoded, raw = self._with_retries(
                _one_sidecar, f"sidecar fetch ({sidecar_rel})"
            )
            sidecar_raw[sidecar_rel] = raw
            sidecar_manifests.append(decoded)

        refs = _manifest_chunk_refs([manifest, *sidecar_manifests])
        needed = [
            ref for ref in refs
            if not chunk_path(self.root, ref.chunk_id).exists()
        ]
        already_local = len(refs) - len(needed)

        bytes_fetched = 0
        for ref in needed:
            raw = self._with_retries(
                lambda ref=ref: self._fetch_one_chunk(conn, state, ref),
                f"chunk fetch ({ref.chunk_id})",
            )
            write_bytes_atomic(chunk_path(self.root, ref.chunk_id), raw)
            bytes_fetched += len(raw)
            if self.observer is not None:
                self.observer(ref.chunk_id, len(raw))

        # Chunks are all durable: land the manifest files, then flip.
        for sidecar_rel, raw in sidecar_raw.items():
            write_bytes_atomic(self.root / sidecar_rel, raw)
        write_bytes_atomic(self.root / rel, state["manifest_raw"])
        flipped = self._flip_if_newer(fetched_version, rel)
        return FetchReport(
            peer=self.peer,
            version=fetched_version,
            manifest_rel=rel,
            chunks_fetched=len(needed),
            chunks_already_local=already_local,
            bytes_fetched=bytes_fetched,
            sidecars_fetched=len(sidecar_raw),
            retries=self._retry_count,
            flipped=flipped,
        )

    def _fetch_one_chunk(self, conn: PeerConnection,
                         state: Dict[str, object], ref: ChunkRef) -> bytes:
        """One chunk round trip, verified in memory before it may land."""
        _meta, raw = self._session_request(
            conn, state, {"op": "chunk", "id": ref.chunk_id}
        )
        verify_chunk_bytes(raw, ref, source=f"wire:{self.peer}")
        return raw

    def _session_request(self, conn: PeerConnection, state: Dict[str, object],
                         body: dict) -> Tuple[dict, Optional[bytes]]:
        """One round trip on the session, reconnecting first if it broke.

        A failure mid-frame leaves the socket in an unusable state (the
        reply stream is partially consumed), so the session is marked
        broken and the *next* attempt — a retry round — rebuilds it.
        """
        self._reconnect_if_needed(conn, state)
        try:
            return conn.request(body)
        except (ReplicationError, OSError):
            state["broken"] = True
            try:
                conn._sock.close()
            except OSError:
                pass
            raise

    def _reconnect_if_needed(self, conn: PeerConnection,
                             state: Dict[str, object]) -> PeerConnection:
        """Reuse the session socket, or rebuild it after a peer restart.

        The replacement session re-requests the pinned version's manifest
        (re-pinning it on the peer) so the fetch continues at the version
        it started on, never a mix.
        """
        if conn._sock.fileno() >= 0 and state.get("broken") is not True:
            return conn
        fresh = self._connect()
        try:
            meta, raw = fresh.request(
                {"op": "manifest", "version": int(state["version"])}
            )
            decode_manifest(raw, source=str(meta.get("rel")))
        except BaseException:
            fresh.close(polite=False)
            raise
        try:
            conn._sock.close()
        except OSError:
            pass
        conn._sock = fresh._sock
        state["broken"] = False
        return conn

    def _flip_if_newer(self, fetched_version: int, rel: str) -> bool:
        """Flip the local pointer unless it already names a newer version.

        A fetch never moves a host *backwards*: hydrating from a peer that
        lags the local directory lands the (deduped) chunks and manifest
        but leaves the newer local pointer in place.
        """
        try:
            current_rel = read_pointer(self.root)
            current_version = int(load_manifest(self.root, current_rel)["version"])
        except SnapshotError:
            current_version = None  # empty or damaged pointer: take over
        if current_version is not None and current_version > fetched_version:
            return False
        flip_pointer(self.root, rel)
        fsync_dir(self.root)
        return True


def _manifest_chunk_refs(manifests: Sequence[dict]) -> List[ChunkRef]:
    """Every distinct chunk ref the given manifests reference, stable order."""
    refs: List[ChunkRef] = []
    seen: Set[str] = set()
    for manifest in manifests:
        for section in manifest.get("sections", {}).values():
            for array_refs in section.get("arrays", {}).values():
                for ref_json in array_refs:
                    ref = ChunkRef.from_json(ref_json)
                    if ref.chunk_id not in seen:
                        seen.add(ref.chunk_id)
                        refs.append(ref)
    return refs


def fetch_snapshot(peer: Tuple[str, int], root, *, version: Optional[int] = None,
                   retries: int = 3, backoff_s: float = 0.05,
                   timeout_s: float = 30.0) -> FetchReport:
    """One-shot convenience wrapper: ``SnapshotFetcher(peer, root).fetch()``."""
    return SnapshotFetcher(peer, root, retries=retries, backoff_s=backoff_s,
                           timeout_s=timeout_s).fetch(version=version)
