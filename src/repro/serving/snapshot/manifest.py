"""Versioned snapshot manifests behind an atomically-flipped pointer.

Directory layout::

    <root>/
      MANIFEST                 # pointer file: relative path of the live manifest
      manifests/v<N>.json      # immutable manifest for store version N
      manifests/v<N>-index-<kind>.json   # optional persisted index payloads
      chunks/<blake2b128>.chunk          # content-addressed chunk store

A manifest file is ``{"crc32": <u32>, "manifest": {...}}`` — the checksum
covers the canonical (sorted-keys) JSON of the inner object, so a torn or
bit-flipped manifest fails loudly instead of deserialising garbage.

Publishing a version is two separable steps: :func:`write_manifest` makes
the version durable (chunks + manifest file), and :func:`flip_pointer`
atomically repoints ``MANIFEST`` (write-temp + ``os.replace`` + fsync).  A
crash between the two leaves the pointer naming the previous good version,
which is exactly the recovery contract the crash-safety tests exercise.
"""

from __future__ import annotations

import json
import threading
import zlib
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.serving.snapshot.format import (
    CHUNK_DIR,
    CHUNK_SUFFIX,
    SnapshotIntegrityError,
    SnapshotNotFoundError,
    write_bytes_atomic,
)

POINTER_NAME = "MANIFEST"
MANIFEST_DIR = "manifests"
MANIFEST_FORMAT = "repro-snapshot"
MANIFEST_FORMAT_VERSION = 1


def manifest_rel(version: int) -> str:
    return f"{MANIFEST_DIR}/v{int(version)}.json"


def index_manifest_rel(version: int, kind: str) -> str:
    return f"{MANIFEST_DIR}/v{int(version)}-index-{kind}.json"


def _canonical(obj: dict) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def write_manifest(root: Path, manifest: dict, rel: str) -> str:
    """Write a self-checksummed manifest file at ``<root>/<rel>``."""
    body = _canonical(manifest)
    envelope = {"crc32": zlib.crc32(body), "manifest": manifest}
    write_bytes_atomic(Path(root) / rel, json.dumps(envelope, indent=2).encode("utf-8"))
    return rel


def decode_manifest(raw: bytes, source: str = "<bytes>") -> dict:
    """Decode and integrity-check one manifest envelope held in memory.

    This is the byte-level half of :func:`load_manifest`, split out so the
    replication fetcher can validate a manifest *as it arrives off the
    wire* — before anything touches the local directory.
    """
    try:
        envelope = json.loads(raw)
        manifest = envelope["manifest"]
        expected = int(envelope["crc32"])
    except (ValueError, KeyError, TypeError) as exc:
        raise SnapshotIntegrityError(f"manifest {source} is not valid JSON") from exc
    if zlib.crc32(_canonical(manifest)) != expected:
        raise SnapshotIntegrityError(f"manifest {source} failed its checksum")
    if manifest.get("format") != MANIFEST_FORMAT:
        raise SnapshotIntegrityError(f"manifest {source} has unknown format")
    return manifest


def load_manifest(root: Path, rel: str) -> dict:
    """Load and integrity-check the manifest at ``<root>/<rel>``."""
    path = Path(root) / rel
    try:
        raw = path.read_bytes()
    except FileNotFoundError as exc:
        raise SnapshotNotFoundError(f"no manifest at {path}") from exc
    return decode_manifest(raw, source=str(path))


def flip_pointer(root: Path, rel: str) -> None:
    """Atomically repoint ``MANIFEST`` at the manifest file ``rel``."""
    write_bytes_atomic(Path(root) / POINTER_NAME, (rel + "\n").encode("utf-8"))


def read_pointer(root: Path) -> str:
    path = Path(root) / POINTER_NAME
    try:
        rel = path.read_text(encoding="utf-8").strip()
    except FileNotFoundError as exc:
        raise SnapshotNotFoundError(f"no snapshot pointer at {path}") from exc
    if not rel:
        raise SnapshotIntegrityError(f"snapshot pointer {path} is empty")
    return rel


def list_versions(root: Path) -> List[int]:
    """Store versions with a manifest file on disk, ascending."""
    mdir = Path(root) / MANIFEST_DIR
    versions = []
    if mdir.is_dir():
        for path in mdir.glob("v*.json"):
            stem = path.stem  # v<N> or v<N>-index-<kind>
            if "-" in stem:
                continue
            try:
                versions.append(int(stem[1:]))
            except ValueError:
                continue
    return sorted(versions)


def delete_manifest(root: Path, rel: str) -> None:
    """Remove an orphan manifest file (e.g. after an aborted publish)."""
    path = Path(root) / rel
    try:
        path.unlink()
    except FileNotFoundError:
        pass


# --------------------------------------------------------------------- #
# Version pins: refcounts that shield a manifest from prune
# --------------------------------------------------------------------- #
# A fetcher hydrating over the wire reads one manifest and then its chunks
# over many round trips; a concurrent publish with ``keep_last`` retention
# must not garbage-collect that version out from under the stream.  The
# registry is process-global (the server and the publishing store share a
# process in this tier) and keyed by the resolved directory, so every
# publisher pruning a directory sees the pins of every server serving it.
_PINS_LOCK = threading.Lock()
_PINS: Dict[str, Counter] = {}


def _pin_key(root: Path) -> str:
    return str(Path(root).resolve())


def pin_version(root: Path, version: int) -> None:
    """Take one refcount on ``version``: prune keeps its manifest, sidecars
    and every chunk they reference until the matching :func:`unpin_version`."""
    with _PINS_LOCK:
        _PINS.setdefault(_pin_key(root), Counter())[int(version)] += 1


def unpin_version(root: Path, version: int) -> None:
    """Release one refcount taken by :func:`pin_version` (idempotent past 0)."""
    with _PINS_LOCK:
        pins = _PINS.get(_pin_key(root))
        if pins is None:
            return
        version = int(version)
        if pins[version] > 0:
            pins[version] -= 1
        if pins[version] <= 0:
            del pins[version]
        if not pins:
            _PINS.pop(_pin_key(root), None)


def pinned_versions(root: Path) -> Set[int]:
    """Versions currently pinned under ``root`` (refcount > 0)."""
    with _PINS_LOCK:
        return set(_PINS.get(_pin_key(root), ()))


def _referenced_chunks(manifest: dict) -> set:
    chunk_ids = set()
    for section in manifest.get("sections", {}).values():
        for refs in section.get("arrays", {}).values():
            for ref in refs:
                chunk_ids.add(ref["chunk"])
    return chunk_ids


def prune(root: Path, keep_versions: Optional[int] = 2) -> dict:
    """Garbage-collect manifests and chunks no live version references.

    Keeps the pointer target plus the ``keep_versions`` newest manifests
    (and their index sidecars); deletes everything else, then any chunk no
    kept manifest references.  Returns ``{"manifests": n, "chunks": n}``.

    Versions pinned through :func:`pin_version` — a manifest currently
    mid-stream to a replication fetcher — are kept regardless of their
    age, along with every chunk they reference, so a long wire fetch
    always survives a concurrent retention pass.
    """
    root = Path(root)
    try:
        live_rel = read_pointer(root)
    except SnapshotNotFoundError:
        live_rel = None
    versions = list_versions(root)
    kept = set(versions[-keep_versions:]) if keep_versions else set(versions)
    kept |= pinned_versions(root) & set(versions)
    removed_manifests = 0
    referenced = set()
    mdir = root / MANIFEST_DIR
    for path in sorted(mdir.glob("v*.json")) if mdir.is_dir() else []:
        rel = f"{MANIFEST_DIR}/{path.name}"
        stem = path.stem
        base_version = int(stem.split("-")[0][1:]) if stem[1:].split("-")[0].isdigit() else None
        is_live = rel == live_rel or (base_version is not None and base_version in kept)
        if not is_live:
            path.unlink()
            removed_manifests += 1
            continue
        try:
            referenced |= _referenced_chunks(load_manifest(root, rel))
        except SnapshotIntegrityError:
            continue
    removed_chunks = 0
    cdir = root / CHUNK_DIR
    for path in sorted(cdir.glob(f"*{CHUNK_SUFFIX}")) if cdir.is_dir() else []:
        if path.stem not in referenced:
            path.unlink()
            removed_chunks += 1
    if live_rel is not None:
        # The pointer target must always survive a prune.
        assert (root / live_rel).exists()
    return {"manifests": removed_manifests, "chunks": removed_chunks}
