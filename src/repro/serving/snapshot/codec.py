"""Encode/decode store versions to the chunked on-disk snapshot format.

:func:`write_snapshot` lowers one
:class:`~repro.serving.gateway.store.EmbeddingSnapshot` into sectioned,
content-addressed chunks (fp tables, int8 scales/codes plus the frozen
query-quantization step, PQ/OPQ codebooks/codes, the learned OPQ rotation)
plus a self-checksummed manifest; :func:`open_snapshot` mmaps those chunks
read-only and rebuilds the snapshot — including its quantized tables —
without re-fitting a single quantizer, which is the whole warm-start win.

Because chunks are content addressed, ``write_snapshot`` on version ``v+1``
only touches disk for tables that actually changed: an unchanged service
catalogue (and its deterministic int8/PQ encodings) dedups to zero new
chunks and the publish reduces to one small manifest plus the atomic
pointer flip.

Index payloads (a trained :class:`~repro.serving.quant.ivfpq.IVFPQIndex`'s
coarse centroids, slot layout, and residual codebooks) ride in sidecar
manifests next to the version manifest, sharing the same chunk store — a
warm-started gateway restores its ANN index instead of re-running k-means.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.serving.snapshot.format import (
    CHECKSUM_ALGO,
    SECTION_ARRAYS,
    ChunkRef,
    SnapshotError,
    SnapshotIntegrityError,
    SnapshotNotFoundError,
    open_array,
    read_rows,
    write_array_chunks,
)
from repro.serving.snapshot.manifest import (
    MANIFEST_FORMAT,
    MANIFEST_FORMAT_VERSION,
    delete_manifest,
    flip_pointer,
    index_manifest_rel,
    list_versions,
    load_manifest,
    manifest_rel,
    read_pointer,
    write_manifest,
)


@dataclass(frozen=True)
class WriteReport:
    """What one :func:`write_snapshot` call actually did on disk."""

    manifest_rel: str
    version: int
    chunks_written: int
    chunks_shared: int
    bytes_written: int
    flipped: bool


@dataclass(frozen=True)
class DurableRef:
    """A published version's durable location — attached to the in-memory
    snapshot so downstream consumers (shard workers, warm-started gateways)
    can hydrate from disk instead of IPC."""

    root: str
    manifest_rel: str
    version: int

    def open(self, *, verify: bool = True) -> "DurableSnapshot":
        manifest = load_manifest(Path(self.root), self.manifest_rel)
        return DurableSnapshot(Path(self.root), manifest, self.manifest_rel,
                               verify=verify)

    def save_index(self, index, kind: str) -> str:
        """Persist a built index's payload beside this version's manifest."""
        meta, arrays = export_index_state(index)
        section: Dict[str, list] = {}
        root = Path(self.root)
        for name, array in arrays.items():
            refs, _, _ = write_array_chunks(root, array)
            section[name] = [ref.to_json() for ref in refs]
        manifest = {
            "format": MANIFEST_FORMAT,
            "format_version": MANIFEST_FORMAT_VERSION,
            "checksum_algo": CHECKSUM_ALGO,
            "version": self.version,
            "index_kind": kind,
            "meta": meta,
            "sections": {"index": {"arrays": section}},
        }
        return write_manifest(root, manifest, index_manifest_rel(self.version, kind))

    def load_index(self, kind: str, *, int8_table=None, params: Optional[Mapping] = None,
                   verify: bool = True):
        """Restore a persisted index payload for this version.

        Raises :class:`SnapshotNotFoundError` when no payload of ``kind``
        was persisted, :class:`SnapshotIntegrityError` when the payload is
        damaged — callers fall back to an in-memory rebuild either way.
        """
        root = Path(self.root)
        rel = index_manifest_rel(self.version, kind)
        manifest = load_manifest(root, rel)
        if manifest.get("index_kind") != kind or manifest.get("version") != self.version:
            raise SnapshotIntegrityError(
                f"index payload {rel} does not describe v{self.version}/{kind}"
            )
        meta = manifest["meta"]
        arrays = {
            name: open_array(root, [ChunkRef.from_json(r) for r in refs], verify=verify)
            for name, refs in manifest["sections"]["index"]["arrays"].items()
        }
        if meta.get("refine") == "int8" and int8_table is None:
            int8_table = self.open(verify=verify).int8_table()
            if int8_table is None:
                raise SnapshotIntegrityError(
                    f"index payload {rel} needs an int8 refine table but "
                    f"v{self.version} published none"
                )
        return restore_index_state(meta, arrays, int8_table=int8_table,
                                   params=params)


def _pq_meta(pq) -> dict:
    return {
        "num_subspaces": int(pq.num_subspaces),
        "num_centroids": int(pq.num_centroids),
        "kmeans_iters": int(pq.kmeans_iters),
        "seed": int(pq.seed),
        "init": str(pq.init),
        "dim": int(pq.dim_),
        "padded_dim": int(pq.padded_dim_),
    }


def _section_arrays(snapshot) -> Dict[str, Tuple[dict, Dict[str, np.ndarray]]]:
    """Decompose a snapshot into ``{section: (meta, {name: array})}``.

    Every array here becomes a content-addressed chunk; the known
    section/array kinds are registered in
    :data:`~repro.serving.snapshot.format.SECTION_ARRAYS`.
    """
    sections: Dict[str, Tuple[dict, Dict[str, np.ndarray]]] = {
        "fp": (
            {"dtype": np.asarray(snapshot.services).dtype.str},
            {"queries": np.asarray(snapshot.queries),
             "services": np.asarray(snapshot.services)},
        )
    }
    for kind, table in snapshot.quantized.items():
        if kind == "int8":
            arrays = {"codes": table.codes, "scales": table.scales}
            if table.query_scale is not None:
                # The frozen query-quantization step rides as its own tiny
                # chunk so every replica scores the integer path with the
                # exact same step (bit-identical ranking).
                arrays["query_scale"] = np.asarray(
                    [table.query_scale], dtype=np.float32
                )
            sections["int8"] = ({}, arrays)
        elif kind == "pq":
            pq = table.quantizer
            sections["pq"] = (
                _pq_meta(pq),
                {"codes": table.codes, "codebooks": pq.codebooks_},
            )
        elif kind == "opq":
            pq = table.quantizer
            meta = _pq_meta(pq)
            meta["opq_iters"] = int(pq.opq_iters)
            meta["opq_init"] = str(pq.opq_init)
            sections["opq"] = (
                meta,
                {
                    "codes": table.codes,
                    "codebooks": pq.codebooks_,
                    "rotation": pq.rotation_,
                },
            )
        else:  # pragma: no cover - future quantizer kinds
            raise SnapshotError(f"no snapshot codec for quantized table kind {kind!r}")
    return sections


def write_snapshot(snapshot, root, *, rows_per_chunk: Optional[int] = None,
                   flip: bool = True,
                   extra_meta: Optional[Mapping] = None) -> WriteReport:
    """Persist a snapshot: content-addressed chunks + manifest (+ pointer).

    Only chunks absent from the chunk store are written; ``flip=False``
    makes the version durable without making it *live* — the store's
    two-phase publish flips the pointer at its in-memory reference flip.
    """
    root = Path(root)
    chunks_written = chunks_shared = bytes_written = 0
    sections = {}
    for name, (meta, arrays) in _section_arrays(snapshot).items():
        registered = SECTION_ARRAYS.get(name)
        if registered is None or any(a not in registered for a in arrays):
            raise SnapshotError(
                f"section {name!r} with arrays {sorted(arrays)} is not in "
                f"the chunk-kind registry (snapshot.format.SECTION_ARRAYS)"
            )
        refs_by_array = {}
        for array_name, array in arrays.items():
            per_chunk = rows_per_chunk if array.ndim >= 2 else None
            refs, written, nbytes = write_array_chunks(
                root, array, rows_per_chunk=per_chunk
            )
            refs_by_array[array_name] = [ref.to_json() for ref in refs]
            chunks_written += written
            chunks_shared += len(refs) - written
            bytes_written += nbytes
        sections[name] = {"meta": meta, "arrays": refs_by_array}
    manifest = {
        "format": MANIFEST_FORMAT,
        "format_version": MANIFEST_FORMAT_VERSION,
        "checksum_algo": CHECKSUM_ALGO,
        "version": int(snapshot.version),
        "meta": {
            "num_queries": int(snapshot.num_queries),
            "num_services": int(snapshot.num_services),
            "embedding_dim": int(snapshot.embedding_dim),
            "shard_bounds": [int(b) for b in snapshot.shard_bounds],
            "quantization": sorted(snapshot.quantized),
            **(dict(extra_meta) if extra_meta else {}),
        },
        "sections": sections,
    }
    rel = write_manifest(root, manifest, manifest_rel(snapshot.version))
    if flip:
        flip_pointer(root, rel)
    return WriteReport(
        manifest_rel=rel,
        version=int(snapshot.version),
        chunks_written=chunks_written,
        chunks_shared=chunks_shared,
        bytes_written=bytes_written,
        flipped=flip,
    )


def abandon_snapshot(root, report: WriteReport) -> None:
    """Drop the manifest of an aborted publish (chunks stay; they are
    content-addressed and a later prune collects unreferenced ones)."""
    delete_manifest(Path(root), report.manifest_rel)


class DurableSnapshot:
    """A store version opened from disk: mmapped, read-only, zero-copy."""

    def __init__(self, root: Path, manifest: dict, rel: str, *,
                 verify: bool = True) -> None:
        self.root = Path(root)
        self.manifest = manifest
        self.manifest_rel = rel
        self.verify = verify

    @property
    def version(self) -> int:
        return int(self.manifest["version"])

    @property
    def meta(self) -> dict:
        return self.manifest["meta"]

    @property
    def shard_bounds(self) -> Tuple[int, ...]:
        return tuple(int(b) for b in self.meta["shard_bounds"])

    def ref(self) -> DurableRef:
        return DurableRef(root=str(self.root), manifest_rel=self.manifest_rel,
                          version=self.version)

    # ------------------------------------------------------------------ #
    # Section accessors
    # ------------------------------------------------------------------ #
    def _refs(self, section: str, array: str) -> Sequence[ChunkRef]:
        try:
            refs = self.manifest["sections"][section]["arrays"][array]
        except KeyError as exc:
            raise SnapshotIntegrityError(
                f"manifest {self.manifest_rel} lacks array {section}/{array}"
            ) from exc
        return [ChunkRef.from_json(r) for r in refs]

    def _section_meta(self, section: str) -> dict:
        return self.manifest["sections"][section].get("meta", {})

    def has_section(self, section: str) -> bool:
        return section in self.manifest.get("sections", {})

    def array(self, section: str, name: str) -> np.ndarray:
        return open_array(self.root, self._refs(section, name), verify=self.verify)

    def _query_scale(self):
        """The published int8 query-quantization step, or ``None``."""
        try:
            refs = self._refs("int8", "query_scale")
        except SnapshotIntegrityError:
            return None
        return float(open_array(self.root, refs, verify=self.verify)[0])

    def int8_table(self):
        """The version's :class:`~repro.serving.quant.scalar.Int8Table`,
        served straight off the mmapped chunks (or ``None``).

        The published ``query_scale`` chunk (when the store froze one) rides
        along, so the integer scoring path of a warm-started replica ranks
        bit-identically to the store that trained the table."""
        if not self.has_section("int8"):
            return None
        from repro.serving.quant.scalar import Int8Table

        return Int8Table(codes=self.array("int8", "codes"),
                         scales=self.array("int8", "scales"),
                         query_scale=self._query_scale())

    def pq_table(self):
        """The version's :class:`~repro.serving.quant.pq.PQTable`, with the
        codebooks mmapped and no k-means re-run (or ``None``)."""
        if not self.has_section("pq"):
            return None
        from repro.serving.quant.pq import PQTable

        meta = self._section_meta("pq")
        quantizer = _rebuild_pq(meta, self.array("pq", "codebooks"))
        return PQTable(codes=self.array("pq", "codes"), quantizer=quantizer)

    def opq_table(self):
        """The version's :class:`~repro.serving.quant.opq.OPQTable`, with
        codebooks *and* the learned rotation mmapped — no alternating
        minimization is ever re-run on a warm start (or ``None``)."""
        if not self.has_section("opq"):
            return None
        from repro.serving.quant.opq import OPQTable

        meta = self._section_meta("opq")
        quantizer = _rebuild_pq(meta, self.array("opq", "codebooks"),
                                rotation=self.array("opq", "rotation"))
        return OPQTable(codes=self.array("opq", "codes"), quantizer=quantizer)

    def to_snapshot(self, *, published_at: float):
        """Rebuild the full in-memory snapshot over mmapped arrays."""
        from repro.serving.gateway.store import EmbeddingSnapshot

        quantized = {}
        int8 = self.int8_table()
        if int8 is not None:
            quantized["int8"] = int8
        pq = self.pq_table()
        if pq is not None:
            quantized["pq"] = pq
        opq = self.opq_table()
        if opq is not None:
            quantized["opq"] = opq
        return EmbeddingSnapshot(
            version=self.version,
            published_at=published_at,
            queries=self.array("fp", "queries"),
            services=self.array("fp", "services"),
            shard_bounds=self.shard_bounds,
            quantized=quantized,
            durable=self.ref(),
        )

    def shard_tables(self, lo: int, hi: int):
        """Materialise one shard's row range: ``(services, int8 table)``.

        Only the chunks overlapping ``[lo, hi)`` are opened and verified —
        a shard worker hydrates its slice without reading (or paying the
        checksum for) the rest of the catalogue.  ``int8`` is ``None`` when
        the version published no int8 table.
        """
        services = read_rows(self.root, self._refs("fp", "services"), lo, hi,
                             verify=self.verify)
        int8 = None
        if self.has_section("int8"):
            from repro.serving.quant.scalar import Int8Table

            int8 = Int8Table(
                codes=read_rows(self.root, self._refs("int8", "codes"), lo, hi,
                                verify=self.verify),
                scales=self.array("int8", "scales"),
                query_scale=self._query_scale(),
            )
        return services, int8


def open_snapshot(root, *, version: Optional[int] = None,
                  verify: bool = True) -> DurableSnapshot:
    """Open the pointer's live version (or an explicit ``version``) from
    ``root``, mmapping chunks read-only for zero-copy boot."""
    root = Path(root)
    rel = manifest_rel(version) if version is not None else read_pointer(root)
    manifest = load_manifest(root, rel)
    if version is not None and int(manifest["version"]) != int(version):
        raise SnapshotIntegrityError(
            f"manifest {rel} claims version {manifest['version']}, wanted {version}"
        )
    return DurableSnapshot(root, manifest, rel, verify=verify)


def latest_version(root) -> int:
    """The version the ``MANIFEST`` pointer currently names."""
    root = Path(root)
    return open_snapshot(root).version


def shard_tables_from_manifest(root, rel: str, lo: int, hi: int, *,
                               verify: bool = True):
    """One-shot shard hydration used by process-pool workers: open the
    manifest at ``rel`` and materialise rows ``[lo, hi)``."""
    snapshot = DurableSnapshot(Path(root), load_manifest(Path(root), rel), rel,
                               verify=verify)
    return snapshot.shard_tables(lo, hi)


# ---------------------------------------------------------------------- #
# Index payloads
# ---------------------------------------------------------------------- #
def _rebuild_pq(meta: dict, codebooks: np.ndarray,
                rotation: Optional[np.ndarray] = None):
    from repro.serving.quant.opq import OPQQuantizer
    from repro.serving.quant.pq import ProductQuantizer

    common = dict(
        num_subspaces=int(meta["num_subspaces"]),
        num_centroids=int(meta["num_centroids"]),
        kmeans_iters=int(meta.get("kmeans_iters", 10)),
        seed=int(meta.get("seed", 0)),
        init=str(meta.get("init", "kmeans++")),
    )
    if rotation is None:
        quantizer = ProductQuantizer(**common)
    else:
        quantizer = OPQQuantizer(
            **common,
            opq_iters=int(meta.get("opq_iters", 4)),
            opq_init=str(meta.get("opq_init", "eigen")),
        )
    quantizer.dim_ = int(meta["dim"])
    quantizer.padded_dim_ = int(meta["padded_dim"])
    codebooks = np.asarray(codebooks, dtype=np.float32)
    if codebooks.ndim != 3 or codebooks.shape[0] != quantizer.num_subspaces:
        raise SnapshotIntegrityError(
            f"PQ codebooks have shape {codebooks.shape}, expected "
            f"({quantizer.num_subspaces}, K, dsub)"
        )
    quantizer.codebooks_ = codebooks
    if rotation is not None:
        rotation = np.asarray(rotation, dtype=np.float32)
        pdim = quantizer.padded_dim_
        if rotation.shape != (pdim, pdim):
            raise SnapshotIntegrityError(
                f"OPQ rotation has shape {rotation.shape}, expected "
                f"({pdim}, {pdim})"
            )
        quantizer.rotation_ = rotation
    return quantizer


def export_index_state(index) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Extract the persistable state of a built index.

    Only :class:`~repro.serving.quant.ivfpq.IVFPQIndex` carries expensive
    trained state (coarse k-means + residual PQ); the cheap-to-build kinds
    rebuild from the snapshot tables in negligible time.
    """
    from repro.serving.quant.ivfpq import IVFPQIndex

    if not isinstance(index, IVFPQIndex):
        raise SnapshotError(
            f"index kind {getattr(index, 'name', type(index).__name__)!r} has no "
            f"persistable payload (only 'ivfpq' indexes need one)"
        )
    return index.export_state()


def restore_index_state(meta: dict, arrays: Mapping[str, np.ndarray], *,
                        int8_table=None, params: Optional[Mapping] = None):
    from repro.serving.quant.ivfpq import IVFPQIndex

    if meta.get("name") != "ivfpq":
        raise SnapshotIntegrityError(
            f"unsupported persisted index payload {meta.get('name')!r}"
        )
    return IVFPQIndex.from_state(meta, arrays, int8_table=int8_table,
                                 params=params)


# Re-exported so integrators only need one import site.
__all__ = [
    "DurableRef",
    "DurableSnapshot",
    "WriteReport",
    "abandon_snapshot",
    "export_index_state",
    "latest_version",
    "list_versions",
    "open_snapshot",
    "restore_index_state",
    "shard_tables_from_manifest",
    "write_snapshot",
]
