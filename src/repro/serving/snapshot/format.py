"""Chunked on-disk container for store versions.

Each chunk is one file holding a single ndarray payload behind a
struct-packed, checksummed header (in the spirit of the ``ManHeader`` /
``ManFile`` manifest reader exemplar):

``````
offset  size  field
0       8     magic            b"RSNPCHK1"
8       2     format version   (u16)
10      2     flags            (u16, reserved)
12      4     payload crc32    (u32)
16      8     payload nbytes   (u64)
24      8     dtype            (numpy dtype ``.str``, NUL padded)
32      2     ndim             (u16, <= 4)
34      32    shape            (4 x u64, unused dims 0)
66      16    chunk id         (blake2b-128 of dtype+shape+payload)
82      4     header crc32     (u32 over bytes [0, 82))
86      10    pad              (zeros; header is 96 bytes total)
``````

Chunks are content addressed: the chunk id doubles as the file name, so a
chunk that already exists on disk never needs to be rewritten — successive
store versions share every unchanged table and a delta publish writes only
the new chunks.  Writes go to a temp file in the same directory followed by
``os.replace`` + directory fsync, so a crash mid-write never leaves a
half-written chunk under its final name.

Checksums use ``zlib.crc32``: the container has no compiled CRC32C
(Castagnoli) extension and a pure-Python CRC32C would cost ~1 s/MB, which
would erase the warm-start win the format exists to provide.  The manifest
records the algorithm (``"crc32"``) so a CRC32C codepath can be added
behind the same header field later.

Reads mmap the chunk file ``ACCESS_READ`` and expose the payload as a
zero-copy, read-only ndarray view — warm boot never copies a table.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Tuple

import numpy as np

MAGIC = b"RSNPCHK1"
FORMAT_VERSION = 1
CHECKSUM_ALGO = "crc32"
MAX_NDIM = 4

# magic, version, flags, payload crc, nbytes, dtype, ndim, shape[4], id, hdr crc
_HEADER = struct.Struct("<8sHHIQ8sH4Q16sI10x")
HEADER_SIZE = _HEADER.size  # 96
_HEADER_CRC_OFFSET = HEADER_SIZE - 14  # start of the header-crc field

CHUNK_DIR = "chunks"
CHUNK_SUFFIX = ".chunk"

#: Registry of known snapshot chunk kinds: ``section -> array names`` a
#: version manifest may reference.  The codec validates every section it
#: writes against this table so an unregistered kind fails loudly at
#: publish time instead of producing manifests old readers half-understand.
#:
#: * ``fp``    — the full-precision query/service tables;
#: * ``int8``  — symmetric int8 codes + per-dimension scales, plus the
#:   optional frozen ``query_scale`` step (a 1-element float32 chunk) that
#:   makes the end-to-end integer scoring path bit-identical on every
#:   replica that hydrates the version;
#: * ``pq``    — product-quantization byte codes + sub-space codebooks;
#: * ``opq``   — OPQ: PQ codes/codebooks trained under a learned
#:   orthonormal rotation, persisted alongside them so no replica ever
#:   re-runs the alternating minimization.
SECTION_ARRAYS = {
    "fp": ("queries", "services"),
    "int8": ("codes", "scales", "query_scale"),
    "pq": ("codes", "codebooks"),
    "opq": ("codes", "codebooks", "rotation"),
}


class SnapshotError(RuntimeError):
    """Base class for durable-snapshot failures."""


class SnapshotNotFoundError(SnapshotError):
    """No manifest/pointer (or requested version) exists in the directory."""


class SnapshotIntegrityError(SnapshotError):
    """A chunk or manifest is corrupt, truncated, or missing on disk."""


@dataclass(frozen=True)
class ChunkRef:
    """Manifest-side description of one chunk file."""

    chunk_id: str  # 32 hex chars (blake2b-128)
    dtype: str  # numpy dtype ``.str`` (e.g. "<f4", "|u1")
    shape: Tuple[int, ...]
    nbytes: int
    crc32: int

    def to_json(self) -> dict:
        return {
            "chunk": self.chunk_id,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "nbytes": self.nbytes,
            "crc32": self.crc32,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "ChunkRef":
        try:
            return cls(
                chunk_id=str(obj["chunk"]),
                dtype=str(obj["dtype"]),
                shape=tuple(int(s) for s in obj["shape"]),
                nbytes=int(obj["nbytes"]),
                crc32=int(obj["crc32"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotIntegrityError(f"malformed chunk ref: {obj!r}") from exc


def chunk_path(root: Path, chunk_id: str) -> Path:
    return Path(root) / CHUNK_DIR / f"{chunk_id}{CHUNK_SUFFIX}"


def _as_payload(array: np.ndarray) -> np.ndarray:
    array = np.ascontiguousarray(array)
    if array.ndim > MAX_NDIM:
        raise ValueError(f"chunk payloads support ndim <= {MAX_NDIM}, got {array.ndim}")
    return array


def content_id(array: np.ndarray) -> str:
    """Content address of an array: blake2b-128 over dtype, shape, payload."""
    array = _as_payload(array)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(array.dtype.str.encode("ascii"))
    digest.update(np.asarray(array.shape, dtype=np.uint64).tobytes())
    digest.update(array.tobytes())
    return digest.hexdigest()


def _pack_header(array: np.ndarray, chunk_id: str, payload_crc: int) -> bytes:
    shape = list(array.shape) + [0] * (MAX_NDIM - array.ndim)
    header = _HEADER.pack(
        MAGIC,
        FORMAT_VERSION,
        0,
        payload_crc,
        array.nbytes,
        array.dtype.str.encode("ascii"),
        array.ndim,
        *shape,
        bytes.fromhex(chunk_id),
        0,
    )
    header_crc = zlib.crc32(header[:_HEADER_CRC_OFFSET])
    return (
        header[:_HEADER_CRC_OFFSET]
        + struct.pack("<I", header_crc)
        + header[_HEADER_CRC_OFFSET + 4 :]
    )


def fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_bytes_atomic(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via temp file + ``os.replace`` + fsync."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".tmp-{os.getpid()}-{path.name}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    fsync_dir(path.parent)


def write_chunk(root: Path, array: np.ndarray) -> Tuple[ChunkRef, bool]:
    """Persist ``array`` as a content-addressed chunk under ``root``.

    Returns ``(ref, written)`` — ``written`` is False when an identical
    chunk already existed on disk (the delta-publish fast path).
    """
    array = _as_payload(array)
    chunk_id = content_id(array)
    payload_crc = zlib.crc32(array.tobytes())
    ref = ChunkRef(
        chunk_id=chunk_id,
        dtype=array.dtype.str,
        shape=tuple(int(s) for s in array.shape),
        nbytes=int(array.nbytes),
        crc32=payload_crc,
    )
    path = chunk_path(root, chunk_id)
    if path.exists():
        return ref, False
    write_bytes_atomic(path, _pack_header(array, chunk_id, payload_crc) + array.tobytes())
    return ref, True


def open_chunk(root: Path, ref: ChunkRef, *, verify: bool = True) -> np.ndarray:
    """mmap a chunk read-only and return a zero-copy ndarray view.

    Raises :class:`SnapshotIntegrityError` when the chunk is missing,
    truncated, or fails any checksum / header cross-check against ``ref``.
    """
    path = chunk_path(root, ref.chunk_id)
    try:
        with open(path, "rb") as handle:
            buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except FileNotFoundError as exc:
        raise SnapshotIntegrityError(
            f"manifest points at missing chunk {ref.chunk_id} ({path})"
        ) from exc
    except ValueError as exc:  # zero-byte file cannot be mapped
        raise SnapshotIntegrityError(f"chunk {ref.chunk_id} is empty ({path})") from exc
    try:
        return _view_chunk(buffer, ref, path, verify=verify)
    except SnapshotError:
        buffer.close()
        raise


def _view_chunk(
    buffer: mmap.mmap, ref: ChunkRef, path: Path, *, verify: bool
) -> np.ndarray:
    if len(buffer) < HEADER_SIZE:
        raise SnapshotIntegrityError(f"chunk {ref.chunk_id} truncated mid-header ({path})")
    fields = _HEADER.unpack(buffer[:HEADER_SIZE])
    magic, version, _flags, payload_crc, nbytes, dtype_raw, ndim = fields[:7]
    shape_raw = fields[7 : 7 + MAX_NDIM]
    chunk_id_raw, header_crc = fields[-2], fields[-1]
    if magic != MAGIC:
        raise SnapshotIntegrityError(f"chunk {ref.chunk_id} has bad magic ({path})")
    if version != FORMAT_VERSION:
        raise SnapshotIntegrityError(
            f"chunk {ref.chunk_id} has unsupported format version {version}"
        )
    if zlib.crc32(buffer[:_HEADER_CRC_OFFSET]) != header_crc:
        raise SnapshotIntegrityError(f"chunk {ref.chunk_id} header checksum mismatch")
    dtype = dtype_raw.rstrip(b"\x00").decode("ascii")
    shape = tuple(int(s) for s in shape_raw[:ndim])
    if (
        chunk_id_raw.hex() != ref.chunk_id
        or dtype != ref.dtype
        or shape != ref.shape
        or int(nbytes) != ref.nbytes
        or int(payload_crc) != ref.crc32
    ):
        raise SnapshotIntegrityError(
            f"chunk {ref.chunk_id} header disagrees with its manifest entry"
        )
    if len(buffer) != HEADER_SIZE + nbytes:
        raise SnapshotIntegrityError(
            f"chunk {ref.chunk_id} truncated: expected {HEADER_SIZE + nbytes} bytes, "
            f"found {len(buffer)}"
        )
    if verify:
        payload = memoryview(buffer)[HEADER_SIZE:]
        try:
            actual_crc = zlib.crc32(payload)
        finally:
            payload.release()
        if actual_crc != payload_crc:
            raise SnapshotIntegrityError(
                f"chunk {ref.chunk_id} payload checksum mismatch"
            )
    array = np.frombuffer(buffer, dtype=np.dtype(dtype), count=-1, offset=HEADER_SIZE)
    return array.reshape(shape)


def verify_chunk_bytes(raw: bytes, ref: ChunkRef, *, source: str = "<wire>") -> np.ndarray:
    """Validate one chunk held fully in memory against its manifest ref.

    Runs the exact header/checksum/cross-check pipeline :func:`open_chunk`
    applies to an mmapped file, but over a byte string — this is what the
    replication fetcher uses to verify a chunk *as it arrives off the
    wire*, before the bytes are allowed to land in the local chunk store.
    Returns the decoded array view; raises :class:`SnapshotIntegrityError`
    on any damage (truncation, bit flip, header/manifest disagreement).
    """
    return _view_chunk(raw, ref, Path(source), verify=True)


def write_array_chunks(
    root: Path, array: np.ndarray, *, rows_per_chunk: Optional[int] = None
) -> Tuple[list, int, int]:
    """Write an array as one chunk, or as row blocks of ``rows_per_chunk``.

    Returns ``(refs, chunks_written, bytes_written)``.  Row-chunking only
    applies to arrays with >= 1 dim; 0-d arrays always get a single chunk.
    """
    array = _as_payload(array)
    if rows_per_chunk is None or array.ndim == 0 or array.shape[0] <= rows_per_chunk:
        blocks = [array]
    else:
        blocks = [
            array[lo : lo + rows_per_chunk]
            for lo in range(0, array.shape[0], rows_per_chunk)
        ]
    refs, written, nbytes = [], 0, 0
    for block in blocks:
        ref, was_written = write_chunk(root, block)
        refs.append(ref)
        if was_written:
            written += 1
            nbytes += ref.nbytes
    return refs, written, nbytes


def open_array(root: Path, refs: Sequence[ChunkRef], *, verify: bool = True) -> np.ndarray:
    """Reassemble an array from its chunk refs.

    A single-chunk array comes back as a zero-copy mmap view; a row-chunked
    array is concatenated (one copy) since callers need one contiguous table.
    """
    views = [open_chunk(root, ref, verify=verify) for ref in refs]
    if len(views) == 1:
        return views[0]
    return np.concatenate(views, axis=0)


def read_rows(
    root: Path,
    refs: Sequence[ChunkRef],
    lo: int,
    hi: int,
    *,
    verify: bool = True,
) -> np.ndarray:
    """Materialise rows ``[lo, hi)`` of a row-chunked array.

    Only chunks overlapping the range are opened (and therefore verified),
    which is what lets a shard worker hydrate its slice without paying for
    the whole table.
    """
    if not refs:
        raise SnapshotIntegrityError("array has no chunks")
    if lo < 0 or hi < lo:
        raise ValueError(f"bad row range [{lo}, {hi})")
    pieces = []
    offset = 0
    for ref in refs:
        rows = ref.shape[0] if ref.shape else 0
        lo_here = max(lo, offset)
        hi_here = min(hi, offset + rows)
        if lo_here < hi_here:
            view = open_chunk(root, ref, verify=verify)
            pieces.append(view[lo_here - offset : hi_here - offset])
        offset += rows
    if hi > offset:
        raise SnapshotIntegrityError(
            f"row range [{lo}, {hi}) exceeds array length {offset}"
        )
    if not pieces:
        first = open_chunk(root, refs[0], verify=verify)
        return first[:0]
    if len(pieces) == 1:
        return pieces[0]
    return np.concatenate(pieces, axis=0)
