"""Serving telemetry: QPS, latency percentiles, cache and recall tracking.

The gateway records one sample per answered request (latency, cache
hit/miss), one sample per dispatched batch (its size), every hot-swap, and
the latest ANN recall probe.  :meth:`GatewayTelemetry.summary` condenses
those into the numbers the bench and the example report: QPS, p50/p95/p99
latency in milliseconds, cache hit rate, mean batch size and recall@K.

The sharded tier adds a per-shard dimension: every scattered micro-batch
records one :meth:`GatewayTelemetry.record_shard` sample per worker (shard
wall time, queries scored, candidates contributed to the gather), and
:meth:`GatewayTelemetry.shard_rows` condenses them into per-shard
latency/QPS breakdowns whose totals add up to the gateway-level counters.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

import numpy as np


class GatewayTelemetry:
    """Mutable counters and reservoirs behind the gateway's metrics.

    Recording is lock-protected: with the background scheduler thread
    running, ``record_*`` can race a producer thread's full-batch dispatch,
    and the ``+=`` read-modify-writes would silently drop counts.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        self._started_at: Optional[float] = None
        self._last_request_at: Optional[float] = None
        self.latencies_s: List[float] = []
        self.batch_sizes: List[int] = []
        self.cache_hits = 0
        self.cache_misses = 0
        self.backend_queries = 0
        self.swaps = 0
        self.last_swap_version: Optional[int] = None
        self.recall_at_k: Optional[float] = None
        self.recall_k: Optional[int] = None
        self.shard_latencies_s: Dict[int, List[float]] = {}
        self.shard_queries: Dict[int, int] = {}
        self.shard_candidates: Dict[int, int] = {}
        self.gathered_candidates = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_request(self, latency_s: float, cache_hit: bool) -> None:
        now = self._clock()
        with self._lock:
            if self._started_at is None:
                self._started_at = now - latency_s
            self._last_request_at = now
            self.latencies_s.append(float(latency_s))
            if cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def record_batch(self, size: int, backend_queries: int) -> None:
        with self._lock:
            self.batch_sizes.append(int(size))
            self.backend_queries += int(backend_queries)

    def record_swap(self, version: int) -> None:
        with self._lock:
            self.swaps += 1
            self.last_swap_version = int(version)

    def record_recall(self, recall: float, k: int) -> None:
        with self._lock:
            self.recall_at_k = float(recall)
            self.recall_k = int(k)

    def record_shard(self, shard: int, latency_s: float, queries: int,
                     candidates: int) -> None:
        """One shard's share of one scattered micro-batch.

        ``queries`` is how many backend queries the shard scored (every
        shard scores the whole de-duplicated batch) and ``candidates`` how
        many real top-K entries it contributed to the gather, so summing
        either across shards reproduces the gateway-level totals.
        """
        shard = int(shard)
        with self._lock:
            self.shard_latencies_s.setdefault(shard, []).append(float(latency_s))
            self.shard_queries[shard] = self.shard_queries.get(shard, 0) + int(queries)
            self.shard_candidates[shard] = (
                self.shard_candidates.get(shard, 0) + int(candidates)
            )
            self.gathered_candidates += int(candidates)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    @property
    def requests(self) -> int:
        return len(self.latencies_s)

    @property
    def elapsed_s(self) -> float:
        if self._started_at is None or self._last_request_at is None:
            return 0.0
        return max(self._last_request_at - self._started_at, 1e-12)

    @property
    def qps(self) -> float:
        return self.requests / self.elapsed_s if self.requests else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def latency_ms(self, percentile: float) -> float:
        if not self.latencies_s:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies_s), percentile) * 1e3)

    @property
    def num_shards(self) -> int:
        """Shards that recorded at least one scatter sample (0 = unsharded)."""
        return len(self.shard_latencies_s)

    def shard_rows(self) -> List[Dict[str, float]]:
        """Per-shard latency/QPS breakdown rows (one dict per shard).

        ``busy_s`` is the shard's summed scan wall time; ``qps`` relates the
        queries it scored to that busy time, so near-uniform shard layouts
        (the balanced IVF-PQ cells) show up as near-uniform rows.
        """
        with self._lock:
            shards = sorted(self.shard_latencies_s)
            rows = []
            for shard in shards:
                latencies = np.asarray(self.shard_latencies_s[shard])
                busy_s = float(latencies.sum())
                queries = self.shard_queries.get(shard, 0)
                rows.append({
                    "shard": float(shard),
                    "batches": float(latencies.size),
                    "queries": float(queries),
                    "candidates": float(self.shard_candidates.get(shard, 0)),
                    "busy_s": busy_s,
                    "qps": queries / busy_s if busy_s > 0 else 0.0,
                    "p50_ms": float(np.percentile(latencies, 50) * 1e3),
                    "p95_ms": float(np.percentile(latencies, 95) * 1e3),
                })
            return rows

    def summary(self) -> Dict[str, float]:
        """One flat dict of the headline serving metrics."""
        mean_batch = float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0
        return {
            "requests": float(self.requests),
            "qps": self.qps,
            "p50_ms": self.latency_ms(50),
            "p95_ms": self.latency_ms(95),
            "p99_ms": self.latency_ms(99),
            "cache_hit_rate": self.cache_hit_rate,
            "mean_batch_size": mean_batch,
            "backend_queries": float(self.backend_queries),
            "hot_swaps": float(self.swaps),
            "recall_at_k": float("nan") if self.recall_at_k is None else self.recall_at_k,
            "gathered_candidates": float(self.gathered_candidates),
        }
