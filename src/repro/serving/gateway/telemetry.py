"""Serving telemetry: QPS, latency percentiles, cache and recall tracking.

The gateway records one sample per answered request (latency, cache
hit/miss), one sample per dispatched batch (its size), every hot-swap, and
the latest ANN recall probe.  :meth:`GatewayTelemetry.summary` condenses
those into the numbers the bench and the example report: QPS, p50/p95/p99
latency in milliseconds, cache hit rate, mean batch size and recall@K.

The sharded tier adds a per-shard dimension: every scattered micro-batch
records one :meth:`GatewayTelemetry.record_shard` sample per worker (shard
wall time, queries scored, candidates contributed to the gather), and
:meth:`GatewayTelemetry.shard_rows` condenses them into per-shard
latency/QPS breakdowns whose totals add up to the gateway-level counters.

The asyncio-native request path adds the loop-front-end dimension: queue
depth at admission (the backpressure signal), overload rejections and
deadline misses (the two ways a request is shed before scoring), cancelled
requests, and event-loop lag (how late the drive task's deadline sleeps
fire — the canary for CPU work blocking the loop).

The experimentation tier (:mod:`repro.serving.abtest`) adds a *bucket*
dimension: a request may carry a tag (its experiment bucket), every
``record_request`` / shed event is then also attributed to that tag, and
:meth:`GatewayTelemetry.bucket_rows` condenses the tagged samples into
per-bucket QPS / latency-percentile / shed-count breakdowns whose totals
add up to the gateway-level counters — serving cost becomes observable per
experiment arm, not just per gateway.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from typing import Callable, Dict, List, Optional

import numpy as np


class GatewayTelemetry:
    """Mutable counters and reservoirs behind the gateway's metrics.

    ``thread_safe=True`` (the default) lock-protects every ``record_*``:
    with the background scheduler thread running, recording can race a
    producer thread's full-batch dispatch, and the ``+=``
    read-modify-writes would silently drop counts.  The asyncio-native
    gateway confines all recording to one event loop, where the lock is
    per-request overhead for nothing; ``thread_safe=False`` swaps it for a
    no-op :func:`~contextlib.nullcontext`.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 thread_safe: bool = True) -> None:
        self._clock = clock
        self._lock = threading.Lock() if thread_safe else nullcontext()
        self.reset()

    def reset(self) -> None:
        self._started_at: Optional[float] = None
        self._last_request_at: Optional[float] = None
        self.latencies_s: List[float] = []
        self.batch_sizes: List[int] = []
        self.cache_hits = 0
        self.cache_misses = 0
        self.backend_queries = 0
        self.swaps = 0
        self.last_swap_version: Optional[int] = None
        self.recall_at_k: Optional[float] = None
        self.recall_k: Optional[int] = None
        self.shard_latencies_s: Dict[int, List[float]] = {}
        self.shard_queries: Dict[int, int] = {}
        self.shard_candidates: Dict[int, int] = {}
        self.tag_latencies_s: Dict[str, List[float]] = {}
        self.tag_cache_hits: Dict[str, int] = {}
        self.tag_first_at: Dict[str, float] = {}
        self.tag_last_at: Dict[str, float] = {}
        self.tag_overloads: Dict[str, int] = {}
        self.tag_deadline_misses: Dict[str, int] = {}
        self.tag_cancelled: Dict[str, int] = {}
        self.gathered_candidates = 0
        self.overload_rejections = 0
        self.deadline_misses = 0
        self.cancelled_requests = 0
        self.queue_depth_sum = 0
        self.queue_depth_samples = 0
        self.queue_depth_max = 0
        self.loop_lag_s_sum = 0.0
        self.loop_lag_s_max = 0.0
        self.loop_lag_samples = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_request(self, latency_s: float, cache_hit: bool,
                       tag: Optional[str] = None) -> None:
        now = self._clock()
        with self._lock:
            if self._started_at is None:
                self._started_at = now - latency_s
            self._last_request_at = now
            self.latencies_s.append(float(latency_s))
            if cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            if tag is not None:
                self.tag_latencies_s.setdefault(tag, []).append(float(latency_s))
                if cache_hit:
                    self.tag_cache_hits[tag] = self.tag_cache_hits.get(tag, 0) + 1
                self.tag_first_at.setdefault(tag, now - latency_s)
                self.tag_last_at[tag] = now

    def record_batch(self, size: int, backend_queries: int) -> None:
        with self._lock:
            self.batch_sizes.append(int(size))
            self.backend_queries += int(backend_queries)

    def record_swap(self, version: int) -> None:
        with self._lock:
            self.swaps += 1
            self.last_swap_version = int(version)

    def record_recall(self, recall: float, k: int) -> None:
        with self._lock:
            self.recall_at_k = float(recall)
            self.recall_k = int(k)

    def record_shard(self, shard: int, latency_s: float, queries: int,
                     candidates: int) -> None:
        """One shard's share of one scattered micro-batch.

        ``queries`` is how many backend queries the shard scored (every
        shard scores the whole de-duplicated batch) and ``candidates`` how
        many real top-K entries it contributed to the gather, so summing
        either across shards reproduces the gateway-level totals.
        """
        shard = int(shard)
        with self._lock:
            self.shard_latencies_s.setdefault(shard, []).append(float(latency_s))
            self.shard_queries[shard] = self.shard_queries.get(shard, 0) + int(queries)
            self.shard_candidates[shard] = (
                self.shard_candidates.get(shard, 0) + int(candidates)
            )
            self.gathered_candidates += int(candidates)

    # Loop-front-end events (admission control, deadlines, the drive task).
    def record_overload(self, tag: Optional[str] = None) -> None:
        with self._lock:
            self.overload_rejections += 1
            if tag is not None:
                self.tag_overloads[tag] = self.tag_overloads.get(tag, 0) + 1

    def record_deadline_miss(self, tag: Optional[str] = None) -> None:
        with self._lock:
            self.deadline_misses += 1
            if tag is not None:
                self.tag_deadline_misses[tag] = (
                    self.tag_deadline_misses.get(tag, 0) + 1
                )

    def record_cancelled(self, tag: Optional[str] = None) -> None:
        with self._lock:
            self.cancelled_requests += 1
            if tag is not None:
                self.tag_cancelled[tag] = self.tag_cancelled.get(tag, 0) + 1

    def record_queue_depth(self, depth: int) -> None:
        """Queue depth observed at one admission (scalar running stats)."""
        depth = int(depth)
        with self._lock:
            self.queue_depth_sum += depth
            self.queue_depth_samples += 1
            if depth > self.queue_depth_max:
                self.queue_depth_max = depth

    def record_loop_lag(self, lag_s: float) -> None:
        """How late one deadline sleep fired (event-loop scheduling lag)."""
        lag_s = float(lag_s)
        with self._lock:
            self.loop_lag_s_sum += lag_s
            self.loop_lag_samples += 1
            if lag_s > self.loop_lag_s_max:
                self.loop_lag_s_max = lag_s

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    @property
    def requests(self) -> int:
        return len(self.latencies_s)

    @property
    def elapsed_s(self) -> float:
        if self._started_at is None or self._last_request_at is None:
            return 0.0
        return max(self._last_request_at - self._started_at, 1e-12)

    @property
    def qps(self) -> float:
        return self.requests / self.elapsed_s if self.requests else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def queue_depth_mean(self) -> float:
        if not self.queue_depth_samples:
            return 0.0
        return self.queue_depth_sum / self.queue_depth_samples

    @property
    def loop_lag_mean_s(self) -> float:
        if not self.loop_lag_samples:
            return 0.0
        return self.loop_lag_s_sum / self.loop_lag_samples

    def latency_ms(self, percentile: float) -> float:
        if not self.latencies_s:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies_s), percentile) * 1e3)

    @property
    def num_shards(self) -> int:
        """Shards that recorded at least one scatter sample (0 = unsharded)."""
        return len(self.shard_latencies_s)

    def shard_rows(self) -> List[Dict[str, float]]:
        """Per-shard latency/QPS breakdown rows (one dict per shard).

        ``busy_s`` is the shard's summed scan wall time; ``qps`` relates the
        queries it scored to that busy time, so near-uniform shard layouts
        (the balanced IVF-PQ cells) show up as near-uniform rows.
        """
        with self._lock:
            shards = sorted(self.shard_latencies_s)
            rows = []
            for shard in shards:
                latencies = np.asarray(self.shard_latencies_s[shard])
                busy_s = float(latencies.sum())
                queries = self.shard_queries.get(shard, 0)
                rows.append({
                    "shard": float(shard),
                    "batches": float(latencies.size),
                    "queries": float(queries),
                    "candidates": float(self.shard_candidates.get(shard, 0)),
                    "busy_s": busy_s,
                    "qps": queries / busy_s if busy_s > 0 else 0.0,
                    "p50_ms": float(np.percentile(latencies, 50) * 1e3),
                    "p95_ms": float(np.percentile(latencies, 95) * 1e3),
                })
            return rows

    def _tags_unlocked(self) -> List[str]:
        """Every tag with at least one event; caller must hold the lock."""
        seen = set(self.tag_latencies_s)
        seen.update(self.tag_overloads, self.tag_deadline_misses,
                    self.tag_cancelled)
        return sorted(seen)

    @property
    def tags(self) -> List[str]:
        """Every tag that recorded at least one event (sorted)."""
        with self._lock:
            return self._tags_unlocked()

    def bucket_rows(self) -> List[Dict[str, float]]:
        """Per-tag (experiment-bucket) serving-cost rows, one dict per tag.

        A tag's ``qps`` relates its answered requests to the span between
        its own first and last request, so two buckets sharing one gateway
        report the rates *their* traffic actually sustained.  Summing
        ``requests`` / ``deadline_misses`` / ``overload_rejections`` /
        ``cancelled`` across rows reproduces the gateway-level counters
        whenever every request carried a tag.
        """
        with self._lock:
            rows = []
            for tag in self._tags_unlocked():
                latencies = np.asarray(self.tag_latencies_s.get(tag, ()),
                                       dtype=np.float64)
                if latencies.size:
                    span = max(self.tag_last_at[tag] - self.tag_first_at[tag],
                               1e-12)
                    qps = latencies.size / span
                    p50, p95, p99 = (
                        float(np.percentile(latencies, pct) * 1e3)
                        for pct in (50, 95, 99)
                    )
                else:
                    qps = 0.0
                    p50 = p95 = p99 = float("nan")
                hits = self.tag_cache_hits.get(tag, 0)
                rows.append({
                    "bucket": tag,
                    "requests": float(latencies.size),
                    "qps": qps,
                    "p50_ms": p50,
                    "p95_ms": p95,
                    "p99_ms": p99,
                    "cache_hit_rate": hits / latencies.size if latencies.size else 0.0,
                    "deadline_misses": float(self.tag_deadline_misses.get(tag, 0)),
                    "overload_rejections": float(self.tag_overloads.get(tag, 0)),
                    "cancelled_requests": float(self.tag_cancelled.get(tag, 0)),
                })
            return rows

    def summary(self) -> Dict[str, float]:
        """One flat dict of the headline serving metrics."""
        mean_batch = float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0
        return {
            "requests": float(self.requests),
            "qps": self.qps,
            "p50_ms": self.latency_ms(50),
            "p95_ms": self.latency_ms(95),
            "p99_ms": self.latency_ms(99),
            "cache_hit_rate": self.cache_hit_rate,
            "mean_batch_size": mean_batch,
            "backend_queries": float(self.backend_queries),
            "hot_swaps": float(self.swaps),
            "recall_at_k": float("nan") if self.recall_at_k is None else self.recall_at_k,
            "gathered_candidates": float(self.gathered_candidates),
            "overload_rejections": float(self.overload_rejections),
            "deadline_misses": float(self.deadline_misses),
            "cancelled_requests": float(self.cancelled_requests),
            "queue_depth_mean": float(self.queue_depth_mean),
            "queue_depth_max": float(self.queue_depth_max),
            "loop_lag_mean_ms": float(self.loop_lag_mean_s * 1e3),
            "loop_lag_max_ms": float(self.loop_lag_s_max * 1e3),
        }
