"""Serving telemetry: bounded histograms, QPS, cache and recall tracking.

The gateway records one sample per answered request (latency, cache
hit/miss), one sample per dispatched batch (its size), every hot-swap, and
the latest ANN recall probe.  :meth:`GatewayTelemetry.summary` condenses
those into the numbers the bench and the example report: QPS, p50/p95/p99
latency in milliseconds, cache hit rate, mean batch size and recall@K.

Everything is built on :mod:`repro.serving.obs.metrics`: latencies land in
fixed-boundary log-bucketed histograms, totals in counters, so memory is
O(buckets) regardless of traffic — ten million requests cost the same as
ten — and ``summary()`` never re-sorts request history.  Percentiles are
bucket-interpolated with a bounded relative error
(:data:`~repro.serving.obs.metrics.RELATIVE_ERROR_BOUND`, ≈ 15.5% at the
default 16 buckets/decade) against the nearest-rank order statistic.

The sharded tier adds a per-shard dimension: every scattered micro-batch
records one :meth:`GatewayTelemetry.record_shard` sample per worker (shard
wall time, queries scored, candidates contributed to the gather), and
:meth:`GatewayTelemetry.shard_rows` condenses them into per-shard
latency/QPS breakdowns whose totals add up to the gateway-level counters.

The asyncio-native request path adds the loop-front-end dimension: queue
depth at admission (the backpressure signal), overload rejections and
deadline misses (the two ways a request is shed before scoring), cancelled
requests, and event-loop lag (how late the drive task's deadline sleeps
fire — the canary for CPU work blocking the loop).

The experimentation tier (:mod:`repro.serving.abtest`) adds a *bucket*
dimension: a request may carry a tag (its experiment bucket), every
``record_request`` / shed event is then also attributed to that tag, and
:meth:`GatewayTelemetry.bucket_rows` condenses the tagged samples into
per-bucket QPS / latency-percentile / shed-count breakdowns whose totals
add up to the gateway-level counters.  Distinct tags and shards are capped
(``max_tags`` / ``max_shards``): past the cap, new keys collapse into one
explicit ``__overflow__`` row so totals stay exact while cardinality stays
bounded.

Two export surfaces carry the same numbers as ``summary()``:
:meth:`GatewayTelemetry.export_prometheus` (text exposition) and
:meth:`GatewayTelemetry.export_json`; :meth:`GatewayTelemetry.health`
condenses the fleet-router signal into a
:class:`~repro.serving.obs.health.HealthSnapshot` cheap enough to poll
per-request.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import nullcontext
from typing import Callable, Dict, List, Optional

from repro.serving.obs.health import HealthSnapshot
from repro.serving.obs.metrics import (
    DEFAULT_LATENCY_BOUNDARIES,
    OVERFLOW_LABEL,
    POW2_BOUNDARIES,
    MetricsRegistry,
)

#: Shard id reported for the overflow row once ``max_shards`` is exceeded.
OVERFLOW_SHARD = -1


class GatewayTelemetry:
    """Bounded counters and histograms behind the gateway's metrics.

    ``thread_safe=True`` (the default) lock-protects every ``record_*``:
    with the background scheduler thread running, recording can race a
    producer thread's full-batch dispatch, and the ``+=``
    read-modify-writes would silently drop counts.  The asyncio-native
    gateway confines all recording to one event loop, where the lock is
    per-request overhead for nothing; ``thread_safe=False`` swaps it for a
    no-op :func:`~contextlib.nullcontext`.

    ``enabled=False`` turns every ``record_*`` into an early return — the
    telemetry-off baseline the obs-overhead bench gate compares against.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        thread_safe: bool = True,
        enabled: bool = True,
        max_tags: int = 64,
        max_shards: int = 256,
        latency_boundaries=None,
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock() if thread_safe else nullcontext()
        self.enabled = enabled
        self.max_tags = max_tags
        self.max_shards = max_shards
        self._latency_boundaries = (
            DEFAULT_LATENCY_BOUNDARIES
            if latency_boundaries is None
            else tuple(latency_boundaries)
        )
        self.reset()

    def reset(self) -> None:
        self._started_at: Optional[float] = None
        self._last_request_at: Optional[float] = None
        registry = MetricsRegistry()
        self.registry = registry
        bounds = self._latency_boundaries
        self._latency = registry.histogram(
            "gateway_request_latency_seconds",
            help="End-to-end latency of answered requests.",
            boundaries=bounds,
        )
        self._batch_size = registry.histogram(
            "gateway_batch_size",
            help="Dispatched micro-batch sizes.",
            boundaries=POW2_BOUNDARIES,
        )
        self._queue_depth = registry.histogram(
            "gateway_queue_depth",
            help="Queue depth observed at admission.",
            boundaries=POW2_BOUNDARIES,
        )
        self._loop_lag = registry.histogram(
            "gateway_loop_lag_seconds",
            help="How late the drive task's deadline sleeps fired.",
            boundaries=bounds,
        )
        self._cache_hits = registry.counter(
            "gateway_cache_hits_total", help="Result-cache hits."
        )
        self._cache_misses = registry.counter(
            "gateway_cache_misses_total", help="Result-cache misses."
        )
        self._backend_queries = registry.counter(
            "gateway_backend_queries_total",
            help="De-duplicated queries scored by the backend.",
        )
        self._swaps = registry.counter(
            "gateway_hot_swaps_total", help="Store versions activated."
        )
        self._gathered = registry.counter(
            "gateway_gathered_candidates_total",
            help="Real top-K entries gathered across shards.",
        )
        self._shortlist_candidates = registry.counter(
            "gateway_shortlist_candidates_total",
            help="Refinement candidates the static shortlist would re-score.",
        )
        self._shortlist_kept = registry.counter(
            "gateway_shortlist_kept_total",
            help="Refinement candidates kept after the adaptive shrink.",
        )
        self._overloads = registry.counter(
            "gateway_overload_rejections_total",
            help="Requests shed by admission control.",
        )
        self._deadline_misses = registry.counter(
            "gateway_deadline_misses_total",
            help="Requests shed by deadline expiry before scoring.",
        )
        self._cancelled = registry.counter(
            "gateway_cancelled_requests_total",
            help="Requests cancelled by the caller before scoring.",
        )
        self._tag_latency = registry.family(
            "histogram",
            "gateway_bucket_latency_seconds",
            help="Per-experiment-bucket request latency.",
            label_names=("bucket",),
            boundaries=bounds,
        )
        self._tag_hits = registry.family(
            "counter",
            "gateway_bucket_cache_hits_total",
            label_names=("bucket",),
        )
        self._tag_overloads = registry.family(
            "counter",
            "gateway_bucket_overload_rejections_total",
            label_names=("bucket",),
        )
        self._tag_deadline_misses = registry.family(
            "counter",
            "gateway_bucket_deadline_misses_total",
            label_names=("bucket",),
        )
        self._tag_cancelled = registry.family(
            "counter",
            "gateway_bucket_cancelled_requests_total",
            label_names=("bucket",),
        )
        self._shard_latency = registry.family(
            "histogram",
            "gateway_shard_latency_seconds",
            help="Per-shard scatter wall time.",
            label_names=("shard",),
            boundaries=bounds,
        )
        self._shard_queries = registry.family(
            "counter",
            "gateway_shard_queries_total",
            label_names=("shard",),
        )
        self._shard_candidates = registry.family(
            "counter",
            "gateway_shard_candidates_total",
            label_names=("shard",),
        )
        self.last_swap_version: Optional[int] = None
        self.recall_at_k: Optional[float] = None
        self.recall_k: Optional[int] = None
        # Bounded key interners: one admission decision shared by every
        # per-tag / per-shard family, so a capped tag lands in the same
        # overflow row everywhere.
        self._tag_keys: Dict[str, str] = {}
        self._shard_keys: Dict[int, int] = {}
        self.tag_first_at: Dict[str, float] = {}
        self.tag_last_at: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Bounded key admission
    # ------------------------------------------------------------------ #
    def _tag_key(self, tag: str) -> str:
        key = self._tag_keys.get(tag)
        if key is None:
            key = tag if len(self._tag_keys) < self.max_tags else OVERFLOW_LABEL
            self._tag_keys[tag] = key
        return key

    def _shard_key(self, shard: int) -> int:
        key = self._shard_keys.get(shard)
        if key is None:
            key = (
                shard
                if len(self._shard_keys) < self.max_shards
                else OVERFLOW_SHARD
            )
            self._shard_keys[shard] = key
        return key

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_request(
        self, latency_s: float, cache_hit: bool, tag: Optional[str] = None
    ) -> None:
        if not self.enabled:
            return
        now = self._clock()
        with self._lock:
            if self._started_at is None:
                self._started_at = now - latency_s
            self._last_request_at = now
            self._latency.observe(latency_s)
            if cache_hit:
                self._cache_hits.inc()
            else:
                self._cache_misses.inc()
            if tag is not None:
                key = self._tag_key(tag)
                self._tag_latency.labels(key).observe(latency_s)
                if cache_hit:
                    self._tag_hits.labels(key).inc()
                self.tag_first_at.setdefault(key, now - latency_s)
                self.tag_last_at[key] = now

    def record_batch(self, size: int, backend_queries: int) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._batch_size.observe(int(size))
            self._backend_queries.inc(int(backend_queries))

    def record_swap(self, version: int) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._swaps.inc()
            self.last_swap_version = int(version)

    def record_recall(self, recall: float, k: int) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.recall_at_k = float(recall)
            self.recall_k = int(k)

    def record_shard(
        self, shard: int, latency_s: float, queries: int, candidates: int
    ) -> None:
        """One shard's share of one scattered micro-batch.

        ``queries`` is how many backend queries the shard scored (every
        shard scores the whole de-duplicated batch) and ``candidates`` how
        many real top-K entries it contributed to the gather, so summing
        either across shards reproduces the gateway-level totals.
        """
        if not self.enabled:
            return
        shard = int(shard)
        with self._lock:
            key = self._shard_key(shard)
            self._shard_latency.labels(key).observe(latency_s)
            self._shard_queries.labels(key).inc(int(queries))
            self._shard_candidates.labels(key).inc(int(candidates))
            self._gathered.inc(int(candidates))

    def record_shortlist(self, candidates: int, kept: int) -> None:
        """Refinement shortlist counts drained from a quantized index.

        ``candidates`` is what the static ``refine_factor * k`` shortlist
        would have re-scored; ``kept`` is what survived the ADC-margin
        shrink (:meth:`IVFPQIndex.take_shortlist_stats`).  Their ratio is
        the observable saving of the adaptive shrink.
        """
        if not self.enabled:
            return
        with self._lock:
            self._shortlist_candidates.inc(int(candidates))
            self._shortlist_kept.inc(int(kept))

    # Loop-front-end events (admission control, deadlines, the drive task).
    def record_overload(self, tag: Optional[str] = None) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._overloads.inc()
            if tag is not None:
                self._tag_overloads.labels(self._tag_key(tag)).inc()

    def record_deadline_miss(self, tag: Optional[str] = None) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._deadline_misses.inc()
            if tag is not None:
                self._tag_deadline_misses.labels(self._tag_key(tag)).inc()

    def record_cancelled(self, tag: Optional[str] = None) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._cancelled.inc()
            if tag is not None:
                self._tag_cancelled.labels(self._tag_key(tag)).inc()

    def record_queue_depth(self, depth: int) -> None:
        """Queue depth observed at one admission."""
        if not self.enabled:
            return
        with self._lock:
            self._queue_depth.observe(depth)

    def record_loop_lag(self, lag_s: float) -> None:
        """How late one deadline sleep fired (event-loop scheduling lag)."""
        if not self.enabled:
            return
        with self._lock:
            self._loop_lag.observe(float(lag_s))

    # ------------------------------------------------------------------ #
    # Counter views (the pre-histogram attribute surface)
    # ------------------------------------------------------------------ #
    @property
    def cache_hits(self) -> int:
        return self._cache_hits.value

    @property
    def cache_misses(self) -> int:
        return self._cache_misses.value

    @property
    def backend_queries(self) -> int:
        return self._backend_queries.value

    @property
    def swaps(self) -> int:
        return self._swaps.value

    @property
    def gathered_candidates(self) -> int:
        return self._gathered.value

    @property
    def shortlist_candidates(self) -> int:
        return self._shortlist_candidates.value

    @property
    def shortlist_kept(self) -> int:
        return self._shortlist_kept.value

    @property
    def overload_rejections(self) -> int:
        return self._overloads.value

    @property
    def deadline_misses(self) -> int:
        return self._deadline_misses.value

    @property
    def cancelled_requests(self) -> int:
        return self._cancelled.value

    @property
    def queue_depth_samples(self) -> int:
        return self._queue_depth.count

    @property
    def queue_depth_max(self) -> float:
        return self._queue_depth.max if self._queue_depth.count else 0

    @property
    def loop_lag_samples(self) -> int:
        return self._loop_lag.count

    @property
    def loop_lag_s_max(self) -> float:
        return self._loop_lag.max if self._loop_lag.count else 0.0

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    @property
    def requests(self) -> int:
        return self._latency.count

    @property
    def elapsed_s(self) -> float:
        if self._started_at is None or self._last_request_at is None:
            return 0.0
        return max(self._last_request_at - self._started_at, 1e-12)

    @property
    def qps(self) -> float:
        return self.requests / self.elapsed_s if self.requests else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def queue_depth_mean(self) -> float:
        if not self._queue_depth.count:
            return 0.0
        return self._queue_depth.mean

    @property
    def loop_lag_mean_s(self) -> float:
        if not self._loop_lag.count:
            return 0.0
        return self._loop_lag.mean

    def latency_ms(self, percentile: float) -> float:
        """Bucket-interpolated latency percentile in milliseconds."""
        return self._latency.percentile(percentile) * 1e3

    @property
    def num_shards(self) -> int:
        """Shards that recorded at least one scatter sample (0 = unsharded)."""
        return len(self._shard_latency._children)

    def shard_rows(self) -> List[Dict[str, float]]:
        """Per-shard latency/QPS breakdown rows (one dict per shard).

        ``busy_s`` is the shard's summed scan wall time; ``qps`` relates the
        queries it scored to that busy time, so near-uniform shard layouts
        (the balanced IVF-PQ cells) show up as near-uniform rows.  The
        overflow row (shard id :data:`OVERFLOW_SHARD`) absorbs shards past
        the ``max_shards`` cap.
        """
        with self._lock:
            rows = []
            for (label,), hist in self._shard_latency.items():
                shard = (
                    OVERFLOW_SHARD if label == OVERFLOW_LABEL else int(label)
                )
                busy_s = hist.sum
                queries_counter = self._shard_queries.get(label)
                queries = queries_counter.value if queries_counter else 0
                candidates = self._shard_candidates.get(label)
                rows.append(
                    {
                        "shard": float(shard),
                        "batches": float(hist.count),
                        "queries": float(queries),
                        "candidates": float(
                            candidates.value if candidates else 0
                        ),
                        "busy_s": busy_s,
                        "qps": queries / busy_s if busy_s > 0 else 0.0,
                        "p50_ms": hist.percentile(50) * 1e3,
                        "p95_ms": hist.percentile(95) * 1e3,
                    }
                )
            rows.sort(key=lambda row: row["shard"])
            return rows

    def _tags_unlocked(self) -> List[str]:
        """Every tag key with at least one event; caller must hold the lock."""
        seen = {key for (key,), _ in self._tag_latency.items()}
        for family in (
            self._tag_overloads,
            self._tag_deadline_misses,
            self._tag_cancelled,
        ):
            seen.update(key for (key,), _ in family.items())
        return sorted(seen)

    @property
    def tags(self) -> List[str]:
        """Every tag that recorded at least one event (sorted)."""
        with self._lock:
            return self._tags_unlocked()

    def bucket_rows(self) -> List[Dict[str, float]]:
        """Per-tag (experiment-bucket) serving-cost rows, one dict per tag.

        A tag's ``qps`` relates its answered requests to the span between
        its own first and last request, so two buckets sharing one gateway
        report the rates *their* traffic actually sustained.  Summing
        ``requests`` / ``deadline_misses`` / ``overload_rejections`` /
        ``cancelled`` across rows reproduces the gateway-level counters
        whenever every request carried a tag; tags past the ``max_tags``
        cap share one explicit ``__overflow__`` row.
        """
        with self._lock:
            rows = []
            for tag in self._tags_unlocked():
                hist = self._tag_latency.get(tag)
                requests = hist.count if hist else 0
                if requests:
                    span = max(
                        self.tag_last_at[tag] - self.tag_first_at[tag], 1e-12
                    )
                    qps = requests / span
                    p50 = hist.percentile(50) * 1e3
                    p95 = hist.percentile(95) * 1e3
                    p99 = hist.percentile(99) * 1e3
                else:
                    qps = 0.0
                    p50 = p95 = p99 = float("nan")
                hits_counter = self._tag_hits.get(tag)
                hits = hits_counter.value if hits_counter else 0

                def _count(family, key=tag):
                    counter = family.get(key)
                    return float(counter.value if counter else 0)

                rows.append(
                    {
                        "bucket": tag,
                        "requests": float(requests),
                        "qps": qps,
                        "p50_ms": p50,
                        "p95_ms": p95,
                        "p99_ms": p99,
                        "cache_hit_rate": hits / requests if requests else 0.0,
                        "deadline_misses": _count(self._tag_deadline_misses),
                        "overload_rejections": _count(self._tag_overloads),
                        "cancelled_requests": _count(self._tag_cancelled),
                    }
                )
            return rows

    def summary(self) -> Dict[str, float]:
        """One flat dict of the headline serving metrics."""
        mean_batch = self._batch_size.mean if self._batch_size.count else 0.0
        return {
            "requests": float(self.requests),
            "qps": self.qps,
            "p50_ms": self.latency_ms(50),
            "p95_ms": self.latency_ms(95),
            "p99_ms": self.latency_ms(99),
            "cache_hit_rate": self.cache_hit_rate,
            "mean_batch_size": float(mean_batch),
            "backend_queries": float(self.backend_queries),
            "hot_swaps": float(self.swaps),
            "recall_at_k": (
                float("nan") if self.recall_at_k is None else self.recall_at_k
            ),
            "gathered_candidates": float(self.gathered_candidates),
            "shortlist_candidates": float(self.shortlist_candidates),
            "shortlist_kept": float(self.shortlist_kept),
            "overload_rejections": float(self.overload_rejections),
            "deadline_misses": float(self.deadline_misses),
            "cancelled_requests": float(self.cancelled_requests),
            "queue_depth_mean": float(self.queue_depth_mean),
            "queue_depth_max": float(self.queue_depth_max),
            "loop_lag_mean_ms": float(self.loop_lag_mean_s * 1e3),
            "loop_lag_max_ms": float(self.loop_lag_s_max * 1e3),
        }

    # ------------------------------------------------------------------ #
    # Health / exports
    # ------------------------------------------------------------------ #
    def health(self) -> HealthSnapshot:
        """The fleet-router signal, assembled in O(buckets) time."""
        with self._lock:
            requests = self.requests
            overloads = self.overload_rejections
            misses = self.deadline_misses
            cancelled = self.cancelled_requests
            shed = overloads + misses
            offered = requests + shed
            return HealthSnapshot(
                requests=float(requests),
                qps=self.qps,
                p50_ms=self.latency_ms(50),
                p99_ms=self.latency_ms(99),
                queue_depth_mean=float(self.queue_depth_mean),
                queue_depth_max=float(self.queue_depth_max),
                loop_lag_mean_ms=float(self.loop_lag_mean_s * 1e3),
                loop_lag_max_ms=float(self.loop_lag_s_max * 1e3),
                overload_rejections=float(overloads),
                deadline_misses=float(misses),
                cancelled_requests=float(cancelled),
                shed_rate=shed / offered if offered else 0.0,
            )

    def export_prometheus(self) -> str:
        """Prometheus text exposition of every metric family."""
        with self._lock:
            return self.registry.render_prometheus()

    def export_json(self) -> Dict[str, object]:
        """JSON document: raw metric families plus the derived summary.

        The ``metrics`` section carries the same bucket counts and totals
        the text exposition renders; the ``summary`` section repeats
        :meth:`summary` so a scraper can cross-check the derived numbers
        against the raw ones.
        """
        with self._lock:
            metrics = self.registry.to_json()
        doc: Dict[str, object] = {"metrics": metrics, "summary": self.summary()}
        for key, value in doc["summary"].items():
            if isinstance(value, float) and math.isnan(value):
                doc["summary"][key] = None
        return doc
