"""Versioned, shard-aware embedding store with atomic hot-swap.

The production platform (Sec. V-F / Fig. 9) refreshes the exported query and
service embeddings once per day while serving traffic continuously.  The
seed :class:`~repro.serving.embedding_store.EmbeddingStore` mutates its
arrays in place on refresh, which a concurrent reader can observe as a
*torn* read — queries from version ``v`` scored against services from
``v+1``.  This store fixes that:

* every publish builds an immutable :class:`EmbeddingSnapshot` (arrays are
  marked read-only) and swaps a single reference under a lock, so readers
  always see a fully consistent ``(queries, services, version)`` triple;
* service embeddings are split into contiguous shards, the layout a
  multi-process serving tier would use; lookups route ids to shards;
* stale-read protection: each snapshot records its publish time and
  :meth:`VersionedEmbeddingStore.snapshot` can reject snapshots older than
  a staleness budget (the "embeddings must be at most a day old" contract);
* the snapshot dtype is configurable (``float32`` by default — half the
  seed's ``float64`` resident size with no measurable recall impact), and
  the store can additionally publish **quantized service tables** (int8 /
  product-quantized, :mod:`repro.serving.quant`) alongside the fp arrays:
  compressed replicas are built *inside* the snapshot, so they hot-swap
  atomically with the embeddings they mirror and stay row-aligned with the
  shard layout;
* **two-phase publish**: subscribed :class:`SnapshotListener`\\ s (the
  gateway's index builder, the sharded tier's worker pool) get
  ``prepare(snapshot)`` *before* the version flip and ``activate(snapshot)``
  after it.  Every consumer has the new version's search structures ready
  by the time any reader can observe the new version, so a query routed at
  snapshot ``v`` can always be answered entirely at ``v`` — across every
  shard worker — and no request ever sees a mixed-version pairing.

The store is duck-compatible with the seed ``EmbeddingStore`` (``query`` /
``service`` / ``all_services`` / ``refresh`` / ``version``), so the existing
retrievers and :class:`~repro.serving.pipeline.ServingPipeline` work on it
unchanged.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.serving.quant import QUANTIZER_KINDS, quantize_table


class StaleReadError(RuntimeError):
    """Raised when the freshest published snapshot exceeds the staleness budget."""


class StaleVersionError(LookupError):
    """A version-pinned search raced two hot-swaps and its tables are gone.

    Workers retain the current version and its predecessor, so this only
    fires when at least two publishes completed between a batch pinning its
    snapshot and the scatter reaching a worker.  The gateway's request path
    treats it as retryable: re-pin the fresh snapshot and re-execute — the
    batch is then answered entirely at the newer version, never mixed.
    """


class SnapshotListener:
    """Two-phase hot-swap protocol for snapshot consumers.

    ``prepare(snapshot)`` is called while the *previous* version is still
    current: build every search structure the new version needs (indexes,
    shard worker tables) but keep serving the old version.  A raised
    exception aborts the publish — the store keeps the old version and calls
    :meth:`retire` for the aborted one on every listener already prepared.

    ``activate(snapshot)`` is called after the store's reference flip: the
    new version is now the one readers observe, so older versions may be
    retired (workers keep the immediately preceding one for requests that
    pinned it mid-flip).

    ``retire(version)`` drops any state held for ``version`` (abort path).
    """

    def prepare(self, snapshot: "EmbeddingSnapshot") -> None:  # pragma: no cover
        """Build structures for ``snapshot`` without serving it yet."""

    def activate(self, snapshot: "EmbeddingSnapshot") -> None:  # pragma: no cover
        """``snapshot`` is now current; retire versions older than its
        predecessor."""

    def retire(self, version: int) -> None:  # pragma: no cover
        """Drop any state held for an aborted ``version``."""


def _freeze(array: np.ndarray, dtype: np.dtype) -> np.ndarray:
    array = np.array(array, dtype=dtype, copy=True)
    array.setflags(write=False)
    return array


@dataclass(frozen=True)
class EmbeddingSnapshot:
    """One immutable published version of the embedding tables.

    ``quantized`` maps a quantizer kind (``"int8"`` / ``"pq"`` / ``"opq"``)
    to the compressed service table built from exactly this version's ``services``
    matrix — row-aligned with it, so shard ranges and service ids carry
    over unchanged.
    """

    version: int
    published_at: float
    queries: np.ndarray
    services: np.ndarray
    shard_bounds: Tuple[int, ...]  # len = num_shards + 1, contiguous ranges
    quantized: Mapping[str, object] = field(default_factory=dict)
    # Durable location of this version on disk (snapshot.DurableRef), set
    # when the store publishes with a ``durable_dir``.  Consumers use it to
    # hydrate from the manifest instead of shipping arrays over IPC.
    durable: Optional[object] = None

    @property
    def num_queries(self) -> int:
        return self.queries.shape[0]

    @property
    def num_services(self) -> int:
        return self.services.shape[0]

    @property
    def embedding_dim(self) -> int:
        return self.queries.shape[1]

    @property
    def num_shards(self) -> int:
        return len(self.shard_bounds) - 1

    def query(self, query_ids: Sequence[int]) -> np.ndarray:
        return self.queries[np.asarray(query_ids, dtype=np.int64)]

    def service(self, service_ids: Sequence[int]) -> np.ndarray:
        return self.services[np.asarray(service_ids, dtype=np.int64)]

    def all_services(self) -> np.ndarray:
        return self.services

    def quantized_services(self, kind: str):
        """The compressed service table of one published quantizer kind."""
        try:
            return self.quantized[kind]
        except KeyError:
            published = ", ".join(sorted(self.quantized)) or "none"
            raise KeyError(
                f"no {kind!r} table published with snapshot v{self.version} "
                f"(published: {published})"
            ) from None

    def shard_of(self, service_id: int) -> int:
        """Shard index owning ``service_id`` (contiguous range layout)."""
        if not 0 <= service_id < self.num_services:
            raise IndexError(f"service id {service_id} out of range")
        return int(np.searchsorted(self.shard_bounds, service_id, side="right") - 1)

    def shard(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(service_ids, embeddings)`` of one shard (views, zero copy)."""
        lo, hi = self.shard_bounds[index], self.shard_bounds[index + 1]
        return np.arange(lo, hi, dtype=np.int64), self.services[lo:hi]

    def quantized_shard(self, kind: str, index: int):
        """``(service_ids, quantized table view)`` of one shard.

        The compressed tables are row-aligned with ``services``, so a shard
        of codes is the same contiguous row range (zero copy) — what a
        sharded tier would ship to the worker owning that range.
        """
        lo, hi = self.shard_bounds[index], self.shard_bounds[index + 1]
        table = self.quantized_services(kind)
        return np.arange(lo, hi, dtype=np.int64), table.rows(lo, hi)

    def age(self, now: float) -> float:
        return max(0.0, now - self.published_at)


class VersionedEmbeddingStore:
    """Thread-safe store of embedding snapshots with atomic publish.

    ``dtype`` sets the fp snapshot precision (default ``float32``).
    ``quantization`` names the compressed service tables to publish with
    every snapshot (any of ``"int8"`` / ``"pq"`` / ``"opq"``), with
    per-kind parameters in ``quantization_params`` (e.g. ``{"opq":
    {"num_subspaces": 8}}``).  Published int8 tables freeze the global
    query-quantization step from the snapshot's query table, so the
    end-to-end integer scoring path ranks bit-identically on every replica.

    ``keep_last=N`` (with a ``durable_dir``) bounds on-disk retention:
    after each durable publish activates, :func:`~repro.serving.snapshot.
    prune` garbage-collects manifests and chunks beyond the newest ``N``
    versions.
    """

    def __init__(self, query_embeddings: np.ndarray, service_embeddings: np.ndarray,
                 num_shards: int = 1, version: int = 0,
                 dtype: np.dtype = np.float32,
                 quantization: Sequence[str] = (),
                 quantization_params: Optional[Mapping[str, Mapping]] = None,
                 clock: Callable[[], float] = time.monotonic,
                 durable_dir: Optional[str] = None,
                 durable_rows_per_chunk: Optional[int] = None,
                 keep_last: Optional[int] = None) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if keep_last is not None and keep_last < 1:
            raise ValueError("keep_last must be None or >= 1")
        self.num_shards = num_shards
        self.dtype = np.dtype(dtype)
        if not np.issubdtype(self.dtype, np.floating):
            raise ValueError(f"snapshot dtype must be floating, got {self.dtype}")
        self.quantization = tuple(quantization)
        for kind in self.quantization:
            if kind not in QUANTIZER_KINDS:
                known = ", ".join(QUANTIZER_KINDS)
                raise ValueError(f"unknown quantization kind {kind!r} (known: {known})")
        self.quantization_params = {
            kind: dict(params)
            for kind, params in (quantization_params or {}).items()
        }
        unused = set(self.quantization_params) - set(self.quantization)
        if unused:
            raise ValueError(
                f"quantization_params for kinds not being published: "
                f"{sorted(unused)} (quantization={self.quantization})"
            )
        self._clock = clock
        self._lock = threading.Lock()
        self._listeners: List[SnapshotListener] = []
        self.durable_dir = durable_dir
        self.durable_rows_per_chunk = durable_rows_per_chunk
        self.keep_last = keep_last
        initial = self._make_snapshot(query_embeddings, service_embeddings, version)
        if durable_dir is not None:
            initial, _ = self._persist(initial, durable_dir, flip=True)
        self._current = initial

    # ------------------------------------------------------------------ #
    # Two-phase snapshot listeners
    # ------------------------------------------------------------------ #
    def subscribe(self, listener: SnapshotListener) -> None:
        """Register a two-phase hot-swap consumer.

        The listener is immediately prepared + activated for the current
        snapshot, so subscribing and publishing cannot interleave into a
        version the listener never built.
        """
        with self._lock:
            current = self._current
            if listener not in self._listeners:
                listener.prepare(current)
                listener.activate(current)
                self._listeners.append(listener)

    def unsubscribe(self, listener: SnapshotListener) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    # ------------------------------------------------------------------ #
    # Publish (atomic hot-swap)
    # ------------------------------------------------------------------ #
    def _make_snapshot(self, query_embeddings: np.ndarray, service_embeddings: np.ndarray,
                       version: int) -> EmbeddingSnapshot:
        queries = _freeze(query_embeddings, self.dtype)
        services = _freeze(service_embeddings, self.dtype)
        if queries.ndim != 2 or services.ndim != 2:
            raise ValueError("embeddings must be 2-D arrays")
        if queries.shape[1] != services.shape[1]:
            raise ValueError("query and service embeddings must share the same dimensionality")
        shards = min(self.num_shards, max(1, services.shape[0]))
        bounds = tuple(int(b) for b in np.linspace(0, services.shape[0], shards + 1).round())
        quantized = {}
        for kind in self.quantization:
            params = dict(self.quantization_params.get(kind, {}))
            if kind == "int8":
                # Freeze the global query-quantization step into the table:
                # every replica hydrating this version then scores the
                # integer path with the same step (bit-identical ranking).
                params.setdefault("queries", queries)
            quantized[kind] = quantize_table(kind, services, **params)
        return EmbeddingSnapshot(
            version=version,
            published_at=self._clock(),
            queries=queries,
            services=services,
            shard_bounds=bounds,
            quantized=quantized,
        )

    def _persist(self, snapshot: EmbeddingSnapshot, durable_dir: str,
                 *, flip: bool) -> Tuple[EmbeddingSnapshot, object]:
        """Write ``snapshot`` to the chunked on-disk format (delta-aware).

        Returns the snapshot with its :class:`snapshot.DurableRef` attached
        plus the write report.  With ``flip=False`` the version is durable
        but not yet *live* — :meth:`_swap_in` flips the ``MANIFEST``
        pointer at the same moment the in-memory reference flips.
        """
        import dataclasses

        from repro.serving import snapshot as snapshot_io

        report = snapshot_io.write_snapshot(
            snapshot, durable_dir,
            rows_per_chunk=self.durable_rows_per_chunk,
            flip=flip,
            extra_meta={
                "dtype": self.dtype.str,
                "quantization": list(self.quantization),
                "quantization_params": self.quantization_params,
                "rows_per_chunk": self.durable_rows_per_chunk,
                "keep_last": self.keep_last,
            },
        )
        ref = snapshot_io.DurableRef(
            root=str(durable_dir), manifest_rel=report.manifest_rel,
            version=report.version,
        )
        return dataclasses.replace(snapshot, durable=ref), report

    def _swap_in(self, replacement: EmbeddingSnapshot,
                 durable_root: Optional[str] = None,
                 report: Optional[object] = None) -> int:
        """Two-phase flip of a fully-constructed snapshot (lock held).

        Every listener ``prepare``\\ s the new version first (old version
        still serving everywhere), then the in-memory reference — and, for
        a durable publish, the on-disk ``MANIFEST`` pointer — flips, then
        every listener ``activate``\\ s.  If any ``prepare`` fails the
        publish aborts: prepared listeners ``retire`` the dead version, the
        orphan manifest is deleted, and both the in-memory reference and
        the pointer keep naming the last good version.
        """
        prepared: List[SnapshotListener] = []
        try:
            for listener in self._listeners:
                listener.prepare(replacement)
                prepared.append(listener)
        except BaseException:
            for listener in prepared:
                listener.retire(replacement.version)
            if durable_root is not None and report is not None:
                from repro.serving import snapshot as snapshot_io

                snapshot_io.abandon_snapshot(durable_root, report)
            raise
        self._current = replacement
        if durable_root is not None and report is not None:
            from repro.serving import snapshot as snapshot_io

            snapshot_io.flip_pointer(durable_root, report.manifest_rel)
        for listener in self._listeners:
            listener.activate(replacement)
        if durable_root is not None and self.keep_last is not None:
            # Retention: with every durable publish activated, garbage-
            # collect manifests (and now-unreferenced chunks) beyond the
            # newest ``keep_last`` versions.  Runs after the activates so a
            # listener hydrating mid-flip never races a deleted chunk.
            from repro.serving import snapshot as snapshot_io

            snapshot_io.prune(durable_root, keep_versions=self.keep_last)
        return replacement.version

    def publish(self, query_embeddings: np.ndarray, service_embeddings: np.ndarray,
                durable_dir: Optional[str] = None) -> int:
        """Swap in a new embedding version; readers never see a torn pair.

        The snapshot — including any quantized service tables — is fully
        constructed *before* the reference swap, and the swap itself is a
        single assignment under the lock, so an interleaved
        :meth:`snapshot` returns either the old or the new version in its
        entirety, never a mixed fp/quantized pairing.

        Subscribed listeners run the two-phase flip around that swap (see
        :meth:`_swap_in`); an aborted publish keeps the old snapshot
        current everywhere, including on disk.

        ``durable_dir`` (or the store-level ``durable_dir``) additionally
        persists the version to the chunked snapshot format *before* any
        listener prepares — listeners that hydrate from disk (process-pool
        shard workers) can rely on the chunks and manifest existing — and
        atomically flips the ``MANIFEST`` pointer at the reference flip, so
        a crash anywhere in between recovers to the last good version.
        """
        with self._lock:
            version = self._current.version + 1
            replacement = self._make_snapshot(query_embeddings, service_embeddings, version)
            if replacement.embedding_dim != self._current.embedding_dim:
                raise ValueError("publish must keep the embedding dimensionality")
            root = durable_dir if durable_dir is not None else self.durable_dir
            report = None
            if root is not None:
                replacement, report = self._persist(replacement, root, flip=False)
            return self._swap_in(replacement, root, report)

    def hydrate(self, durable_dir: Optional[str] = None, verify: bool = True,
                remote: Optional[Tuple[str, int]] = None) -> int:
        """Adopt the newest on-disk version when it is newer than ours.

        The disk snapshot is mmapped (zero copy, no re-quantization) and
        run through the same two-phase listener flip as a publish.  A
        replica that was dead through a publish calls this on revive to
        catch up from the manifest instead of the wire.  Returns the
        current version either way.

        ``remote`` is a ``(host, port)`` of a peer
        :class:`~repro.serving.snapshot.SnapshotServer`: the peer's live
        version is pulled into the durable directory first (resumable,
        chunk-verified, delta-economic — see
        :mod:`repro.serving.snapshot.transport`), then adopted through the
        same flip.  A host whose directory is *empty* hydrates entirely
        over the wire, bit-identical to the source.
        """
        root = durable_dir if durable_dir is not None else self.durable_dir
        if root is None:
            raise ValueError("hydrate needs a durable_dir (none configured)")
        from repro.serving import snapshot as snapshot_io

        if remote is not None:
            snapshot_io.fetch_snapshot(remote, root)
        durable = snapshot_io.open_snapshot(root, verify=verify)
        with self._lock:
            if durable.version <= self._current.version:
                return self._current.version
            replacement = durable.to_snapshot(published_at=self._clock())
            if replacement.embedding_dim != self._current.embedding_dim:
                raise ValueError("hydrate must keep the embedding dimensionality")
            return self._swap_in(replacement)

    def publish_from_model(self, model) -> int:
        """Daily refresh path: re-export embeddings from a trained model."""
        return self.publish(model.query_embeddings(), model.service_embeddings())

    # Seed-store duck compatibility.
    refresh = publish

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def snapshot(self, max_staleness_s: Optional[float] = None) -> EmbeddingSnapshot:
        """The current snapshot; optionally enforce a staleness budget."""
        current = self._current  # single reference read — atomic in CPython
        if max_staleness_s is not None:
            age = current.age(self._clock())
            if age > max_staleness_s:
                raise StaleReadError(
                    f"snapshot v{current.version} is {age:.3f}s old "
                    f"(budget {max_staleness_s:.3f}s); run the daily refresh"
                )
        return current

    @property
    def version(self) -> int:
        return self._current.version

    @property
    def num_queries(self) -> int:
        return self._current.num_queries

    @property
    def num_services(self) -> int:
        return self._current.num_services

    @property
    def embedding_dim(self) -> int:
        return self._current.embedding_dim

    def query(self, query_ids: Sequence[int]) -> np.ndarray:
        return self._current.query(query_ids)

    def service(self, service_ids: Sequence[int]) -> np.ndarray:
        return self._current.service(service_ids)

    def all_services(self) -> np.ndarray:
        return self._current.all_services()

    def quantized_services(self, kind: str):
        return self._current.quantized_services(kind)

    @classmethod
    def restore(cls, durable_dir: str, version: Optional[int] = None,
                verify: bool = True,
                clock: Callable[[], float] = time.monotonic,
                remote: Optional[Tuple[str, int]] = None) -> "VersionedEmbeddingStore":
        """Warm-start a store from an on-disk snapshot directory.

        The fp tables, int8 codes/scales, and PQ codes/codebooks are served
        straight off the mmapped chunks — nothing is re-quantized and no
        codebook is re-trained, which is what makes a warm boot orders of
        magnitude faster than reconstructing the store from raw embeddings.
        Damaged or missing data raises a typed
        :class:`~repro.serving.snapshot.SnapshotError`; callers that hold
        the raw embeddings fall back to an in-memory rebuild.

        ``remote`` pulls the peer's snapshot into ``durable_dir`` over the
        wire before opening it (see
        :mod:`repro.serving.snapshot.transport`), which is how a host with
        *no local snapshot at all* boots: an empty directory plus a peer
        address restores to a bit-identical store.

        The restored store keeps ``durable_dir`` configured, so subsequent
        publishes continue the on-disk version history (delta-writing only
        changed chunks).
        """
        from repro.serving import snapshot as snapshot_io

        if remote is not None:
            snapshot_io.fetch_snapshot(remote, durable_dir, version=version)
        durable = snapshot_io.open_snapshot(durable_dir, version=version,
                                            verify=verify)
        meta = durable.meta
        store = cls.__new__(cls)
        store.num_shards = max(1, len(durable.shard_bounds) - 1)
        store.dtype = np.dtype(str(meta.get("dtype", "<f4")))
        store.quantization = tuple(meta.get("quantization", ()))
        store.quantization_params = {
            kind: dict(params)
            for kind, params in (meta.get("quantization_params") or {}).items()
        }
        store._clock = clock
        store._lock = threading.Lock()
        store._listeners = []
        store.durable_dir = str(durable_dir)
        store.durable_rows_per_chunk = meta.get("rows_per_chunk")
        keep_last = meta.get("keep_last")
        store.keep_last = int(keep_last) if keep_last is not None else None
        store._current = durable.to_snapshot(published_at=clock())
        return store

    @classmethod
    def from_model(cls, model, num_shards: int = 1, version: int = 0,
                   dtype: np.dtype = np.float32,
                   quantization: Sequence[str] = (),
                   quantization_params: Optional[Mapping[str, Mapping]] = None,
                   clock: Callable[[], float] = time.monotonic,
                   durable_dir: Optional[str] = None,
                   durable_rows_per_chunk: Optional[int] = None,
                   keep_last: Optional[int] = None) -> "VersionedEmbeddingStore":
        return cls(model.query_embeddings(), model.service_embeddings(),
                   num_shards=num_shards, version=version, dtype=dtype,
                   quantization=quantization,
                   quantization_params=quantization_params, clock=clock,
                   durable_dir=durable_dir,
                   durable_rows_per_chunk=durable_rows_per_chunk,
                   keep_last=keep_last)
