"""Approximate nearest-neighbour retrieval indexes for the serving gateway.

The paper's deployment (Sec. V-F.1) replaces the MLP click head with an
inner product so that online retrieval reduces to a maximum-inner-product
search (MIPS) over the exported service embeddings.  The seed substrate
performs that search as an exact brute-force scan; at production catalogue
sizes the scan dominates request latency, so the gateway offers two
pure-numpy approximate indexes behind a common :class:`RetrievalIndex`
interface:

* :class:`ExactIndex` — the reference brute-force scan, vectorised over a
  whole micro-batch of queries (one BLAS matmul instead of per-request
  matvecs);
* :class:`IVFIndex` — an inverted-file index: a k-means coarse quantizer
  partitions the catalogue into lists and each query only scans the
  ``num_probes`` lists whose centroids score highest, cutting the scanned
  fraction to roughly ``num_probes / num_lists``;
* :class:`LSHIndex` — signed random hyperplane LSH with multi-probing:
  candidates are gathered from hash buckets across several tables and
  re-ranked exactly.

The quantized indexes from :mod:`repro.serving.quant.ivfpq`
(:class:`~repro.serving.quant.ivfpq.IVFPQIndex` coarse cells + product-
quantized residual codes, :class:`~repro.serving.quant.ivfpq.Int8Index`
int8 exact scan) register under the same interface as ``"ivfpq"`` and
``"int8"``; :func:`build_index` loads them on demand.

All indexes are immutable once built; the gateway rebuilds them on embedding
hot-swap, which keeps index state trivially consistent with the store
version it was built from.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.serving.quant.kmeans import kmeans


class RetrievalIndex:
    """Common interface: batched top-K maximum-inner-product search.

    ``search`` takes a ``(batch, dim)`` query matrix and returns
    ``(ids, scores)`` arrays of shape ``(batch, k)``.  Rows with fewer than
    ``k`` reachable candidates are padded with id ``-1`` and score ``-inf``.
    """

    name: str = "base"

    def build(self, services: np.ndarray) -> "RetrievalIndex":
        raise NotImplementedError

    def search(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    @property
    def num_services(self) -> int:
        raise NotImplementedError

    @property
    def nbytes(self) -> int:
        """Resident bytes of everything the index needs at serving time."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_queries(queries: np.ndarray, k: int) -> np.ndarray:
        if k <= 0:
            raise ValueError("k must be positive")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries[None, :]
        if queries.ndim != 2:
            raise ValueError("queries must be a (batch, dim) matrix")
        return queries

    @staticmethod
    def _top_k(ids: np.ndarray, scores: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k of one candidate row, ties broken by ascending id, padded to k.

        The id tie-break makes results independent of candidate order, so a
        sharded scatter/gather merge (which gathers candidates shard-major)
        reproduces the single-index ranking bit for bit.
        """
        limit = min(k, scores.size)
        out_ids = np.full(k, -1, dtype=np.int64)
        out_scores = np.full(k, -np.inf)
        if limit == 0:
            return out_ids, out_scores
        top = np.argpartition(-scores, limit - 1)[:limit]
        order = top[np.lexsort((ids[top], -scores[top]))]
        out_ids[:limit] = ids[order]
        out_scores[:limit] = scores[order]
        return out_ids, out_scores

    @staticmethod
    def _batched_top_k(ids: np.ndarray, scores: np.ndarray,
                       k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k of every row of a ``(batch, n)`` score matrix at once.

        One ``argpartition`` + one ``lexsort`` over the whole batch replaces
        the per-row python loop — the loop dominated dense-scan latency at
        micro-batch sizes.  Semantics match :meth:`_top_k` exactly: sorted
        descending, ties broken by ascending id, ``(-1, -inf)`` padding.
        """
        batch, width = scores.shape
        limit = min(k, width)
        out_ids = np.full((batch, k), -1, dtype=np.int64)
        out_scores = np.full((batch, k), -np.inf)
        if limit == 0:
            return out_ids, out_scores
        if limit < width:
            keep = np.argpartition(-scores, limit - 1, axis=1)[:, :limit]
        else:
            keep = np.tile(np.arange(width, dtype=np.int64), (batch, 1))
        kept_scores = np.take_along_axis(scores, keep, axis=1)
        kept_ids = ids[keep]
        order = np.lexsort((kept_ids, -kept_scores), axis=1)
        out_ids[:, :limit] = np.take_along_axis(kept_ids, order, axis=1)
        out_scores[:, :limit] = np.take_along_axis(kept_scores, order, axis=1)
        return out_ids, out_scores


class ExactIndex(RetrievalIndex):
    """Brute-force batched MIPS — the recall=1 baseline the ANN indexes race."""

    name = "exact"

    def __init__(self) -> None:
        self._services: Optional[np.ndarray] = None

    def build(self, services: np.ndarray) -> "ExactIndex":
        services = np.asarray(services, dtype=np.float64)
        if services.ndim != 2:
            raise ValueError("services must be a (num_services, dim) matrix")
        self._services = services
        return self

    @property
    def num_services(self) -> int:
        if self._services is None:
            raise RuntimeError("index not built")
        return self._services.shape[0]

    @property
    def nbytes(self) -> int:
        if self._services is None:
            raise RuntimeError("index not built")
        return int(self._services.nbytes)

    def search(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._services is None:
            raise RuntimeError("index not built")
        queries = self._check_queries(queries, k)
        scores = queries @ self._services.T  # one matmul for the whole batch
        all_ids = np.arange(self._services.shape[0], dtype=np.int64)
        return self._batched_top_k(all_ids, scores, k)


class IVFIndex(RetrievalIndex):
    """Inverted-file index with a k-means coarse quantizer (pure numpy).

    ``build`` clusters the catalogue into ``num_lists`` cells; ``search``
    scores each query against the centroids, probes the ``num_probes`` best
    cells and scans only their members.  The scan itself is organised
    *list-major*: for every probed cell one ``(members, probing queries)``
    matmul is issued, so the python-level loop is bounded by ``num_lists``
    rather than by the batch size — essential for micro-batched serving.
    """

    name = "ivf"

    def __init__(self, num_lists: Optional[int] = None, num_probes: Optional[int] = None,
                 kmeans_iters: int = 8, seed: int = 0) -> None:
        if num_lists is not None and num_lists <= 0:
            raise ValueError("num_lists must be positive")
        if num_probes is not None and num_probes <= 0:
            raise ValueError("num_probes must be positive")
        self.num_lists = num_lists
        self.num_probes = num_probes
        self.kmeans_iters = kmeans_iters
        self.seed = seed
        self._num_services = 0
        self._centroids: Optional[np.ndarray] = None
        self._half_sq_norms: Optional[np.ndarray] = None
        self._list_ids: List[np.ndarray] = []
        self._list_vectors: List[np.ndarray] = []

    # ------------------------------------------------------------------ #
    # Build: k-means coarse quantizer
    # ------------------------------------------------------------------ #
    def build(self, services: np.ndarray) -> "IVFIndex":
        services = np.asarray(services, dtype=np.float64)
        if services.ndim != 2:
            raise ValueError("services must be a (num_services, dim) matrix")
        num_services = services.shape[0]
        num_lists = self.num_lists or max(1, int(round(np.sqrt(num_services))))
        num_lists = min(num_lists, num_services)
        centroids, assignment = kmeans(
            services, num_lists, iters=max(1, self.kmeans_iters), rng=self.seed
        )
        # Drop cells that ended empty so every stored list is scannable.
        self._list_ids, self._list_vectors, kept = [], [], []
        for cell in range(num_lists):
            ids = np.nonzero(assignment == cell)[0].astype(np.int64)
            if ids.size == 0:
                continue
            kept.append(cell)
            self._list_ids.append(ids)
            self._list_vectors.append(np.ascontiguousarray(services[ids]))
        self._centroids = centroids[kept]
        self._half_sq_norms = 0.5 * np.sum(self._centroids ** 2, axis=1)
        # The inverted lists hold a full copy of every vector; keeping the
        # original table too would double resident memory for no reader.
        self._num_services = num_services
        return self

    @property
    def num_services(self) -> int:
        if self._centroids is None:
            raise RuntimeError("index not built")
        return self._num_services

    @property
    def num_cells(self) -> int:
        return len(self._list_ids)

    @property
    def nbytes(self) -> int:
        if self._centroids is None:
            raise RuntimeError("index not built")
        return int(
            sum(vectors.nbytes for vectors in self._list_vectors)
            + sum(ids.nbytes for ids in self._list_ids)
            + self._centroids.nbytes
        )

    def cell_members(self, cell: int) -> np.ndarray:
        """Service ids stored in one inverted list (diagnostics/tests)."""
        return self._list_ids[cell]

    # ------------------------------------------------------------------ #
    # Search: probe best cells, list-major candidate scoring
    # ------------------------------------------------------------------ #
    def search(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._centroids is None:
            raise RuntimeError("index not built")
        queries = self._check_queries(queries, k)
        batch = queries.shape[0]
        cells = self.num_cells
        # Default probe count ~ sqrt(cells): scans ~sqrt(num_services) of the
        # catalogue at bench scale yet degrades gracefully on tiny catalogues.
        probes = min(self.num_probes or max(1, int(round(np.sqrt(cells)))), cells)
        affinity = queries @ self._centroids.T - self._half_sq_norms
        if probes < cells:
            probed = np.argpartition(-affinity, probes - 1, axis=1)[:, :probes]
        else:
            probed = np.tile(np.arange(cells), (batch, 1))
        probe_mask = np.zeros((batch, cells), dtype=bool)
        np.put_along_axis(probe_mask, probed, True, axis=1)

        cand_ids: List[List[np.ndarray]] = [[] for _ in range(batch)]
        cand_scores: List[List[np.ndarray]] = [[] for _ in range(batch)]
        for cell in range(cells):
            rows = np.nonzero(probe_mask[:, cell])[0]
            if rows.size == 0:
                continue
            # (members, probing queries) in one matmul; loop count <= num_cells.
            scores = self._list_vectors[cell] @ queries[rows].T
            ids = self._list_ids[cell]
            for column, row in enumerate(rows):
                cand_ids[row].append(ids)
                cand_scores[row].append(scores[:, column])

        out_ids = np.empty((batch, k), dtype=np.int64)
        out_scores = np.empty((batch, k))
        for row in range(batch):
            ids = np.concatenate(cand_ids[row]) if cand_ids[row] else np.zeros(0, dtype=np.int64)
            scores = np.concatenate(cand_scores[row]) if cand_scores[row] else np.zeros(0)
            out_ids[row], out_scores[row] = self._top_k(ids, scores, k)
        return out_ids, out_scores


class LSHIndex(RetrievalIndex):
    """Signed random hyperplane LSH with single-bit multi-probing.

    Each of ``num_tables`` tables hashes a vector to ``num_bits`` hyperplane
    signs packed into an integer bucket key.  A query gathers the union of
    its own bucket across all tables, plus (multi-probe) every bucket at
    Hamming distance one, then re-ranks the candidates exactly.

    Buckets are stored CSR-style (sorted unique keys + member offsets), so
    candidate gathering is *batched*: every probe key of the whole
    micro-batch resolves through one ``searchsorted`` per table, bucket
    members expand through one repeat-trick, and per-query de-duplication is
    a single ``unique`` over ``(query, candidate)`` pairs — the per-query
    python-dict lookups that used to dominate at 10k+ services are gone.
    """

    name = "lsh"

    def __init__(self, num_tables: int = 8, num_bits: int = 8,
                 multiprobe: bool = True, seed: int = 0) -> None:
        if num_tables <= 0 or num_bits <= 0:
            raise ValueError("num_tables and num_bits must be positive")
        if num_bits > 60:
            raise ValueError("num_bits must fit an int64 bucket key")
        self.num_tables = num_tables
        self.num_bits = num_bits
        self.multiprobe = multiprobe
        self.seed = seed
        self._services: Optional[np.ndarray] = None
        self._planes: Optional[np.ndarray] = None
        self._bucket_keys: List[np.ndarray] = []    # per table: sorted unique keys
        self._bucket_starts: List[np.ndarray] = []  # per table: CSR offsets
        self._bucket_members: List[np.ndarray] = [] # per table: members, key-major

    def build(self, services: np.ndarray) -> "LSHIndex":
        services = np.asarray(services, dtype=np.float64)
        if services.ndim != 2:
            raise ValueError("services must be a (num_services, dim) matrix")
        rng = np.random.default_rng(self.seed)
        dim = services.shape[1]
        self._planes = rng.normal(size=(self.num_tables, self.num_bits, dim))
        powers = 1 << np.arange(self.num_bits, dtype=np.int64)
        self._bucket_keys, self._bucket_starts, self._bucket_members = [], [], []
        for table in range(self.num_tables):
            bits = (services @ self._planes[table].T) > 0
            keys = bits @ powers
            order = np.argsort(keys, kind="stable")
            unique_keys, counts = np.unique(keys, return_counts=True)
            self._bucket_keys.append(unique_keys)
            self._bucket_starts.append(
                np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
            )
            self._bucket_members.append(order.astype(np.int64))
        self._services = services
        return self

    @property
    def num_services(self) -> int:
        if self._services is None:
            raise RuntimeError("index not built")
        return self._services.shape[0]

    @property
    def nbytes(self) -> int:
        if self._services is None:
            raise RuntimeError("index not built")
        return int(
            self._services.nbytes
            + self._planes.nbytes
            + sum(keys.nbytes for keys in self._bucket_keys)
            + sum(starts.nbytes for starts in self._bucket_starts)
            + sum(members.nbytes for members in self._bucket_members)
        )

    def _probe_keys(self, keys: np.ndarray) -> np.ndarray:
        """All probed bucket keys per (table, query): own key + 1-bit flips."""
        if not self.multiprobe:
            return keys[:, :, None]
        flips = np.concatenate(([0], 1 << np.arange(self.num_bits, dtype=np.int64)))
        return keys[:, :, None] ^ flips

    def _batch_candidates(self, keys: np.ndarray, batch: int
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate ``(query_row, service_id)`` pairs for a whole batch.

        ``keys`` is the ``(tables, batch)`` bucket-key matrix.  All probes of
        all queries resolve with one ``searchsorted`` per table; the result
        is de-duplicated per query in a single ``unique``.
        """
        probe_keys = self._probe_keys(keys)  # (tables, batch, probes)
        probes = probe_keys.shape[2]
        row_of_probe = np.repeat(np.arange(batch, dtype=np.int64), probes)
        pair_rows: List[np.ndarray] = []
        pair_ids: List[np.ndarray] = []
        for table in range(self.num_tables):
            unique_keys = self._bucket_keys[table]
            if unique_keys.size == 0:
                continue
            starts = self._bucket_starts[table]
            members = self._bucket_members[table]
            flat_keys = probe_keys[table].reshape(-1)
            bucket = np.searchsorted(unique_keys, flat_keys)
            bucket_clipped = np.minimum(bucket, unique_keys.size - 1)
            hit = unique_keys[bucket_clipped] == flat_keys
            bucket = bucket_clipped[hit]
            lengths = starts[bucket + 1] - starts[bucket]
            total = int(lengths.sum())
            if total == 0:
                continue
            # Expand each hit bucket's member slice with one repeat-trick.
            segment_starts = np.cumsum(lengths) - lengths
            positions = (np.arange(total, dtype=np.int64)
                         + np.repeat(starts[bucket] - segment_starts, lengths))
            pair_ids.append(members[positions])
            pair_rows.append(np.repeat(row_of_probe[hit], lengths))
        if not pair_ids:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        rows = np.concatenate(pair_rows)
        ids = np.concatenate(pair_ids)
        # De-duplicate per query.  A (batch, services) bitmap + nonzero is
        # one dense scatter/scan and returns row-sorted pairs; fall back to
        # sorting packed keys when the bitmap would be unreasonably large.
        num_services = self.num_services
        if batch * num_services <= 1 << 26:
            seen = np.zeros((batch, num_services), dtype=bool)
            seen[rows, ids] = True
            return [np.asarray(axis) for axis in np.nonzero(seen)]
        combined = rows * np.int64(num_services) + ids
        combined.sort()
        keep = np.empty(combined.size, dtype=bool)
        keep[0] = True
        np.not_equal(combined[1:], combined[:-1], out=keep[1:])
        combined = combined[keep]
        return combined // num_services, combined % num_services

    def search(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._services is None or self._planes is None:
            raise RuntimeError("index not built")
        queries = self._check_queries(queries, k)
        batch = queries.shape[0]
        powers = 1 << np.arange(self.num_bits, dtype=np.int64)
        # (tables, batch) bucket keys in two tensordots.
        bits = np.einsum("tbd,qd->tqb", self._planes, queries) > 0
        keys = bits @ powers
        cand_rows, cand_ids = self._batch_candidates(keys, batch)
        row_starts = np.searchsorted(cand_rows, np.arange(batch + 1))
        out_ids = np.empty((batch, k), dtype=np.int64)
        out_scores = np.empty((batch, k))
        for row in range(batch):
            candidates = cand_ids[row_starts[row]:row_starts[row + 1]]
            scores = (
                self._services[candidates] @ queries[row]
                if candidates.size
                else np.zeros(0)
            )
            out_ids[row], out_scores[row] = self._top_k(candidates, scores, k)
        return out_ids, out_scores


_INDEX_REGISTRY = {
    ExactIndex.name: ExactIndex,
    IVFIndex.name: IVFIndex,
    LSHIndex.name: LSHIndex,
}


def _register_quantized_indexes() -> None:
    """Pull the quantized indexes into the registry (import-cycle-free).

    :mod:`repro.serving.quant.ivfpq` subclasses :class:`RetrievalIndex`, so
    it imports this module; loading it lazily here (rather than at module
    top) lets either import order work.
    """
    from repro.serving.quant.ivfpq import Int8Index, IVFPQIndex

    _INDEX_REGISTRY.setdefault(IVFPQIndex.name, IVFPQIndex)
    _INDEX_REGISTRY.setdefault(Int8Index.name, Int8Index)


def build_index(kind: str, services: np.ndarray, **params) -> RetrievalIndex:
    """Build a retrieval index by registry name
    (``exact`` / ``ivf`` / ``lsh`` / ``ivfpq`` / ``int8``)."""
    if kind not in _INDEX_REGISTRY:
        _register_quantized_indexes()
    try:
        factory = _INDEX_REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(_INDEX_REGISTRY))
        raise ValueError(f"unknown index kind {kind!r} (known: {known})") from None
    return factory(**params).build(services)


def index_kinds() -> Tuple[str, ...]:
    """Registered index names, exact scan first."""
    _register_quantized_indexes()
    return tuple(sorted(_INDEX_REGISTRY, key=lambda name: (name != "exact", name)))
