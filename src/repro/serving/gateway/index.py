"""Approximate nearest-neighbour retrieval indexes for the serving gateway.

The paper's deployment (Sec. V-F.1) replaces the MLP click head with an
inner product so that online retrieval reduces to a maximum-inner-product
search (MIPS) over the exported service embeddings.  The seed substrate
performs that search as an exact brute-force scan; at production catalogue
sizes the scan dominates request latency, so the gateway offers two
pure-numpy approximate indexes behind a common :class:`RetrievalIndex`
interface:

* :class:`ExactIndex` — the reference brute-force scan, vectorised over a
  whole micro-batch of queries (one BLAS matmul instead of per-request
  matvecs);
* :class:`IVFIndex` — an inverted-file index: a k-means coarse quantizer
  partitions the catalogue into lists and each query only scans the
  ``num_probes`` lists whose centroids score highest, cutting the scanned
  fraction to roughly ``num_probes / num_lists``;
* :class:`LSHIndex` — signed random hyperplane LSH with multi-probing:
  candidates are gathered from hash buckets across several tables and
  re-ranked exactly.

All indexes are immutable once built; the gateway rebuilds them on embedding
hot-swap, which keeps index state trivially consistent with the store
version it was built from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np


class RetrievalIndex:
    """Common interface: batched top-K maximum-inner-product search.

    ``search`` takes a ``(batch, dim)`` query matrix and returns
    ``(ids, scores)`` arrays of shape ``(batch, k)``.  Rows with fewer than
    ``k`` reachable candidates are padded with id ``-1`` and score ``-inf``.
    """

    name: str = "base"

    def build(self, services: np.ndarray) -> "RetrievalIndex":
        raise NotImplementedError

    def search(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    @property
    def num_services(self) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_queries(queries: np.ndarray, k: int) -> np.ndarray:
        if k <= 0:
            raise ValueError("k must be positive")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries[None, :]
        if queries.ndim != 2:
            raise ValueError("queries must be a (batch, dim) matrix")
        return queries

    @staticmethod
    def _top_k(ids: np.ndarray, scores: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k of one candidate row, ties broken stably, padded to length k."""
        limit = min(k, scores.size)
        out_ids = np.full(k, -1, dtype=np.int64)
        out_scores = np.full(k, -np.inf)
        if limit == 0:
            return out_ids, out_scores
        top = np.argpartition(-scores, limit - 1)[:limit]
        order = top[np.argsort(-scores[top], kind="stable")]
        out_ids[:limit] = ids[order]
        out_scores[:limit] = scores[order]
        return out_ids, out_scores


class ExactIndex(RetrievalIndex):
    """Brute-force batched MIPS — the recall=1 baseline the ANN indexes race."""

    name = "exact"

    def __init__(self) -> None:
        self._services: Optional[np.ndarray] = None

    def build(self, services: np.ndarray) -> "ExactIndex":
        services = np.asarray(services, dtype=np.float64)
        if services.ndim != 2:
            raise ValueError("services must be a (num_services, dim) matrix")
        self._services = services
        return self

    @property
    def num_services(self) -> int:
        if self._services is None:
            raise RuntimeError("index not built")
        return self._services.shape[0]

    def search(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._services is None:
            raise RuntimeError("index not built")
        queries = self._check_queries(queries, k)
        scores = queries @ self._services.T  # one matmul for the whole batch
        batch = queries.shape[0]
        all_ids = np.arange(self._services.shape[0], dtype=np.int64)
        out_ids = np.empty((batch, k), dtype=np.int64)
        out_scores = np.empty((batch, k))
        for row in range(batch):
            out_ids[row], out_scores[row] = self._top_k(all_ids, scores[row], k)
        return out_ids, out_scores


class IVFIndex(RetrievalIndex):
    """Inverted-file index with a k-means coarse quantizer (pure numpy).

    ``build`` clusters the catalogue into ``num_lists`` cells; ``search``
    scores each query against the centroids, probes the ``num_probes`` best
    cells and scans only their members.  The scan itself is organised
    *list-major*: for every probed cell one ``(members, probing queries)``
    matmul is issued, so the python-level loop is bounded by ``num_lists``
    rather than by the batch size — essential for micro-batched serving.
    """

    name = "ivf"

    def __init__(self, num_lists: Optional[int] = None, num_probes: Optional[int] = None,
                 kmeans_iters: int = 8, seed: int = 0) -> None:
        if num_lists is not None and num_lists <= 0:
            raise ValueError("num_lists must be positive")
        if num_probes is not None and num_probes <= 0:
            raise ValueError("num_probes must be positive")
        self.num_lists = num_lists
        self.num_probes = num_probes
        self.kmeans_iters = kmeans_iters
        self.seed = seed
        self._services: Optional[np.ndarray] = None
        self._centroids: Optional[np.ndarray] = None
        self._half_sq_norms: Optional[np.ndarray] = None
        self._list_ids: List[np.ndarray] = []
        self._list_vectors: List[np.ndarray] = []

    # ------------------------------------------------------------------ #
    # Build: k-means coarse quantizer
    # ------------------------------------------------------------------ #
    def build(self, services: np.ndarray) -> "IVFIndex":
        services = np.asarray(services, dtype=np.float64)
        if services.ndim != 2:
            raise ValueError("services must be a (num_services, dim) matrix")
        num_services = services.shape[0]
        num_lists = self.num_lists or max(1, int(round(np.sqrt(num_services))))
        num_lists = min(num_lists, num_services)
        rng = np.random.default_rng(self.seed)
        centroids = services[rng.choice(num_services, size=num_lists, replace=False)].copy()
        assignment = np.zeros(num_services, dtype=np.int64)
        for _ in range(max(1, self.kmeans_iters)):
            # argmin ||x - c||^2 == argmax x.c - ||c||^2 / 2
            affinity = services @ centroids.T - 0.5 * np.sum(centroids ** 2, axis=1)
            assignment = np.argmax(affinity, axis=1)
            for cell in range(num_lists):
                members = assignment == cell
                if np.any(members):
                    centroids[cell] = services[members].mean(axis=0)
                else:  # re-seed empty cells on a random point
                    centroids[cell] = services[rng.integers(num_services)]
        # Drop cells that ended empty so every stored list is scannable.
        self._list_ids, self._list_vectors, kept = [], [], []
        for cell in range(num_lists):
            ids = np.nonzero(assignment == cell)[0].astype(np.int64)
            if ids.size == 0:
                continue
            kept.append(cell)
            self._list_ids.append(ids)
            self._list_vectors.append(np.ascontiguousarray(services[ids]))
        self._centroids = centroids[kept]
        self._half_sq_norms = 0.5 * np.sum(self._centroids ** 2, axis=1)
        self._services = services
        return self

    @property
    def num_services(self) -> int:
        if self._services is None:
            raise RuntimeError("index not built")
        return self._services.shape[0]

    @property
    def num_cells(self) -> int:
        return len(self._list_ids)

    def cell_members(self, cell: int) -> np.ndarray:
        """Service ids stored in one inverted list (diagnostics/tests)."""
        return self._list_ids[cell]

    # ------------------------------------------------------------------ #
    # Search: probe best cells, list-major candidate scoring
    # ------------------------------------------------------------------ #
    def search(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._services is None or self._centroids is None:
            raise RuntimeError("index not built")
        queries = self._check_queries(queries, k)
        batch = queries.shape[0]
        cells = self.num_cells
        # Default probe count ~ sqrt(cells): scans ~sqrt(num_services) of the
        # catalogue at bench scale yet degrades gracefully on tiny catalogues.
        probes = min(self.num_probes or max(1, int(round(np.sqrt(cells)))), cells)
        affinity = queries @ self._centroids.T - self._half_sq_norms
        if probes < cells:
            probed = np.argpartition(-affinity, probes - 1, axis=1)[:, :probes]
        else:
            probed = np.tile(np.arange(cells), (batch, 1))
        probe_mask = np.zeros((batch, cells), dtype=bool)
        np.put_along_axis(probe_mask, probed, True, axis=1)

        cand_ids: List[List[np.ndarray]] = [[] for _ in range(batch)]
        cand_scores: List[List[np.ndarray]] = [[] for _ in range(batch)]
        for cell in range(cells):
            rows = np.nonzero(probe_mask[:, cell])[0]
            if rows.size == 0:
                continue
            # (members, probing queries) in one matmul; loop count <= num_cells.
            scores = self._list_vectors[cell] @ queries[rows].T
            ids = self._list_ids[cell]
            for column, row in enumerate(rows):
                cand_ids[row].append(ids)
                cand_scores[row].append(scores[:, column])

        out_ids = np.empty((batch, k), dtype=np.int64)
        out_scores = np.empty((batch, k))
        for row in range(batch):
            ids = np.concatenate(cand_ids[row]) if cand_ids[row] else np.zeros(0, dtype=np.int64)
            scores = np.concatenate(cand_scores[row]) if cand_scores[row] else np.zeros(0)
            out_ids[row], out_scores[row] = self._top_k(ids, scores, k)
        return out_ids, out_scores


class LSHIndex(RetrievalIndex):
    """Signed random hyperplane LSH with single-bit multi-probing.

    Each of ``num_tables`` tables hashes a vector to ``num_bits`` hyperplane
    signs packed into an integer bucket key.  A query gathers the union of
    its own bucket across all tables, plus (multi-probe) every bucket at
    Hamming distance one, then re-ranks the candidates exactly.
    """

    name = "lsh"

    def __init__(self, num_tables: int = 8, num_bits: int = 8,
                 multiprobe: bool = True, seed: int = 0) -> None:
        if num_tables <= 0 or num_bits <= 0:
            raise ValueError("num_tables and num_bits must be positive")
        if num_bits > 60:
            raise ValueError("num_bits must fit an int64 bucket key")
        self.num_tables = num_tables
        self.num_bits = num_bits
        self.multiprobe = multiprobe
        self.seed = seed
        self._services: Optional[np.ndarray] = None
        self._planes: Optional[np.ndarray] = None
        self._tables: List[Dict[int, np.ndarray]] = []

    def build(self, services: np.ndarray) -> "LSHIndex":
        services = np.asarray(services, dtype=np.float64)
        if services.ndim != 2:
            raise ValueError("services must be a (num_services, dim) matrix")
        rng = np.random.default_rng(self.seed)
        dim = services.shape[1]
        self._planes = rng.normal(size=(self.num_tables, self.num_bits, dim))
        powers = 1 << np.arange(self.num_bits, dtype=np.int64)
        self._tables = []
        for table in range(self.num_tables):
            bits = (services @ self._planes[table].T) > 0
            keys = bits @ powers
            buckets: Dict[int, List[int]] = {}
            for service_id, key in enumerate(keys):
                buckets.setdefault(int(key), []).append(service_id)
            self._tables.append(
                {key: np.asarray(members, dtype=np.int64) for key, members in buckets.items()}
            )
        self._services = services
        return self

    @property
    def num_services(self) -> int:
        if self._services is None:
            raise RuntimeError("index not built")
        return self._services.shape[0]

    def _candidates(self, keys: np.ndarray) -> np.ndarray:
        pieces: List[np.ndarray] = []
        for table, key in zip(self._tables, keys):
            bucket = table.get(int(key))
            if bucket is not None:
                pieces.append(bucket)
            if self.multiprobe:
                for bit in range(self.num_bits):
                    neighbour = table.get(int(key) ^ (1 << bit))
                    if neighbour is not None:
                        pieces.append(neighbour)
        if not pieces:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(pieces))

    def search(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._services is None or self._planes is None:
            raise RuntimeError("index not built")
        queries = self._check_queries(queries, k)
        batch = queries.shape[0]
        powers = 1 << np.arange(self.num_bits, dtype=np.int64)
        # (tables, batch) bucket keys in two tensordots.
        bits = np.einsum("tbd,qd->tqb", self._planes, queries) > 0
        keys = bits @ powers
        out_ids = np.empty((batch, k), dtype=np.int64)
        out_scores = np.empty((batch, k))
        for row in range(batch):
            candidates = self._candidates(keys[:, row])
            scores = (
                self._services[candidates] @ queries[row]
                if candidates.size
                else np.zeros(0)
            )
            out_ids[row], out_scores[row] = self._top_k(candidates, scores, k)
        return out_ids, out_scores


_INDEX_REGISTRY = {
    ExactIndex.name: ExactIndex,
    IVFIndex.name: IVFIndex,
    LSHIndex.name: LSHIndex,
}


def build_index(kind: str, services: np.ndarray, **params) -> RetrievalIndex:
    """Build a retrieval index by registry name (``exact`` / ``ivf`` / ``lsh``)."""
    try:
        factory = _INDEX_REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(_INDEX_REGISTRY))
        raise ValueError(f"unknown index kind {kind!r} (known: {known})") from None
    return factory(**params).build(services)


def index_kinds() -> Tuple[str, ...]:
    """Registered index names, exact scan first."""
    return tuple(sorted(_INDEX_REGISTRY, key=lambda name: (name != "exact", name)))
