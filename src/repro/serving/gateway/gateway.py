"""The serving gateway: ANN retrieval + micro-batching + caching + telemetry.

:class:`ServingGateway` is the online front door of the reproduction's
deployment story (Sec. V-F).  One instance owns

* a :class:`~repro.serving.gateway.store.VersionedEmbeddingStore` holding
  the daily-refreshed embedding snapshots,
* a :class:`~repro.serving.gateway.index.RetrievalIndex` built per snapshot
  version (rebuilt atomically on hot-swap),
* an :class:`~repro.serving.gateway.scheduler.AsyncBatchScheduler`
  coalescing concurrent requests into vectorised searches (reached through
  the synchronous :class:`~repro.serving.gateway.scheduler.BatchScheduler`
  facade for thread-based callers),
* an :class:`~repro.serving.gateway.cache.LRUTTLCache` keyed by
  ``(query_id, k, version)`` so hot-swaps are self-invalidating, and
* a :class:`~repro.serving.gateway.telemetry.GatewayTelemetry` recording
  QPS, latency percentiles, cache hit rate, ANN recall, queue depth,
  overload/deadline shedding and event-loop lag.

The request path is asyncio-native end to end: :meth:`ServingGateway.
search_async` submits into the async scheduler and awaits the result on the
caller's event loop, with backpressure (bounded admission queue), deadline
propagation and cooperative cancellation.  The synchronous surface
(:meth:`search` / :meth:`rank` / :meth:`submit` + ``flush``) is a thin
wrapper that drives the *same* async core on a private loop — one request
path, two calling conventions.

The gateway satisfies the same ``rank(query_id, k)`` protocol as
:class:`~repro.serving.pipeline.ServingPipeline`, so it can be dropped
straight into the A/B-test simulator.
"""

from __future__ import annotations

import asyncio
import threading
import time
import warnings
from concurrent.futures import Executor, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.eval.serving_metrics import recall_at_k
from repro.serving.gateway.cache import LRUTTLCache
from repro.serving.gateway.index import ExactIndex, RetrievalIndex, build_index
from repro.serving.gateway.scheduler import BatchScheduler, PendingRequest
from repro.serving.gateway.store import (
    SnapshotListener,
    StaleVersionError,
    VersionedEmbeddingStore,
)
from repro.serving.gateway.telemetry import GatewayTelemetry
from repro.serving.obs.flight import FlightRecorder
from repro.serving.obs.health import HealthSnapshot
from repro.serving.obs.tracing import BatchSpans, Tracer


class ServingGateway(SnapshotListener):
    """High-throughput request front-end over a versioned embedding store.

    The gateway subscribes to the store as a two-phase
    :class:`~repro.serving.gateway.store.SnapshotListener`: every publish —
    whether driven through :meth:`hot_swap` or directly on the store —
    builds the new version's index *before* the version flip and invalidates
    the superseded cache entries right after it.  Subclasses (the sharded
    tier) override :meth:`_search_backend` / :meth:`_search_backend_async`
    and the listener hooks to swap the single-process index for a worker
    pool without touching the request/cache path.

    Loop-front-end knobs:

    * ``max_queue`` bounds the admission queue; ``overload`` picks the
      backpressure policy (``"reject"`` fails a submit with
      :class:`~repro.serving.gateway.scheduler.OverloadError`, ``"wait"``
      parks async submitters until a slot frees),
    * ``default_deadline_s`` gives every request a deadline unless the call
      site passes its own — requests past it are shed before scoring,
    * ``cpu_executor`` moves the CPU-bound scoring off the event loop
      (``"thread"`` for an owned single worker, any
      :class:`concurrent.futures.Executor` to plug your own, ``None`` to
      score inline — the deterministic default),
    * ``loop_confined=True`` declares that *all* access happens on one
      event loop (or one thread): the result cache and telemetry then drop
      their per-call locks, so a cache hit never takes — and can never
      block on — a lock.

    Observability knobs:

    * ``tracing=True`` traces every request end to end (admission → queue →
      plan → score/scatter → merge → reply spans); finished traces land in
      the gateway's :class:`~repro.serving.obs.flight.FlightRecorder`,
      which always keeps slow/shed/error traces and samples 1 in
      ``trace_sample_every`` ordinary ones into a ring of
      ``flight_recorder_capacity``; ``slow_trace_ms`` is the always-keep
      latency threshold,
    * ``telemetry_enabled=False`` turns every telemetry record into a no-op
      (the baseline the obs-overhead bench gate compares against),
    * :meth:`health` condenses the telemetry into a poll-cheap
      :class:`~repro.serving.obs.health.HealthSnapshot`, and
      :meth:`explain` renders the span tree of one request.
    """

    def __init__(self, store: VersionedEmbeddingStore, index: str = "ivf",
                 index_params: Optional[dict] = None, top_k: int = 10,
                 max_batch_size: int = 64, max_wait_s: float = 0.002,
                 cache_capacity: int = 4096, cache_ttl_s: Optional[float] = None,
                 max_staleness_s: Optional[float] = None,
                 max_queue: Optional[int] = None, overload: str = "wait",
                 default_deadline_s: Optional[float] = None,
                 cpu_executor=None, loop_confined: bool = False,
                 telemetry_enabled: bool = True, tracing: bool = False,
                 trace_sample_every: int = 16,
                 flight_recorder_capacity: int = 256,
                 slow_trace_ms: float = 50.0, trace_seed: int = 0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        self.store = store
        self.index_kind = index
        self.index_params = dict(index_params or {})
        self.top_k = top_k
        self.max_staleness_s = max_staleness_s
        self.default_deadline_s = default_deadline_s
        self.loop_confined = loop_confined
        self._clock = clock
        self._index_lock = threading.Lock()
        self._indexes: Dict[int, RetrievalIndex] = {}
        self._owns_cpu_executor = False
        if cpu_executor == "thread":
            cpu_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="gateway-score")
            self._owns_cpu_executor = True
        elif cpu_executor is not None and not isinstance(cpu_executor, Executor):
            raise ValueError(
                "cpu_executor must be None, 'thread', or a concurrent.futures"
                f".Executor, got {cpu_executor!r}")
        self._cpu_executor: Optional[Executor] = cpu_executor
        self.cache = LRUTTLCache(capacity=cache_capacity, ttl_s=cache_ttl_s,
                                 clock=clock, thread_safe=not loop_confined)
        self.telemetry = GatewayTelemetry(clock=clock,
                                          thread_safe=not loop_confined,
                                          enabled=telemetry_enabled)
        self.flight_recorder = FlightRecorder(
            capacity=flight_recorder_capacity,
            sample_every=trace_sample_every,
            slow_s=slow_trace_ms * 1e-3,
        )
        self.tracer = Tracer(clock=clock, recorder=self.flight_recorder,
                             seed=trace_seed, enabled=tracing)
        self.scheduler = BatchScheduler(
            self._execute_batch_async, max_batch_size=max_batch_size,
            max_wait_s=max_wait_s, clock=clock, max_queue=max_queue,
            overload=overload, telemetry=self.telemetry, tracer=self.tracer,
        )
        self._active_version: Optional[int] = None
        # Subscribing prepares + activates the current snapshot eagerly, so
        # the first request never pays an index build.
        self.store.subscribe(self)

    # ------------------------------------------------------------------ #
    # Two-phase snapshot listener (index lifecycle)
    # ------------------------------------------------------------------ #
    def prepare(self, snapshot) -> None:
        """Build the new version's search structures before the flip."""
        self._index_for(snapshot)

    def activate(self, snapshot) -> None:
        """The flip happened: drop the superseded version's cache entries."""
        previous = self._active_version
        self._active_version = snapshot.version
        if previous is not None and previous != snapshot.version:
            self.cache.invalidate_version(previous)
            self.telemetry.record_swap(snapshot.version)

    def retire(self, version: int) -> None:
        """Aborted publish: drop the index prepared for the dead version."""
        with self._index_lock:
            self._indexes.pop(version, None)


    def _index_for(self, snapshot) -> RetrievalIndex:
        """The index built from exactly this snapshot's service matrix.

        Indexes are kept per store version so a batch that pinned snapshot
        ``v`` mid-hot-swap still searches the version-``v`` index — never a
        mixed-version pairing.  Only the two newest versions are retained.

        When the store published an int8 table with the snapshot and the
        index kind can consume one (``int8`` scans it, ``ivfpq`` refines
        against it), the published table is shared instead of re-quantizing
        the catalogue at every build.
        """
        with self._index_lock:
            index = self._indexes.get(snapshot.version)
            if index is None:
                index = self._restore_index(snapshot)
            if index is None:
                params = dict(self.index_params)
                if self.index_kind in ("int8", "ivfpq"):
                    published = getattr(snapshot, "quantized", {}).get("int8")
                    if published is not None:
                        params.setdefault("int8_table", published)
                index = build_index(self.index_kind, snapshot.all_services(),
                                    **params)
            self._indexes.setdefault(snapshot.version, index)
            for stale in sorted(self._indexes)[:-2]:
                del self._indexes[stale]
            return self._indexes[snapshot.version]

    def _restore_index(self, snapshot) -> Optional[RetrievalIndex]:
        """A persisted index payload for this snapshot, or ``None``.

        Only ``ivfpq`` carries expensive trained state worth persisting.  A
        missing payload is the normal cold-build path; a *damaged* one
        raises the snapshot layer's typed integrity error, which is
        surfaced as a warning here and answered with an in-memory rebuild —
        warm start is an optimisation, never a correctness dependency.
        """
        durable = getattr(snapshot, "durable", None)
        if durable is None or self.index_kind != "ivfpq":
            return None
        from repro.serving.snapshot import SnapshotError, SnapshotNotFoundError

        params = {
            key: value for key, value in self.index_params.items()
            if key in ("num_probes", "refine", "refine_factor", "num_lists",
                       "shrink_margin")
        }
        try:
            return durable.load_index(
                self.index_kind,
                int8_table=getattr(snapshot, "quantized", {}).get("int8"),
                params=params,
            )
        except SnapshotNotFoundError:
            return None
        except (SnapshotError, ValueError) as error:
            warnings.warn(
                f"persisted {self.index_kind} payload for store "
                f"v{snapshot.version} is unusable ({error}); rebuilding the "
                f"index in memory",
                RuntimeWarning,
                stacklevel=3,
            )
            return None

    def persist_index(self, kind: Optional[str] = None) -> str:
        """Persist the current version's trained index beside its manifest.

        A later ``deploy_gateway(warm_start=...)`` then restores the index
        payload (coarse centroids, slot layout, PQ codebooks) instead of
        re-running k-means.  Requires the current snapshot to have been
        published durably (store ``durable_dir``).
        """
        snapshot = self.store.snapshot()
        durable = getattr(snapshot, "durable", None)
        if durable is None:
            raise ValueError(
                "persist_index needs a durably-published snapshot — construct "
                "the store with durable_dir= (or publish(durable_dir=...))"
            )
        return durable.save_index(self._index_for(snapshot), kind or self.index_kind)

    def _search_backend(self, snapshot, query_matrix: np.ndarray, k: int,
                        spans: Optional[BatchSpans] = None
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """One vectorised top-k search at exactly ``snapshot``'s version.

        The single-process backend answers from the per-version index; the
        sharded subclass overrides this with a scatter/gather over its
        worker pool.  ``spans`` (when the batch carries traced requests)
        receives a ``score`` span covering the scan.
        """
        index = self._index_for(snapshot)
        if spans is None:
            result = index.search(query_matrix, k)
        else:
            started = self._clock()
            result = index.search(query_matrix, k)
            spans.add("score", started, self._clock(),
                      queries=query_matrix.shape[0], k=k)
        self._drain_shortlist_stats(index)
        return result

    def _drain_shortlist_stats(self, index: RetrievalIndex) -> None:
        """Move a quantized index's shortlist-shrink counters to telemetry."""
        take = getattr(index, "take_shortlist_stats", None)
        if take is not None:
            candidates, kept = take()
            if candidates:
                self.telemetry.record_shortlist(candidates, kept)

    async def _search_backend_async(self, snapshot, query_matrix: np.ndarray,
                                    k: int, spans: Optional[BatchSpans] = None
                                    ) -> Tuple[np.ndarray, np.ndarray]:
        """The async face of the backend search (the executor boundary).

        CPU-bound scoring is pushed through ``cpu_executor`` when one is
        configured, so the event loop keeps admitting and timing out
        requests while numpy scans the catalogue; without one the scan runs
        inline (deterministic, and correct for the sync facade which has no
        loop to protect).  The sharded subclass overrides this with a
        loop-driven scatter/gather instead.
        """
        if self._cpu_executor is not None:
            loop = asyncio.get_running_loop()
            started = self._clock()
            result = await loop.run_in_executor(
                self._cpu_executor, self._search_backend,
                snapshot, query_matrix, k)
            if spans is not None:
                spans.add("score", started, self._clock(),
                          queries=query_matrix.shape[0], k=k, offloaded=True)
            return result
        return self._search_backend(snapshot, query_matrix, k, spans=spans)

    # ------------------------------------------------------------------ #
    # Request path (async core + sync wrappers)
    # ------------------------------------------------------------------ #
    def submit(self, query_id: int, k: Optional[int] = None,
               deadline_s: Optional[float] = None,
               tag: Optional[str] = None) -> PendingRequest:
        """Enqueue one request for micro-batched execution.

        ``tag`` attributes the request's telemetry (answered latency,
        deadline miss, overload rejection, cancellation) to a named stream —
        the experimentation tier passes the A/B bucket here, and
        :meth:`GatewayTelemetry.bucket_rows` reports per-bucket cost.
        """
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        return self.scheduler.submit(
            query_id, k if k is not None else self.top_k, deadline_s=deadline_s,
            tag=tag)

    def poll(self) -> int:
        return self.scheduler.poll()

    def flush(self) -> int:
        return self.scheduler.flush()

    def search(self, query_id: int, k: Optional[int] = None,
               deadline_s: Optional[float] = None,
               tag: Optional[str] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Synchronous single search: ``(ids, scores)`` for one query.

        A thin wrapper over the async core: the request is admitted to the
        same scheduler queue and executed by the same batch path as
        :meth:`search_async`, driven to completion on the facade's loop.
        """
        pending = self.submit(query_id, k, deadline_s=deadline_s, tag=tag)
        self.scheduler.flush()
        return pending.result()

    async def search_async(self, query_id: int, k: Optional[int] = None,
                           deadline_s: Optional[float] = None,
                           tag: Optional[str] = None
                           ) -> Tuple[np.ndarray, np.ndarray]:
        """Async single search: admit, batch, score, gather — on one loop.

        Backpressure applies at admission (``max_queue`` / ``overload``),
        the request inherits ``default_deadline_s`` unless ``deadline_s``
        overrides it, and awaiting caller cancellation propagates into the
        scheduler: a request cancelled before its batch executes is dropped
        without being scored.  ``tag`` attributes the request's telemetry to
        a named stream (the A/B bucket).
        """
        pending = await self.submit_async(query_id, k, deadline_s=deadline_s,
                                          tag=tag)
        try:
            return await pending.wait()
        except asyncio.CancelledError:
            pending.cancel()
            raise

    async def submit_async(self, query_id: int, k: Optional[int] = None,
                           deadline_s: Optional[float] = None,
                           tag: Optional[str] = None) -> PendingRequest:
        """Admit one request and return its :class:`PendingRequest` handle.

        The replica-handle form of :meth:`search_async`: a fleet front-end
        admits here, grafts its own routing span onto ``pending.trace``,
        and awaits ``pending.wait()`` itself — so failover logic owns the
        wait without re-implementing admission.  Raises ``OverloadError``
        at admission like ``search_async`` does.
        """
        core = self.scheduler.async_scheduler
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        pending = await core.submit(
            query_id, k if k is not None else self.top_k, deadline_s=deadline_s,
            tag=tag)
        core.start()  # idempotent: the drive task for the current loop
        return pending

    async def rank_async(self, query_id: int, k: Optional[int] = None,
                         deadline_s: Optional[float] = None,
                         tag: Optional[str] = None) -> List[int]:
        """Async variant of the A/B simulator's ranker protocol."""
        ids, _ = await self.search_async(query_id, k, deadline_s=deadline_s,
                                         tag=tag)
        return [int(service_id) for service_id in ids]

    async def stop_async(self) -> None:
        """Stop the drive task on the current loop, draining the queue."""
        await self.scheduler.async_scheduler.stop()

    async def drain_async(self) -> None:
        """Drain hook for replica lifecycle: finish queued work, stay up.

        Completes (or sheds, per deadline) everything already admitted and
        stops the drive task; the next ``submit_async`` restarts it.  A
        fleet uses this to retire a replica gracefully — drain, then stop
        routing to it — without failing in-flight requests the way
        ``close()`` would.
        """
        await self.scheduler.async_scheduler.stop(drain=True)

    def rank(self, query_id: int, k: Optional[int] = None) -> List[int]:
        """Synchronous single request (the A/B simulator's ranker protocol)."""
        ids, _ = self.search(query_id, k)
        return [int(service_id) for service_id in ids]

    def rank_batch(self, query_ids: Sequence[int],
                   k: Optional[int] = None) -> List[List[int]]:
        """Submit many requests, let the scheduler batch them, gather results."""
        handles = [self.submit(query_id, k) for query_id in query_ids]
        self.scheduler.flush()
        return [[int(service_id) for service_id in handle.result()[0]] for handle in handles]

    # ------------------------------------------------------------------ #
    # Batch execution (the scheduler's executor — one path, sync or async)
    # ------------------------------------------------------------------ #
    async def _execute_batch_async(self, batch: Sequence[PendingRequest]) -> List:
        """Scheduler executor with version re-pinning.

        The batch pins one snapshot and is answered entirely at its version.
        If two hot-swaps complete between the pin and the backend search (the
        workers then no longer hold the pinned version's tables), the batch
        re-pins the fresh snapshot and re-executes — still never mixing
        versions — instead of failing the requests.
        """
        last_error: Optional[BaseException] = None
        for _ in range(3):
            snapshot = self.store.snapshot(self.max_staleness_s)
            try:
                return await self._execute_batch_pinned(batch, snapshot)
            except StaleVersionError as error:
                last_error = error
        raise last_error

    async def _execute_batch_pinned(
            self, batch: Sequence[PendingRequest],
            snapshot) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Cache lookups + one vectorised search, all at ``snapshot``'s version.

        Duplicate ``(query_id, k)`` pairs inside the batch are coalesced into
        a single backend search; ``telemetry.backend_queries`` counts the
        de-duplicated lookups so the saving is observable.  A request with an
        unknown query id or invalid k fails alone (its result is an exception)
        instead of failing the whole batch; a request cancelled while its
        batch was in flight is skipped — its slot is never scored.

        Batch-level work (cache planning, the backend search) happens once
        per batch, so its spans are recorded once into a
        :class:`~repro.serving.obs.tracing.BatchSpans` and grafted into
        every traced request at collect time.
        """
        spans = None
        if self.tracer.enabled and any(
            pending.trace is not None and not pending.cancelled
            for pending in batch
        ):
            spans = BatchSpans(self._clock, self.tracer.batch_context())
        planned_at = self._clock() if spans is not None else 0.0
        resolved, hit_keys, misses = self._plan_batch(batch, snapshot)
        if spans is not None:
            spans.add("plan", planned_at, self._clock(), batch=len(batch),
                      cache_hits=len(hit_keys), backend_queries=len(misses),
                      version=snapshot.version)
        if misses:
            query_matrix = snapshot.query([query_id for query_id, _ in misses])
            max_k = max(k for _, k in misses)
            ids, scores = await self._search_backend_async(
                snapshot, query_matrix, max_k, spans=spans)
            for row, (query_id, k) in enumerate(misses):
                valid = ids[row, :k] >= 0
                value = (ids[row, :k][valid].copy(), scores[row, :k][valid].copy())
                resolved[(query_id, k)] = value
                self.cache.put((query_id, k, snapshot.version), value)
        return self._collect_results(batch, resolved, hit_keys, misses, spans)

    def _plan_batch(self, batch: Sequence[PendingRequest], snapshot):
        """Resolve each request from the cache or mark it a backend miss."""
        resolved: Dict[Tuple[int, int], object] = {}
        hit_keys = set()
        for pending in batch:
            if pending.cancelled:
                continue
            key = (pending.query_id, pending.k)
            if key in resolved:
                continue
            if not 0 <= pending.query_id < snapshot.num_queries:
                resolved[key] = IndexError(
                    f"query id {pending.query_id} out of range "
                    f"[0, {snapshot.num_queries}) in store v{snapshot.version}"
                )
                continue
            if pending.k <= 0:
                resolved[key] = ValueError("k must be positive")
                continue
            cached = self.cache.get((key[0], key[1], snapshot.version))
            if cached is not None:
                resolved[key] = cached
                hit_keys.add(key)
        misses = [
            (pending.query_id, pending.k)
            for pending in batch
            if not pending.cancelled
            and (pending.query_id, pending.k) not in resolved
        ]
        misses = list(dict.fromkeys(misses))  # preserve order, drop duplicates
        return resolved, hit_keys, misses

    def _collect_results(self, batch: Sequence[PendingRequest], resolved,
                         hit_keys, misses, spans=None) -> List:
        """Telemetry + one result (or per-request exception) per batch slot."""
        now = self._clock()
        self.telemetry.record_batch(len(batch), backend_queries=len(misses))
        results: List[object] = []
        for pending in batch:
            key = (pending.query_id, pending.k)
            value = resolved.get(key)
            if pending.cancelled or value is None:
                # The slot was never scored; the scheduler discards the
                # placeholder because a cancelled request cannot complete.
                results.append(asyncio.CancelledError("request cancelled"))
                continue
            self.telemetry.record_request(max(0.0, now - pending.enqueued_at),
                                          cache_hit=key in hit_keys,
                                          tag=pending.tag)
            if spans is not None and pending.trace is not None:
                spans.graft_into(pending.trace)
            results.append(value)
        return results

    # ------------------------------------------------------------------ #
    # Hot-swap (the daily embedding refresh, Sec. V-F / Fig. 9)
    # ------------------------------------------------------------------ #
    def hot_swap(self, query_embeddings: np.ndarray,
                 service_embeddings: np.ndarray) -> int:
        """Publish a new embedding version and rebuild the ANN index.

        The heavy lifting happens through the two-phase listener protocol:
        :meth:`prepare` builds the new index while the old version still
        serves, the store flips the reference, and :meth:`activate` drops
        the superseded cache entries.  The cache is keyed by version anyway,
        so even an un-invalidated stale entry could never be served.
        """
        return self.store.publish(query_embeddings, service_embeddings)

    def hot_swap_from_model(self, model) -> int:
        return self.hot_swap(model.query_embeddings(), model.service_embeddings())

    # ------------------------------------------------------------------ #
    # Quality probe + reporting
    # ------------------------------------------------------------------ #
    def recall_probe(self, k: int = 10, num_queries: int = 128, seed: int = 0) -> float:
        """ANN recall@k against the exact scan on a sample of stored queries."""
        snapshot = self.store.snapshot()
        rng = np.random.default_rng(seed)
        sample_size = min(num_queries, snapshot.num_queries)
        query_ids = rng.choice(snapshot.num_queries, size=sample_size, replace=False)
        query_matrix = snapshot.query(query_ids)
        exact_ids, _ = ExactIndex().build(snapshot.all_services()).search(query_matrix, k)
        approx_ids, _ = self._search_backend(snapshot, query_matrix, k)
        recall = recall_at_k(approx_ids, exact_ids, k)
        self.telemetry.record_recall(recall, k)
        return recall

    def summary(self) -> Dict[str, float]:
        """Telemetry summary enriched with store/cache/index state."""
        summary = self.telemetry.summary()
        summary["store_version"] = float(self.store.version)
        summary["cache_size"] = float(len(self.cache))
        return summary

    def health(self) -> HealthSnapshot:
        """The poll-cheap per-replica health signal (fleet-router feed)."""
        return self.telemetry.health()

    def explain(self, request) -> str:
        """Span tree of one request / trace / trace id, via the recorder."""
        return self.flight_recorder.explain(request)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Detach from the store's publish protocol and stop the scheduler.

        A store can outlive the gateways serving it; without unsubscribing,
        every future publish would keep building (and retaining) indexes for
        a gateway nobody queries any more.
        """
        self.store.unsubscribe(self)
        self.scheduler.close()
        if self._owns_cpu_executor and self._cpu_executor is not None:
            self._cpu_executor.shutdown(wait=False)
            self._cpu_executor = None

    def __enter__(self) -> "ServingGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def deploy_gateway(model=None, index: str = "ivf", index_params: Optional[dict] = None,
                   num_shards: int = 1, quantization: Sequence[str] = (),
                   quantization_params: Optional[dict] = None,
                   workers: str = "auto", warm_start: Optional[str] = None,
                   durable_dir: Optional[str] = None,
                   keep_last: Optional[int] = None,
                   remote_peer: Optional[Tuple[str, int]] = None,
                   **gateway_kwargs) -> ServingGateway:
    """Export a trained model's embeddings behind a full serving gateway.

    ``quantization`` kinds (``"int8"`` / ``"pq"`` / ``"opq"``) are published
    with every snapshot so compressed service tables hot-swap with the fp
    arrays, with per-kind options in ``quantization_params``; pick
    ``index="ivfpq"`` / ``"int8"`` to also *search* through quantized codes
    (``index_params={"rotation": "opq"}`` trains the IVF-PQ residual
    codebooks through the learned OPQ rotation).

    With ``num_shards > 1`` the one-call deployment becomes the sharded
    tier: a :class:`~repro.serving.sharded.ShardedGateway` runs one
    :class:`~repro.serving.sharded.ShardWorker` per contiguous store shard
    behind the same request path, with ``workers`` choosing the execution
    backend (``"process"`` / ``"thread"`` / ``"serial"`` / ``"auto"``).

    ``warm_start`` boots the store from an on-disk snapshot directory
    (:meth:`VersionedEmbeddingStore.restore`): tables and quantized codes
    are mmapped straight off the manifest's chunks — no re-quantization, no
    codebook training — and the shard layout comes from the manifest.  A
    corrupt or missing snapshot raises the snapshot layer's typed error; if
    ``model`` is also given, the gateway warns and falls back to the
    in-memory rebuild instead.  ``remote_peer=(host, port)`` points at a
    peer :class:`~repro.serving.snapshot.SnapshotServer`: the peer's live
    snapshot is replicated into ``warm_start`` over the wire *before* the
    restore, so a brand-new host with an **empty** directory boots
    bit-identical to the source fleet (failed replication falls back the
    same way a damaged local snapshot does).  ``durable_dir`` makes a
    model-built store publish durably from its first version;
    ``keep_last=N`` bounds the on-disk retention to the newest ``N``
    versions (plus whatever the manifest pointer references) by pruning
    after every activate.

    Either tier exposes the asyncio-native front-end: ``await
    gateway.search_async(query_id)`` from any event loop, with admission
    control, deadlines and cancellation configured through
    ``gateway_kwargs`` (``max_queue`` / ``overload`` /
    ``default_deadline_s`` / ``cpu_executor`` / ``loop_confined``).
    """
    if remote_peer is not None and warm_start is None:
        raise ValueError("remote_peer needs a warm_start directory to hydrate into")
    store = None
    if warm_start is not None:
        from repro.serving.snapshot import SnapshotError

        try:
            store = VersionedEmbeddingStore.restore(warm_start, remote=remote_peer)
        except SnapshotError as error:
            if model is None:
                raise
            warnings.warn(
                f"warm start from {warm_start!r} failed ({error}); rebuilding "
                f"the store from the model in memory",
                RuntimeWarning,
                stacklevel=2,
            )
    if store is None:
        if model is None:
            raise ValueError("deploy_gateway needs a model, a warm_start dir, or both")
        store = VersionedEmbeddingStore.from_model(
            model, num_shards=num_shards, quantization=quantization,
            quantization_params=quantization_params, durable_dir=durable_dir,
            keep_last=keep_last,
        )
    elif num_shards not in (1, store.num_shards):
        raise ValueError(
            f"warm-started snapshot was published with {store.num_shards} "
            f"shard(s); num_shards={num_shards} conflicts with its layout"
        )
    if store.num_shards > 1:
        from repro.serving.sharded import ShardedGateway

        return ShardedGateway(store, index=index, index_params=index_params,
                              workers=workers, **gateway_kwargs)
    return ServingGateway(store, index=index, index_params=index_params, **gateway_kwargs)


class IndexRetriever:
    """Adapter exposing a :class:`RetrievalIndex` through the seed retriever
    protocol (``retrieve(query_id, k, candidate_ids)``), so the existing
    :class:`~repro.serving.ranking.RankingModule` and
    :class:`~repro.serving.pipeline.ServingPipeline` can use ANN retrieval
    interchangeably with the exact scan.

    Candidate-restricted calls fall back to an exact scan over the subset
    (the restriction already bounds the cost); unrestricted calls go through
    the index.  The index tracks the store version and rebuilds after a
    refresh.
    """

    def __init__(self, store, index: str = "ivf",
                 index_params: Optional[dict] = None) -> None:
        self.store = store
        self.index_kind = index
        self.index_params = dict(index_params or {})
        self._index: Optional[RetrievalIndex] = None
        self._index_version: Optional[int] = None

    def _current_index(self) -> RetrievalIndex:
        version = getattr(self.store, "version", 0)
        if self._index is None or self._index_version != version:
            self._index = build_index(self.index_kind, self.store.all_services(),
                                      **self.index_params)
            self._index_version = version
        return self._index

    def retrieve(self, query_id: int, k: int,
                 candidate_ids: Optional[Sequence[int]] = None
                 ) -> Tuple[np.ndarray, np.ndarray]:
        if k <= 0:
            raise ValueError("k must be positive")
        query_embedding = self.store.query([query_id])[0]
        if candidate_ids is not None:
            candidates = np.asarray(candidate_ids, dtype=np.int64)
            if candidates.size == 0:
                return np.zeros(0, dtype=np.int64), np.zeros(0)
            scores = self.store.all_services()[candidates] @ query_embedding
            limit = min(k, candidates.size)
            top = np.argpartition(-scores, limit - 1)[:limit]
            order = top[np.argsort(-scores[top], kind="stable")]
            return candidates[order], scores[order]
        ids, scores = self._current_index().search(query_embedding[None, :], k)
        valid = ids[0] >= 0
        return ids[0][valid], scores[0][valid]
