"""LRU + TTL result cache for the serving gateway.

Results are keyed by ``(query_id, k, index_version)``.  Including the store
version in the key makes embedding hot-swaps self-invalidating: after a
daily refresh every lookup carries the new version and the stale entries
can never be served again — they simply age out of the LRU order.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import nullcontext
from typing import Any, Callable, Hashable, Optional, Tuple


class LRUTTLCache:
    """LRU cache whose entries also expire after ``ttl_s``.

    A ``capacity`` of 0 disables caching entirely (every ``get`` misses and
    ``put`` is a no-op) so callers need no special-casing.

    ``thread_safe=True`` (the default) guards every call with a lock — what
    the multi-threaded sync request path needs.  The asyncio-native gateway
    confines all cache access to one event loop, where the lock is pure
    overhead on every cache hit; ``thread_safe=False`` swaps it for a
    no-op :func:`~contextlib.nullcontext`, so a hit never takes (and can
    never block on) a lock.
    """

    def __init__(self, capacity: int = 1024, ttl_s: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic,
                 thread_safe: bool = True) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive (or None for no expiry)")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock() if thread_safe else nullcontext()
        self._entries: "OrderedDict[Hashable, Tuple[float, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            stored_at, value = entry
            if self.ttl_s is not None and self._clock() - stored_at > self.ttl_s:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = (self._clock(), value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_version(self, version: int) -> int:
        """Drop every entry keyed to ``version``; returns how many were removed.

        Version keys already prevent stale serves after a hot-swap; this is
        the eager variant that also frees the memory immediately.
        """
        with self._lock:
            stale = [key for key in self._entries if key[-1] == version]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
