"""Synthetic serving workloads for the gateway bench and tests.

Production search traffic is far from uniform: service embeddings live on a
cluster structure (categories / intention sub-trees) and query popularity is
heavy-tailed.  These helpers produce seeded workloads with both properties:

* :func:`clustered_embeddings` — query and service embeddings drawn around
  shared cluster centres, the regime in which ANN indexes are meaningful;
* :func:`zipf_query_ids` — a Zipf-distributed stream of query ids, the
  load shape used by the throughput bench (hot queries repeat, which also
  exercises the result cache).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def clustered_embeddings(num_queries: int, num_services: int, dim: int,
                         num_clusters: int = 16, spread: float = 0.25,
                         seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Seeded query/service embeddings sharing ``num_clusters`` centres.

    Centres are drawn on the unit sphere scaled to norm 1; members add
    isotropic noise with standard deviation ``spread``, so intra-cluster
    inner products dominate inter-cluster ones and exact top-K lists are
    recoverable by a coarse quantizer.
    """
    if num_clusters <= 0:
        raise ValueError("num_clusters must be positive")
    rng = np.random.default_rng(seed)
    centres = rng.normal(size=(num_clusters, dim))
    centres /= np.linalg.norm(centres, axis=1, keepdims=True) + 1e-12
    query_cells = rng.integers(num_clusters, size=num_queries)
    service_cells = rng.integers(num_clusters, size=num_services)
    queries = centres[query_cells] + spread * rng.normal(size=(num_queries, dim))
    services = centres[service_cells] + spread * rng.normal(size=(num_services, dim))
    return queries, services


def zipf_query_ids(num_queries: int, num_requests: int, exponent: float = 1.1,
                   seed: int = 0) -> np.ndarray:
    """A Zipf-distributed request stream over ``num_queries`` distinct ids.

    Rank ``r`` (1-based) is drawn with probability proportional to
    ``r ** -exponent``; ranks are then shuffled onto query ids so the hot
    set is not simply the lowest ids.
    """
    if num_queries <= 0 or num_requests <= 0:
        raise ValueError("num_queries and num_requests must be positive")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    rng = np.random.default_rng(seed)
    weights = np.arange(1, num_queries + 1, dtype=np.float64) ** -exponent
    weights /= weights.sum()
    ranks = rng.choice(num_queries, size=num_requests, p=weights)
    permutation = rng.permutation(num_queries)
    return permutation[ranks].astype(np.int64)
