"""Synthetic serving workloads for the gateway bench and tests.

Production search traffic is far from uniform: service embeddings live on a
cluster structure (categories / intention sub-trees) and query popularity is
heavy-tailed.  These helpers produce seeded workloads with both properties:

* :func:`clustered_embeddings` — query and service embeddings drawn around
  shared cluster centres, the regime in which ANN indexes are meaningful;
* :func:`zipf_query_ids` — a Zipf-distributed stream of query ids, the
  load shape used by the throughput bench (hot queries repeat, which also
  exercises the result cache);
* :func:`poisson_gaps` / :func:`flash_crowd_gaps` — seeded inter-arrival
  gaps for open-loop replay: a stationary Poisson process, and the same
  process with a windowed rate spike (a flash crowd — promo traffic,
  a viral query — arriving at ``spike_factor`` times the base rate).
  Shared by the A/B tier's day replay and the serving/fleet benches so
  every driver speaks the same arrival language.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def clustered_embeddings(num_queries: int, num_services: int, dim: int,
                         num_clusters: int = 16, spread: float = 0.25,
                         seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Seeded query/service embeddings sharing ``num_clusters`` centres.

    Centres are drawn on the unit sphere scaled to norm 1; members add
    isotropic noise with standard deviation ``spread``, so intra-cluster
    inner products dominate inter-cluster ones and exact top-K lists are
    recoverable by a coarse quantizer.
    """
    if num_clusters <= 0:
        raise ValueError("num_clusters must be positive")
    rng = np.random.default_rng(seed)
    centres = rng.normal(size=(num_clusters, dim))
    centres /= np.linalg.norm(centres, axis=1, keepdims=True) + 1e-12
    query_cells = rng.integers(num_clusters, size=num_queries)
    service_cells = rng.integers(num_clusters, size=num_services)
    queries = centres[query_cells] + spread * rng.normal(size=(num_queries, dim))
    services = centres[service_cells] + spread * rng.normal(size=(num_services, dim))
    return queries, services


def zipf_query_ids(num_queries: int, num_requests: int, exponent: float = 1.1,
                   seed: int = 0) -> np.ndarray:
    """A Zipf-distributed request stream over ``num_queries`` distinct ids.

    Rank ``r`` (1-based) is drawn with probability proportional to
    ``r ** -exponent``; ranks are then shuffled onto query ids so the hot
    set is not simply the lowest ids.
    """
    if num_queries <= 0 or num_requests <= 0:
        raise ValueError("num_queries and num_requests must be positive")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    rng = np.random.default_rng(seed)
    weights = np.arange(1, num_queries + 1, dtype=np.float64) ** -exponent
    weights /= weights.sum()
    ranks = rng.choice(num_queries, size=num_requests, p=weights)
    permutation = rng.permutation(num_queries)
    return permutation[ranks].astype(np.int64)


def poisson_gaps(num_requests: int, rate_qps: float, seed: int = 0,
                 rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Seeded inter-arrival gaps of a stationary Poisson process.

    Pass ``rng`` to continue an existing seeded stream (the A/B replay
    derives one per day); otherwise ``seed`` starts a fresh one.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    if rng is None:
        rng = np.random.default_rng(seed)
    return rng.exponential(1.0 / rate_qps, size=num_requests)


def flash_crowd_gaps(num_requests: int, base_qps: float,
                     spike_factor: float = 10.0, spike_start: float = 0.45,
                     spike_width: float = 0.1, seed: int = 0,
                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Poisson gaps with a flash-crowd window at ``spike_factor`` x rate.

    The window is defined over the *request stream*: the sessions in
    ``[spike_start, spike_start + spike_width)`` of the stream arrive at
    ``spike_factor * base_qps`` — the same population compressed into a
    fraction of the wall-clock (which is what a crowd is).  With
    ``spike_factor=1`` this degenerates to :func:`poisson_gaps` exactly
    (same draws, same gaps).
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if base_qps <= 0:
        raise ValueError("base_qps must be positive")
    if spike_factor < 1.0:
        raise ValueError("spike_factor must be >= 1.0")
    if not (0.0 <= spike_start and spike_start + spike_width <= 1.0
            and spike_width > 0.0):
        raise ValueError("the spike window must lie inside [0, 1]")
    if rng is None:
        rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / base_qps, size=num_requests)
    lo = int(round(spike_start * num_requests))
    hi = min(num_requests, max(lo + 1, int(round((spike_start + spike_width)
                                                 * num_requests))))
    gaps[lo:hi] /= spike_factor
    return gaps
