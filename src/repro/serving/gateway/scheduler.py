"""Micro-batching request scheduler: an asyncio-native core + a sync shim.

Single-request serving wastes the hardware: scoring one query against the
catalogue is a matvec, while scoring 64 queued queries together is one BLAS
matmul at nearly the same wall-clock cost.  The scheduler coalesces
concurrent requests into such batches under a latency contract:

* a batch is dispatched as soon as ``max_batch_size`` requests are queued, or
* when the *oldest* queued request has waited ``max_wait_s`` (the deadline),
  whichever comes first.

:class:`AsyncBatchScheduler` is the single batching implementation.  The
thread-per-wait design it replaces parked one thread on an ``Event`` per
in-flight request, capping a process at hundreds of concurrent requests;
here every request is an ``asyncio``-completable handle and one loop task
drives the deadline flushes, so thousands of requests can be in flight at
the same micro-batch deadlines.  On top of the PR-1 batching contract it
adds the request-lifecycle controls a loop front-end needs:

* **admission control** — a bounded queue (``max_queue``) with two
  backpressure policies: ``overload="reject"`` fails the submit with
  :class:`OverloadError` immediately, ``overload="wait"`` parks the *async*
  submitter on a FIFO waiter future until a slot frees (the sync
  ``submit_nowait`` always rejects when full — there is no loop to park on);
* **deadline propagation** — a request may carry a deadline; requests past
  it are failed with :class:`DeadlineExceededError` *before* scoring, so an
  overloaded queue sheds work it could no longer answer in time;
* **cooperative cancellation** — a cancelled request's slot is dropped when
  its batch is formed, so its query is never scored;
* **graceful shutdown** — :meth:`AsyncBatchScheduler.stop` cancels the
  drive task and drains the queue, completing every in-flight future.

:class:`BatchScheduler` is the backwards-compatible synchronous facade: the
same ``submit`` / ``poll`` / ``flush`` / ``start`` / ``stop`` surface as the
PR-1 thread scheduler, now implemented as a thin shim that drives the async
core on a private event loop (``run_until_complete`` for the explicit
``poll``/``flush`` protocol, a single loop thread for :meth:`~BatchScheduler.
start`).  It is a wrapper, not a sibling implementation: every batch —
sync or async — is formed and executed by the same core.

The clock is injectable so deadline semantics are unit-testable without
sleeping (drive ``poll`` explicitly, as the benches and the examples do).
"""

from __future__ import annotations

import asyncio
import inspect
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Sequence

from repro.serving.obs.metrics import Histogram
from repro.serving.obs.tracing import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
)

OVERLOAD_POLICIES = ("wait", "reject")


class OverloadError(RuntimeError):
    """Admission control rejected a request: the bounded queue is full."""


class DeadlineExceededError(TimeoutError):
    """A request aged past its deadline before its batch was scored."""


class PendingRequest:
    """Completable handle for one enqueued request (sync *and* async).

    The synchronous side blocks on :meth:`result`; the asynchronous side
    ``await``\\ s the handle (an :class:`asyncio.Future` is attached lazily
    on the awaiting loop).  :meth:`cancel` is cooperative: a request
    cancelled while queued is dropped when its batch is formed — its slot
    is never scored.
    """

    def __init__(
        self,
        query_id: int,
        k: int,
        enqueued_at: float,
        deadline_at: Optional[float] = None,
        tag: Optional[str] = None,
        trace=None,
    ) -> None:
        self.query_id = query_id
        self.k = k
        self.enqueued_at = enqueued_at
        self.deadline_at = deadline_at
        #: Telemetry attribution tag (e.g. the A/B experiment bucket); every
        #: answered/shed event for this request is recorded under it.
        self.tag = tag
        #: The request's :class:`~repro.serving.obs.tracing.Trace`, or None
        #: when tracing is off; instrumentation sites guard on it.
        self.trace = trace
        self.completed_at: Optional[float] = None
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._cancelled = False
        self._future: Optional[asyncio.Future] = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> bool:
        """Cooperatively cancel; returns False when already completed."""
        if self._event.is_set():
            return False
        self._cancelled = True
        self._error = asyncio.CancelledError("request cancelled")
        self._event.set()
        if self._future is not None and not self._future.done():
            self._future.cancel()
        if self.trace is not None:
            self.trace.finish("cancelled")
        return True

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the batch containing this request has executed."""
        if not self._event.wait(timeout):
            raise TimeoutError("request not completed within timeout")
        if self._error is not None:
            raise self._error
        return self._value

    async def wait(self) -> Any:
        """Await completion on the current event loop."""
        if self._event.is_set():
            if self._error is not None:
                raise self._error
            return self._value
        if self._future is None:
            self._future = asyncio.get_running_loop().create_future()
        return await self._future

    def __await__(self):
        return self.wait().__await__()

    def _complete(self, value: Any, completed_at: float) -> None:
        if self._event.is_set():  # already cancelled or failed: drop the value
            return
        self._value = value
        self.completed_at = completed_at
        self._event.set()
        if self._future is not None and not self._future.done():
            self._future.set_result(value)

    def _fail(self, error: BaseException, completed_at: float) -> None:
        if self._event.is_set():
            return
        self._error = error
        self.completed_at = completed_at
        self._event.set()
        if self._future is not None and not self._future.done():
            self._future.set_exception(error)


class AsyncBatchScheduler:
    """Coalesce concurrent requests into vectorised batches on one loop.

    ``executor`` receives the list of live :class:`PendingRequest` of one
    batch and returns one result per request (same order); it may be a
    plain callable or a coroutine function.  A raised exception propagates
    to every request of the failed batch; an exception *returned* in place
    of a single result fails only that request.  A plain-callable executor
    can be pushed off the loop through ``cpu_executor`` (any
    :class:`concurrent.futures.Executor`) so scoring never blocks it.

    The scheduler binds to an event loop lazily (first coroutine that
    touches it) and may rebind when idle — which is how one scheduler can
    serve the sync facade's private loop and a caller's ``asyncio.run``
    in the same process, just not concurrently.

    ``telemetry`` (optionally a
    :class:`~repro.serving.gateway.telemetry.GatewayTelemetry`) receives
    queue-depth, overload, deadline-miss, cancellation and loop-lag events.
    """

    def __init__(
        self,
        executor: Callable[[Sequence[PendingRequest]], Sequence[Any]],
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        max_queue: Optional[int] = None,
        overload: str = "wait",
        cpu_executor=None,
        clock: Callable[[], float] = time.monotonic,
        telemetry=None,
        tracer=None,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")
        if max_queue is not None and max_queue <= 0:
            raise ValueError("max_queue must be positive (or None for unbounded)")
        if overload not in OVERLOAD_POLICIES:
            known = ", ".join(OVERLOAD_POLICIES)
            raise ValueError(f"unknown overload policy {overload!r} (known: {known})")
        self.executor = executor
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.max_queue = max_queue
        self.overload = overload
        self.cpu_executor = cpu_executor
        self.telemetry = telemetry
        self.tracer = tracer
        self._clock = clock
        self._queue: Deque[PendingRequest] = deque()
        self._waiters: Deque[asyncio.Future] = deque()
        # Slots already granted to woken waiters but not yet enqueued; they
        # count against max_queue so fresh submitters cannot steal them.
        self._reserved = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self._drive_task: Optional[asyncio.Task] = None
        self.batches_dispatched = 0
        self.requests_dispatched = 0
        self.overload_rejections = 0
        self.deadline_misses = 0
        self.cancelled_requests = 0
        self.max_queue_depth = 0
        self._in_flight = 0
        #: Executor wall-time distribution — a fixed-bucket histogram, so
        #: the scheduler's own footprint stays O(buckets) under sustained
        #: traffic (the per-batch latency list it replaces grew forever).
        self.execute_latency = Histogram()

    # ------------------------------------------------------------------ #
    # Loop binding
    # ------------------------------------------------------------------ #
    def check_rebind(self, loop: Optional[asyncio.AbstractEventLoop]) -> None:
        """Raise if this scheduler is pinned to a different live loop.

        Queued requests without an attached future are loop-agnostic (their
        sync side is a plain Event); what actually pins the old loop is an
        awaited future, a parked admission waiter, or a live drive task.
        Sync callers check *before* enqueueing so a cross-loop mistake
        fails cleanly instead of leaving a phantom request behind.
        """
        if self._loop is None or self._loop is loop:
            return
        pinned = any(
            pending._future is not None and not pending._future.done()
            for pending in self._queue
        )
        driving = self._drive_task is not None and not self._drive_task.done()
        if pinned or self._waiters or driving:
            raise RuntimeError(
                "scheduler is bound to another event loop with work in flight"
            )

    def _bind_running_loop(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is not loop:
            self.check_rebind(loop)
            self._loop = loop
            self._wake = asyncio.Event()
            self._drive_task = None
        return loop

    def _notify(self) -> None:
        if self._wake is not None:
            self._wake.set()

    # ------------------------------------------------------------------ #
    # Producer side (admission control)
    # ------------------------------------------------------------------ #
    def _make_pending(
        self,
        query_id: int,
        k: int,
        deadline_s: Optional[float],
        entered_at: Optional[float] = None,
        tag: Optional[str] = None,
    ) -> PendingRequest:
        """Build the handle; the deadline counts from ``entered_at``.

        ``entered_at`` is when the caller *asked* (before any admission
        park), so under overload the deadline bounds the latency the caller
        actually observes — time spent waiting for a queue slot included.

        With tracing on, the request's trace starts here: the admission
        span covers ``entered_at`` → enqueue (any waiter park included).
        """
        now = self._clock()
        if entered_at is None:
            entered_at = now
        deadline_at = None if deadline_s is None else entered_at + float(deadline_s)
        trace = None
        if self.tracer is not None and self.tracer.enabled:
            trace = self.tracer.start_request(query_id, tag=tag, start_s=entered_at)
            # Stage marks, not spans: the admission span materialises only
            # if something inspects the trace.
            trace.admission_end_s = now
            trace.queue_depth = len(self._queue)
        return PendingRequest(int(query_id), int(k), now,
                              deadline_at=deadline_at, tag=tag, trace=trace)

    def _reject_overload(
        self, tag: Optional[str] = None, query_id: Optional[int] = None
    ) -> None:
        self.overload_rejections += 1
        if self.telemetry is not None:
            self.telemetry.record_overload(tag=tag)
        if self.tracer is not None and self.tracer.enabled:
            # Shed requests still leave a trace: a zero-length admission
            # span, finished "shed" — the flight recorder always keeps it.
            now = self._clock()
            trace = self.tracer.start_request(query_id, tag=tag, start_s=now)
            trace.add_span("admission", now, now, status=STATUS_SHED)
            trace.finish(STATUS_SHED, end_s=now, reason="overload")
        raise OverloadError(
            f"admission queue full ({len(self._queue)}/{self.max_queue} requests)"
        )

    def _enqueue(self, pending: PendingRequest) -> PendingRequest:
        self._queue.append(pending)
        depth = len(self._queue)
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        if self.telemetry is not None:
            self.telemetry.record_queue_depth(depth)
        self._notify()
        return pending

    def submit_nowait(
        self, query_id: int, k: int, deadline_s: Optional[float] = None,
        tag: Optional[str] = None,
    ) -> PendingRequest:
        """Enqueue without awaiting; a full bounded queue always rejects."""
        if self.max_queue is not None and len(self._queue) >= self.max_queue:
            self._reject_overload(tag=tag, query_id=query_id)
        return self._enqueue(self._make_pending(query_id, k, deadline_s, tag=tag))

    async def submit(
        self, query_id: int, k: int, deadline_s: Optional[float] = None,
        tag: Optional[str] = None,
    ) -> PendingRequest:
        """Enqueue under the configured backpressure policy.

        ``overload="reject"`` raises :class:`OverloadError` when the bounded
        queue is full; ``overload="wait"`` parks this submitter on a FIFO
        waiter future until the drive loop frees a slot.  Admission is
        fair: a woken waiter holds a *reserved* slot, and a fresh submitter
        parks behind existing waiters instead of stealing it.  A request's
        deadline counts from this call, so time parked in admission counts
        against it.
        """
        self._bind_running_loop()
        entered = self._clock()
        if self.max_queue is not None and (
            self._waiters or len(self._queue) + self._reserved >= self.max_queue
        ):
            if self.overload == "reject":
                self._reject_overload(tag=tag, query_id=query_id)
            waiter = self._loop.create_future()
            self._waiters.append(waiter)
            try:
                await waiter  # resolved with a reserved slot attached
            except BaseException:
                if waiter in self._waiters:
                    self._waiters.remove(waiter)
                elif waiter.done() and not waiter.cancelled():
                    self._reserved -= 1  # granted but never consumed
                raise
            self._reserved -= 1
        return self._enqueue(
            self._make_pending(query_id, k, deadline_s, entered_at=entered, tag=tag)
        )

    @property
    def pending_count(self) -> int:
        return len(self._queue)

    @property
    def in_flight_count(self) -> int:
        """Requests in the batch currently executing (0 between batches).

        A stalled executor hides its whole batch from ``pending_count``
        (the queue drained into it when the batch was taken), so load
        probes that want "work not yet answered" must sum both counts.
        """
        return self._in_flight

    # ------------------------------------------------------------------ #
    # Dispatch side
    # ------------------------------------------------------------------ #
    def _due(self, now: float) -> bool:
        if not self._queue:
            return False
        if len(self._queue) >= self.max_batch_size:
            return True
        return now - self._queue[0].enqueued_at >= self.max_wait_s

    def _take(self) -> List[PendingRequest]:
        count = min(self.max_batch_size, len(self._queue))
        batch = [self._queue.popleft() for _ in range(count)]
        free = (
            len(self._waiters)
            if self.max_queue is None
            else max(0, self.max_queue - len(self._queue) - self._reserved)
        )
        while self._waiters and free > 0:
            waiter = self._waiters.popleft()
            if waiter.done():  # cancelled while parked: no slot to grant
                continue
            waiter.set_result(None)
            self._reserved += 1
            free -= 1
        return batch

    async def _call_executor(self, live: Sequence[PendingRequest]) -> Sequence[Any]:
        if self.cpu_executor is not None and not asyncio.iscoroutinefunction(
            self.executor
        ):
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(self.cpu_executor, self.executor, live)
        result = self.executor(live)
        if inspect.isawaitable(result):
            return await result
        return result

    async def _run(self, batch: List[PendingRequest]) -> int:
        """Execute one formed batch; returns how many requests it covered.

        Cancelled slots are dropped (never scored) and requests past their
        deadline are failed before scoring — load is shed at the cheapest
        possible point.  The batch is visible through
        :attr:`in_flight_count` for as long as it executes.
        """
        self._in_flight = len(batch)
        try:
            return await self._run_batch(batch)
        finally:
            self._in_flight = 0

    async def _run_batch(self, batch: List[PendingRequest]) -> int:
        now = self._clock()
        live: List[PendingRequest] = []
        for pending in batch:
            trace = pending.trace
            if pending.cancelled:
                self.cancelled_requests += 1
                if self.telemetry is not None:
                    self.telemetry.record_cancelled(tag=pending.tag)
                continue  # cancel() already finished its trace
            if pending.deadline_at is not None and now >= pending.deadline_at:
                self.deadline_misses += 1
                if self.telemetry is not None:
                    self.telemetry.record_deadline_miss(tag=pending.tag)
                if trace is not None:
                    trace.add_span(
                        "queue", pending.enqueued_at, now, status=STATUS_SHED
                    )
                    trace.finish(STATUS_SHED, end_s=now, reason="deadline")
                pending._fail(
                    DeadlineExceededError(
                        f"request waited {now - pending.enqueued_at:.4f}s, "
                        f"past its deadline"
                    ),
                    now,
                )
                continue
            live.append(pending)
            if trace is not None:
                # Queue wait ends at batch formation (stage mark, not span).
                trace.queue_end_s = now
        if not live:
            return len(batch)
        started = self._clock()
        try:
            results = await self._call_executor(live)
            if len(results) != len(live):
                raise RuntimeError(
                    f"executor returned {len(results)} results "
                    f"for a batch of {len(live)}"
                )
        except asyncio.CancelledError:
            completed = self._clock()
            for pending in live:
                pending._fail(asyncio.CancelledError("scheduler stopped"), completed)
                if pending.trace is not None:
                    pending.trace.finish("cancelled", end_s=completed)
            raise
        except BaseException as error:  # propagate to all waiters, keep serving
            completed = self._clock()
            for pending in live:
                pending._fail(error, completed)
                if pending.trace is not None:
                    pending.trace.finish(
                        STATUS_ERROR, end_s=completed, error=type(error).__name__
                    )
            self.execute_latency.observe(max(0.0, completed - started))
            return len(batch)
        completed = self._clock()
        for pending, value in zip(live, results):
            trace = pending.trace
            if isinstance(value, BaseException):
                pending._fail(value, completed)
                if trace is not None:
                    trace.finish(
                        STATUS_ERROR, end_s=completed, error=type(value).__name__
                    )
            else:
                pending._complete(value, completed)
                if trace is not None:
                    reply_end = self._clock()
                    trace.reply_start_s = completed
                    trace.reply_end_s = reply_end
                    trace.finish_ok(reply_end)
        self.batches_dispatched += 1
        self.requests_dispatched += len(live)
        self.execute_latency.observe(max(0.0, completed - started))
        return len(batch)

    async def poll(self) -> int:
        """Dispatch batches whose size or deadline trigger fired."""
        self._bind_running_loop()
        dispatched = 0
        while self._due(self._clock()):
            dispatched += await self._run(self._take())
        return dispatched

    async def flush(self) -> int:
        """Dispatch everything queued regardless of deadlines."""
        self._bind_running_loop()
        dispatched = 0
        while self._queue:
            dispatched += await self._run(self._take())
        return dispatched

    # ------------------------------------------------------------------ #
    # The drive loop (one task per scheduler, replaces the poll thread)
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Ensure the deadline-driving task runs on the current loop."""
        loop = self._bind_running_loop()
        if self._drive_task is None or self._drive_task.done():
            self._drive_task = loop.create_task(
                self._drive(), name="async-batch-scheduler"
            )

    async def _drive(self) -> None:
        while True:
            if not self._queue:
                self._wake.clear()
                if self._queue:  # lost race: enqueued between check and clear
                    continue
                await self._wake.wait()
                continue
            now = self._clock()
            if self._due(now):
                await self._run(self._take())
                continue
            delay = max(0.0, self.max_wait_s - (now - self._queue[0].enqueued_at))
            self._wake.clear()
            target = self._loop.time() + delay
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=delay)
            except asyncio.TimeoutError:
                # The sleep ran its full deadline: anything beyond it is the
                # event loop running late (too much work between awaits).
                lag = self._loop.time() - target
                if self.telemetry is not None and lag > 0:
                    self.telemetry.record_loop_lag(lag)

    async def stop(self, drain: bool = True) -> None:
        """Cancel the drive task; drain (default) or cancel in-flight work.

        Parked admission waiters (``overload="wait"`` submitters) are
        cancelled — their ``submit`` raises :class:`asyncio.CancelledError`
        instead of enqueueing into a scheduler that no longer dispatches.
        """
        if self._drive_task is not None:
            self._drive_task.cancel()
            try:
                await self._drive_task
            except asyncio.CancelledError:
                pass
            self._drive_task = None
        if drain:
            while self._queue or self._waiters or self._reserved:
                self._cancel_waiters()
                await self.flush()
                # A waiter the drain released before we cancelled (it holds
                # a reserved slot) resumes on the next tick and enqueues;
                # give it that tick, then sweep again until nothing is
                # queued, parked, or holding a granted slot.
                await asyncio.sleep(0)
        else:
            while self._queue or self._waiters or self._reserved:
                self._cancel_waiters()
                while self._queue:
                    pending = self._queue.popleft()
                    if pending.cancel():
                        self.cancelled_requests += 1
                await asyncio.sleep(0)

    def _cancel_waiters(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.cancel()

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Dispatch-side counters + executor wall-time percentiles (ms).

        The executor latency is the batch's whole backend execution — for
        the sharded gateway that is the scatter/gather round trip, which the
        per-shard telemetry then decomposes shard by shard.  Percentiles are
        bucket-interpolated from the fixed histogram (bounded relative
        error), not re-sorted from raw history.
        """
        hist = self.execute_latency
        if hist.count:
            p50 = hist.percentile(50) * 1e3
            p95 = hist.percentile(95) * 1e3
            mean = hist.mean * 1e3
        else:
            p50 = p95 = mean = float("nan")
        return {
            "batches_dispatched": float(self.batches_dispatched),
            "requests_dispatched": float(self.requests_dispatched),
            "mean_execute_ms": mean,
            "p50_execute_ms": p50,
            "p95_execute_ms": p95,
            "overload_rejections": float(self.overload_rejections),
            "deadline_misses": float(self.deadline_misses),
            "cancelled_requests": float(self.cancelled_requests),
            "max_queue_depth": float(self.max_queue_depth),
        }


class BatchScheduler:
    """Synchronous facade over :class:`AsyncBatchScheduler` (the PR-1 API).

    ``submit`` / ``poll`` / ``flush`` drive the async core to completion on
    a private event loop, so explicit-poll callers (tests, benches, the
    deterministic FakeClock suites) see the exact PR-1 semantics — full
    batches dispatch inside ``submit``, ``poll`` honours the oldest
    request's deadline.  :meth:`start` runs the core's drive task on a
    single background loop thread (replacing the PR-1 poll thread); every
    producer-thread call is then marshalled onto that loop, keeping all
    scheduler state loop-confined.
    """

    def __init__(
        self,
        executor: Callable[[Sequence[PendingRequest]], Sequence[Any]],
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        clock: Callable[[], float] = time.monotonic,
        **async_kwargs,
    ) -> None:
        self.async_scheduler = AsyncBatchScheduler(
            executor,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            clock=clock,
            **async_kwargs,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        # Legacy multi-threaded producers may drive poll/flush concurrently;
        # the private loop can only run one coroutine at a time, so sync
        # driving serialises here (the background/async paths never take it).
        self._sync_lock = threading.Lock()

    # Delegated configuration / counters (the PR-1 attribute surface).
    @property
    def executor(self):
        return self.async_scheduler.executor

    @property
    def max_batch_size(self) -> int:
        return self.async_scheduler.max_batch_size

    @property
    def max_wait_s(self) -> float:
        return self.async_scheduler.max_wait_s

    @property
    def pending_count(self) -> int:
        return self.async_scheduler.pending_count

    @property
    def in_flight_count(self) -> int:
        return self.async_scheduler.in_flight_count

    @property
    def batches_dispatched(self) -> int:
        return self.async_scheduler.batches_dispatched

    @property
    def requests_dispatched(self) -> int:
        return self.async_scheduler.requests_dispatched

    @property
    def execute_latency(self) -> Histogram:
        return self.async_scheduler.execute_latency

    def stats(self) -> dict:
        return self.async_scheduler.stats()

    # ------------------------------------------------------------------ #
    # Driving the async core from synchronous callers
    # ------------------------------------------------------------------ #
    def _own_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None or self._loop.is_closed():
            self._loop = asyncio.new_event_loop()
        return self._loop

    def _background(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run_sync(self, factory: Callable[[], Any]) -> Any:
        """Run one core coroutine to completion from the calling thread."""
        if self._background():
            return asyncio.run_coroutine_threadsafe(factory(), self._loop).result()
        with self._sync_lock:
            return self._own_loop().run_until_complete(factory())

    def submit(
        self, query_id: int, k: int, deadline_s: Optional[float] = None,
        tag: Optional[str] = None,
    ) -> PendingRequest:
        """Enqueue one request; dispatches immediately on a full batch."""
        core = self.async_scheduler
        if self._background():
            return self._run_sync(lambda: core.submit(query_id, k, deadline_s, tag))
        # Fail a cross-loop mistake (sync call while the core serves a live
        # async loop) BEFORE enqueueing, so no phantom request is left in
        # the foreign loop's queue.
        core.check_rebind(self._loop)
        pending = core.submit_nowait(query_id, k, deadline_s, tag=tag)
        if core.pending_count >= core.max_batch_size:
            self._run_sync(core.poll)
        return pending

    def poll(self) -> int:
        """Dispatch batches whose size or deadline trigger fired."""
        return self._run_sync(self.async_scheduler.poll)

    def flush(self) -> int:
        """Dispatch everything queued regardless of deadlines."""
        return self._run_sync(self.async_scheduler.flush)

    # ------------------------------------------------------------------ #
    # Background deadline driver (one loop thread, not one thread per wait)
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Run the core's drive task on a background event-loop thread."""
        if self._background():
            return
        loop = self._own_loop()
        ready = threading.Event()

        def _serve() -> None:
            asyncio.set_event_loop(loop)
            loop.call_soon(ready.set)
            loop.run_forever()

        self._thread = threading.Thread(
            target=_serve, name="batch-scheduler", daemon=True
        )
        self._thread.start()
        ready.wait(timeout=5.0)

        async def _start() -> None:
            self.async_scheduler.start()

        asyncio.run_coroutine_threadsafe(_start(), loop).result(timeout=5.0)

    def stop(self) -> None:
        """Stop the background loop thread and drain the queue."""
        if self._background():
            asyncio.run_coroutine_threadsafe(
                self.async_scheduler.stop(), self._loop
            ).result(timeout=30.0)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)
        self._thread = None
        self.flush()

    def close(self) -> None:
        """Release the private loop; the scheduler is unusable afterwards."""
        if self._background():
            self.stop()
        if self._loop is not None and not self._loop.is_closed():
            if not self._loop.is_running():
                self._loop.close()
            self._loop = None

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass
