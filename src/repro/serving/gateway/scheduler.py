"""Micro-batching request scheduler for the serving gateway.

Single-request serving wastes the hardware: scoring one query against the
catalogue is a matvec, while scoring 64 queued queries together is one BLAS
matmul at nearly the same wall-clock cost.  The scheduler coalesces
concurrent requests into such batches under a latency contract:

* a batch is dispatched as soon as ``max_batch_size`` requests are queued, or
* when the *oldest* queued request has waited ``max_wait_s`` (the deadline),
  whichever comes first.

The clock is injectable so deadline semantics are unit-testable without
sleeping, and an optional background thread drives the deadline flushes for
real concurrent use (the bench and the example drive ``poll`` explicitly).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional, Sequence


class PendingRequest:
    """Future-like handle for one enqueued request."""

    def __init__(self, query_id: int, k: int, enqueued_at: float) -> None:
        self.query_id = query_id
        self.k = k
        self.enqueued_at = enqueued_at
        self.completed_at: Optional[float] = None
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the batch containing this request has executed."""
        if not self._event.wait(timeout):
            raise TimeoutError("request not completed within timeout")
        if self._error is not None:
            raise self._error
        return self._value

    def _complete(self, value: Any, completed_at: float) -> None:
        self._value = value
        self.completed_at = completed_at
        self._event.set()

    def _fail(self, error: BaseException, completed_at: float) -> None:
        self._error = error
        self.completed_at = completed_at
        self._event.set()


class BatchScheduler:
    """Coalesce concurrent requests into vectorised batches with a deadline.

    ``executor`` receives the list of :class:`PendingRequest` of one batch
    and returns one result per request (same order).  A raised exception
    propagates to every request of the failed batch; an exception *returned*
    in place of a single result fails only that request, so one malformed
    request cannot take down its batch-mates.
    """

    def __init__(self, executor: Callable[[Sequence[PendingRequest]], Sequence[Any]],
                 max_batch_size: int = 32, max_wait_s: float = 0.002,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")
        self.executor = executor
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self._clock = clock
        self._lock = threading.Lock()
        self._queue: List[PendingRequest] = []
        self._worker: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.batches_dispatched = 0
        self.requests_dispatched = 0
        self.execute_latencies_s: List[float] = []

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def submit(self, query_id: int, k: int) -> PendingRequest:
        """Enqueue one request; dispatches immediately on a full batch."""
        pending = PendingRequest(int(query_id), int(k), self._clock())
        batch: List[PendingRequest] = []
        with self._lock:
            self._queue.append(pending)
            if len(self._queue) >= self.max_batch_size:
                batch = self._take_locked()
        if batch:
            self._run(batch)
        return pending

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._queue)

    # ------------------------------------------------------------------ #
    # Dispatch side
    # ------------------------------------------------------------------ #
    def _take_locked(self) -> List[PendingRequest]:
        batch = self._queue[: self.max_batch_size]
        self._queue = self._queue[self.max_batch_size:]
        return batch

    def _run(self, batch: List[PendingRequest]) -> None:
        now = self._clock
        started = now()
        try:
            results = self.executor(batch)
            if len(results) != len(batch):
                raise RuntimeError(
                    f"executor returned {len(results)} results for a batch of {len(batch)}"
                )
        except BaseException as error:  # propagate to all waiters, keep serving
            completed = now()
            for pending in batch:
                pending._fail(error, completed)
            with self._lock:
                self.execute_latencies_s.append(max(0.0, completed - started))
            return
        completed = now()
        for pending, value in zip(batch, results):
            if isinstance(value, BaseException):
                pending._fail(value, completed)
            else:
                pending._complete(value, completed)
        with self._lock:  # _run can race between submit() and the poll thread
            self.batches_dispatched += 1
            self.requests_dispatched += len(batch)
            self.execute_latencies_s.append(max(0.0, completed - started))

    def stats(self) -> dict:
        """Dispatch-side counters + executor wall-time percentiles (ms).

        The executor latency is the batch's whole backend execution — for
        the sharded gateway that is the scatter/gather round trip, which the
        per-shard telemetry then decomposes shard by shard.
        """
        with self._lock:
            latencies = list(self.execute_latencies_s)
            batches = self.batches_dispatched
            requests = self.requests_dispatched
        if latencies:
            ordered = sorted(latencies)
            p50 = ordered[len(ordered) // 2] * 1e3
            p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))] * 1e3
            mean = sum(latencies) / len(latencies) * 1e3
        else:
            p50 = p95 = mean = float("nan")
        return {
            "batches_dispatched": float(batches),
            "requests_dispatched": float(requests),
            "mean_execute_ms": mean,
            "p50_execute_ms": p50,
            "p95_execute_ms": p95,
        }

    def poll(self) -> int:
        """Dispatch batches whose size or deadline trigger fired; returns #requests."""
        dispatched = 0
        while True:
            with self._lock:
                if not self._queue:
                    return dispatched
                full = len(self._queue) >= self.max_batch_size
                overdue = self._clock() - self._queue[0].enqueued_at >= self.max_wait_s
                if not (full or overdue):
                    return dispatched
                batch = self._take_locked()
            self._run(batch)
            dispatched += len(batch)

    def flush(self) -> int:
        """Dispatch everything queued regardless of deadlines; returns #requests."""
        dispatched = 0
        while True:
            with self._lock:
                if not self._queue:
                    return dispatched
                batch = self._take_locked()
            self._run(batch)
            dispatched += len(batch)

    # ------------------------------------------------------------------ #
    # Optional background deadline driver
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start a daemon thread that keeps deadlines honoured."""
        if self._worker is not None and self._worker.is_alive():
            return
        self._stop.clear()
        interval = max(self.max_wait_s / 4.0, 1e-4)

        def _loop() -> None:
            while not self._stop.wait(interval):
                self.poll()

        self._worker = threading.Thread(target=_loop, name="batch-scheduler", daemon=True)
        self._worker.start()

    def stop(self) -> None:
        """Stop the background thread and drain the queue."""
        self._stop.set()
        if self._worker is not None:
            self._worker.join(timeout=1.0)
            self._worker = None
        self.flush()
