"""High-throughput serving gateway (paper Sec. V-F, "online deployment").

The paper deploys GARCIA behind an industrial inference platform: the MLP
click head is replaced by an inner product "for latency reasons"
(Sec. V-F.1), query/service embeddings are re-exported **daily** (Fig. 9),
and the online tier answers heavy user traffic from the exported tables.
This package is that serving tier for the reproduction, mapped component by
component onto the paper's deployment:

=====================  =======================================================
Paper (Sec. V-F)        Gateway component
=====================  =======================================================
Inner-product head      :mod:`~repro.serving.gateway.index` —
(latency-motivated      :class:`RetrievalIndex` with an exact scan plus
MIPS retrieval)         pure-numpy ANN indexes (:class:`IVFIndex` coarse
                        quantizer, :class:`LSHIndex` hyperplane hashing) and
                        the quantized indexes from
                        :mod:`repro.serving.quant` (:class:`IVFPQIndex`
                        coarse cells + PQ residual codes, :class:`Int8Index`
                        int8 exact scan)
Daily embedding         :mod:`~repro.serving.gateway.store` —
refresh (Fig. 9)        :class:`VersionedEmbeddingStore`, shard-aware with
                        atomic hot-swap, stale-read protection, and
                        quantized (int8 / PQ) snapshot tables published
                        alongside the fp arrays
Online serving under    :mod:`~repro.serving.gateway.scheduler` —
heavy traffic           :class:`BatchScheduler` micro-batching with a
                        max-wait deadline; :mod:`~repro.serving.gateway.cache`
                        — :class:`LRUTTLCache` keyed by (query, k, version)
Deployment metrics      :mod:`~repro.serving.gateway.telemetry` —
(CTR uplift aside)      QPS, p50/p95/p99 latency, cache hit rate and ANN
                        recall@K against the exact scan
=====================  =======================================================

:class:`ServingGateway` ties the pieces together and speaks the same
``rank(query_id, k)`` protocol as the seed pipeline, so the A/B simulator
and the case-study tooling work on top of it unchanged.
"""

from repro.serving.gateway.cache import LRUTTLCache
from repro.serving.gateway.gateway import IndexRetriever, ServingGateway, deploy_gateway
from repro.serving.gateway.index import (
    ExactIndex,
    IVFIndex,
    LSHIndex,
    RetrievalIndex,
    build_index,
    index_kinds,
)
from repro.serving.gateway.scheduler import (
    AsyncBatchScheduler,
    BatchScheduler,
    DeadlineExceededError,
    OverloadError,
    PendingRequest,
)
from repro.serving.gateway.store import (
    EmbeddingSnapshot,
    SnapshotListener,
    StaleReadError,
    StaleVersionError,
    VersionedEmbeddingStore,
)
from repro.serving.gateway.telemetry import GatewayTelemetry
from repro.serving.gateway.workload import (
    clustered_embeddings,
    flash_crowd_gaps,
    poisson_gaps,
    zipf_query_ids,
)
from repro.serving.quant.ivfpq import Int8Index, IVFPQIndex

__all__ = [
    "AsyncBatchScheduler",
    "BatchScheduler",
    "DeadlineExceededError",
    "EmbeddingSnapshot",
    "ExactIndex",
    "GatewayTelemetry",
    "IVFIndex",
    "IVFPQIndex",
    "IndexRetriever",
    "Int8Index",
    "LRUTTLCache",
    "LSHIndex",
    "OverloadError",
    "PendingRequest",
    "RetrievalIndex",
    "ServingGateway",
    "SnapshotListener",
    "StaleReadError",
    "StaleVersionError",
    "VersionedEmbeddingStore",
    "build_index",
    "clustered_embeddings",
    "deploy_gateway",
    "flash_crowd_gaps",
    "index_kinds",
    "poisson_gaps",
    "zipf_query_ids",
]
