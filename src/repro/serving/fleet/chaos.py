"""Seeded chaos injection for the replica fleet: kill, stall, slow-roll.

A :class:`ChaosController` owns a time-ordered plan of
:class:`ChaosEvent`\\ s against named replicas.  The plan is either written
explicitly (acceptance tests pin exact scenarios) or drawn from a seeded
RNG (:meth:`ChaosController.seeded_storm` — same seed, same storm), so
every chaos run is reproducible.

There is no background thread: the router calls :meth:`tick` on its
request path (and the fleet bench between arrivals), so faults land *mid
storm*, interleaved with live traffic — which is the point.  ``tick`` is
O(1) when no event is due.

The injected faults act at the replica's executor boundary (see
:mod:`repro.serving.fleet.replica`), which is what makes the acceptance
claims meaningful: a kill fails whole in-flight batches like a dead
process, a stall blocks the batch pipeline so deadlines shed, a slow-roll
stretches service time so the degraded replica's tail grows while the
fleet's stays bounded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ChaosController", "ChaosEvent"]

_ACTIONS = ("kill", "stall", "slow", "revive")


@dataclass(frozen=True)
class ChaosEvent:
    """One planned fault: at ``at_s`` after arming, do ``action``."""

    at_s: float
    action: str
    replica: str
    #: Stall length for ``action="stall"``.
    duration_s: float = 0.0
    #: Service-time multiplier for ``action="slow"``.
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"action must be one of {_ACTIONS}, got {self.action!r}")
        if self.at_s < 0:
            raise ValueError("at_s must be >= 0")


class ChaosController:
    """Applies a time-ordered fault plan to a fleet's replicas.

    ``controller.arm()`` starts the clock; every ``tick()`` applies the
    events whose time has come.  The router ticks an attached controller
    automatically on each routed request (``fleet.chaos = controller`` is
    set by the constructor), so driving traffic *is* driving the storm.
    """

    def __init__(self, fleet, events: Sequence[ChaosEvent],
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.fleet = fleet
        self.events: List[ChaosEvent] = sorted(events, key=lambda e: e.at_s)
        for event in self.events:
            fleet.replica(event.replica)  # fail fast on unknown names
        self._clock = clock if clock is not None else fleet.clock
        self._armed_at: Optional[float] = None
        self._next = 0
        self.applied: List[Tuple[float, ChaosEvent]] = []
        fleet.chaos = self

    @classmethod
    def seeded_storm(cls, fleet, seed: int, storm_s: float,
                     actions: Sequence[str] = ("kill",),
                     stall_s: float = 0.25, slow_factor: float = 4.0,
                     clock: Optional[Callable[[], float]] = None
                     ) -> "ChaosController":
        """A reproducible storm plan: each action hits a random replica.

        Fault times are drawn uniformly from the middle (25%–75%) of the
        storm window so they land mid-traffic, never degenerately at the
        edges; victims are drawn per-action from the fleet's replicas.
        ``seed`` fully determines the plan.
        """
        rng = np.random.default_rng(seed)
        names = [replica.name for replica in fleet.replicas]
        events = []
        for action in actions:
            at_s = float(rng.uniform(0.25, 0.75)) * storm_s
            victim = names[int(rng.integers(len(names)))]
            events.append(ChaosEvent(
                at_s=at_s, action=action, replica=victim,
                duration_s=stall_s if action == "stall" else 0.0,
                factor=slow_factor if action == "slow" else 1.0))
        return cls(fleet, events, clock=clock)

    def arm(self, now: Optional[float] = None) -> None:
        """Start (or restart) the storm clock; re-arming replays the plan."""
        self._armed_at = self._clock() if now is None else now
        self._next = 0
        self.applied = []

    @property
    def armed(self) -> bool:
        return self._armed_at is not None

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self.events)

    def tick(self) -> int:
        """Apply every due event; returns how many fired (O(1) when none)."""
        if self._armed_at is None or self._next >= len(self.events):
            return 0
        elapsed = self._clock() - self._armed_at
        fired = 0
        while (self._next < len(self.events)
               and self.events[self._next].at_s <= elapsed):
            event = self.events[self._next]
            self._apply(event)
            self.applied.append((elapsed, event))
            self._next += 1
            fired += 1
        return fired

    def _apply(self, event: ChaosEvent) -> None:
        replica = self.fleet.replica(event.replica)
        if event.action == "kill":
            replica.kill()
        elif event.action == "stall":
            replica.stall(event.duration_s)
        elif event.action == "slow":
            replica.slow(event.factor)
        else:  # revive
            replica.revive()

    def log(self) -> List[dict]:
        """The applied events as rows (bench/report friendly)."""
        return [
            {
                "elapsed_s": round(elapsed, 6),
                "action": event.action,
                "replica": event.replica,
                "at_s": event.at_s,
                "duration_s": event.duration_s,
                "factor": event.factor,
            }
            for elapsed, event in self.applied
        ]
