"""Per-replica health scoring with hysteresis: eject slow, readmit shy.

The router probes each replica on a fixed cadence (lazily, from the
request path — no background thread) and feeds two kinds of signal into a
:class:`ReplicaHealth` tracker:

* **hard failure** — the replica's probe raises ``ReplicaDeadError``
  (process gone).  Ejection is immediate, no streak required: routing one
  more session at a dead replica only costs a failover.
* **soft degradation** — a *windowed* score from counter deltas between
  probes: instantaneous queue depth against ``queue_budget`` and the shed
  fraction of requests finished since the last probe against
  ``shed_budget``.  Deltas matter: the gateway's cumulative histograms
  average over the whole run, so a replica that stalls after an hour of
  good service would look healthy forever through cumulative p99.

Soft transitions are hysteretic.  A replica is ejected only after
``eject_after`` *consecutive* probes score ≥ ``eject_score``, and
readmitted only after ``readmit_after`` consecutive probes score ≤
``readmit_score`` — with ``readmit_score`` strictly below ``eject_score``
so a replica oscillating at the boundary cannot flap in and out of the
serving set on every probe.  Cumulative :meth:`HealthPolicy.pressure`
(p99 / queue / loop-lag / shed against budgets) ranks *healthy* replicas
for the least-loaded fallback; the windowed score only governs
membership.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.serving.obs.health import HealthSnapshot

__all__ = ["HealthPolicy", "ReplicaHealth", "STATE_EJECTED", "STATE_UP"]

STATE_UP = "up"
STATE_EJECTED = "ejected"


@dataclass(frozen=True)
class HealthPolicy:
    """Budgets and hysteresis knobs for fleet membership and fallback."""

    #: Instantaneous scheduler queue depth treated as "at budget".
    queue_budget: float = 64.0
    #: Windowed shed fraction (overload + deadline misses) at budget.
    shed_budget: float = 0.25
    #: Cumulative p99 budget — pressure ranking only, not membership.
    p99_budget_ms: float = 250.0
    #: Cumulative mean loop lag budget — pressure ranking only.
    loop_lag_budget_ms: float = 250.0
    #: Soft score at/above which a probe counts toward ejection.
    eject_score: float = 1.0
    #: Soft score at/below which a probe counts toward readmission.
    readmit_score: float = 0.5
    #: Consecutive bad probes before a soft ejection.
    eject_after: int = 2
    #: Consecutive good probes before readmission.
    readmit_after: int = 2
    #: Probe cadence; probes run lazily from the request path.
    probe_interval_s: float = 0.05
    #: Pressure at/above which the router prefers a least-loaded fallback
    #: over the rendezvous owner (the owner stays in the serving set).
    fallback_pressure: float = 1.0

    def __post_init__(self) -> None:
        if self.readmit_score >= self.eject_score:
            raise ValueError(
                "readmit_score must be strictly below eject_score "
                "(the hysteresis band must have width)")
        if self.eject_after < 1 or self.readmit_after < 1:
            raise ValueError("eject_after and readmit_after must be >= 1")
        if self.probe_interval_s < 0:
            raise ValueError("probe_interval_s must be >= 0")

    def soft_score(self, queue_depth: float, answered_delta: float,
                   shed_delta: float) -> float:
        """Windowed badness: worst of queue utilisation and shed fraction."""
        finished = answered_delta + shed_delta
        shed_fraction = (shed_delta / finished) if finished > 0 else 0.0
        queue_term = queue_depth / self.queue_budget if self.queue_budget > 0 else 0.0
        shed_term = shed_fraction / self.shed_budget if self.shed_budget > 0 else 0.0
        return max(queue_term, shed_term)

    def pressure(self, snapshot: HealthSnapshot) -> float:
        """Cumulative load of a healthy replica, for fallback ranking."""
        return snapshot.pressure(
            p99_budget_ms=self.p99_budget_ms,
            queue_budget=self.queue_budget,
            loop_lag_budget_ms=self.loop_lag_budget_ms,
            shed_budget=self.shed_budget,
        )


@dataclass
class ReplicaHealth:
    """One replica's membership state machine (driven by the router)."""

    state: str = STATE_UP
    #: Why the replica left the serving set: ``"dead"`` or ``"degraded"``.
    reason: str = ""
    bad_streak: int = 0
    good_streak: int = 0
    #: Last windowed soft score (diagnostics / replica_rows).
    last_score: float = 0.0
    #: Cumulative pressure at the last probe (fallback ranking).
    last_pressure: float = 0.0
    #: Counter values at the last probe, for windowed deltas.
    last_answered: float = 0.0
    last_shed: float = 0.0
    last_probe_at: float = -math.inf
    transitions: int = field(default=0)

    @property
    def up(self) -> bool:
        return self.state == STATE_UP

    def mark_dead(self) -> bool:
        """Hard ejection (dead probe or in-flight connection failure).

        Returns True when this call performed the UP -> EJECTED transition
        (so the caller counts each ejection once).  Resets the readmission
        streak: a revived process must re-earn membership.
        """
        self.bad_streak = 0
        self.good_streak = 0
        if self.state == STATE_UP or self.reason != "dead":
            self.reason = "dead"
        if self.state == STATE_UP:
            self.state = STATE_EJECTED
            self.transitions += 1
            return True
        return False

    def observe(self, policy: HealthPolicy, score: float,
                pressure: float, allow_eject: bool = True) -> str:
        """Feed one soft probe; returns ``"eject"`` / ``"readmit"`` / ``""``.

        The two streaks are exclusive by construction: a probe inside the
        hysteresis band (between ``readmit_score`` and ``eject_score``)
        resets both, so only *consecutive* evidence moves the state.

        ``allow_eject=False`` suppresses the soft ejection itself (the
        router passes it for the last replica standing — a degraded
        replica that sheds beats an empty fleet that serves nothing).
        The bad streak stays saturated, so ejection fires on the first
        bad probe after another replica rejoins.
        """
        self.last_score = score
        self.last_pressure = pressure
        if self.state == STATE_UP:
            if score >= policy.eject_score:
                self.bad_streak += 1
                if self.bad_streak >= policy.eject_after:
                    if not allow_eject:
                        self.bad_streak = policy.eject_after
                        return ""
                    self.state = STATE_EJECTED
                    self.reason = "degraded"
                    self.bad_streak = 0
                    self.good_streak = 0
                    self.transitions += 1
                    return "eject"
            else:
                self.bad_streak = 0
            return ""
        if score <= policy.readmit_score:
            self.good_streak += 1
            if self.good_streak >= policy.readmit_after:
                self.state = STATE_UP
                self.reason = ""
                self.bad_streak = 0
                self.good_streak = 0
                self.transitions += 1
                return "readmit"
        else:
            self.good_streak = 0
        return ""
