"""One gateway replica as seen by the fleet: handle, lifecycle, faults.

:class:`FleetReplica` wraps a :class:`~repro.serving.gateway.ServingGateway`
with the three things the router needs and the gateway itself does not
know about:

* a stable **identity** (name + precomputed rendezvous salt);
* **membership state** (:class:`~repro.serving.fleet.health.ReplicaHealth`,
  driven by the router's probe cadence);
* an injectable **fault surface** for the chaos controller.  Faults are
  installed by wrapping the gateway's ``_search_backend_async`` — the same
  executor boundary the sharded tier overrides — so a killed replica fails
  whole in-flight batches exactly the way a dead process would (the
  scheduler propagates the executor's exception to every request of the
  batch), a stalled replica blocks its batch pipeline (queue builds,
  deadlines shed), and a slow-rolled replica stretches its service time by
  a factor.

:class:`ReplicaDeadError` derives from ``ConnectionError``: it is the
in-process stand-in for a broken connection to a replica process, and the
router treats it exactly like one — mark dead, eject, fail over.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Optional, Tuple

import numpy as np

from repro.serving.fleet.hashing import node_salt
from repro.serving.fleet.health import ReplicaHealth
from repro.serving.gateway.gateway import ServingGateway
from repro.serving.gateway.scheduler import PendingRequest
from repro.serving.obs.health import HealthSnapshot

__all__ = ["FleetReplica", "ReplicaDeadError"]


class ReplicaDeadError(ConnectionError):
    """The replica's process is gone (or chaos says it is)."""


class FleetReplica:
    """A named gateway replica with health state and a chaos fault surface."""

    def __init__(self, name: str, gateway: ServingGateway, salt: int = 0,
                 weight: float = 1.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if weight <= 0.0:
            raise ValueError("replica weight must be positive")
        self.name = str(name)
        self.gateway = gateway
        self.weight = float(weight)
        #: Precomputed rendezvous salt — mix once, score per request.
        self.salt = node_salt(self.name, salt)
        self.health = ReplicaHealth()
        self._clock = clock
        # Chaos fault state (all cleared by revive()).
        self._dead = False
        self._stalled_until = 0.0
        self._slow_factor = 1.0
        self._wrap_backend()

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    async def submit_async(self, query_id: int, k: Optional[int] = None,
                           deadline_s: Optional[float] = None,
                           tag: Optional[str] = None) -> PendingRequest:
        """Admit one request on this replica (raises if known-dead).

        Admission-time death is cheap to detect here; death *after*
        admission surfaces as ``ReplicaDeadError`` from ``pending.wait()``
        when the batch hits the fault-wrapped backend.
        """
        if self._dead:
            raise ReplicaDeadError(f"replica {self.name!r} is dead")
        return await self.gateway.submit_async(
            query_id, k, deadline_s=deadline_s, tag=tag)

    # ------------------------------------------------------------------ #
    # Probe surface (what the router's health policy reads)
    # ------------------------------------------------------------------ #
    @property
    def queue_depth(self) -> int:
        """Admitted work not yet answered: queued **plus** executing batch.

        The in-flight term matters for stall detection — the drive loop is
        serial, so a stalled batch *drains* the queue into itself and the
        bare ``pending_count`` of a frozen replica reads zero.
        """
        scheduler = self.gateway.scheduler
        return scheduler.pending_count + scheduler.in_flight_count

    def probe(self) -> Tuple[float, float, HealthSnapshot]:
        """One health probe: ``(answered_total, shed_total, snapshot)``.

        Raises :class:`ReplicaDeadError` when the replica is dead — a dead
        process answers no probes.  Totals are cumulative; the router's
        tracker turns them into windowed deltas.
        """
        if self._dead:
            raise ReplicaDeadError(f"replica {self.name!r} is dead")
        snapshot = self.gateway.health()
        shed = (snapshot.overload_rejections + snapshot.deadline_misses
                + snapshot.cancelled_requests)
        return snapshot.requests, shed, snapshot

    # ------------------------------------------------------------------ #
    # Chaos fault surface (driven by fleet.chaos.ChaosController)
    # ------------------------------------------------------------------ #
    def kill(self) -> None:
        """Drop dead: every queued or future batch fails ``ReplicaDeadError``."""
        self._dead = True

    def stall(self, duration_s: float) -> None:
        """Freeze the batch pipeline for ``duration_s`` (GC pause / hung IO).

        The stall is served *inside* the executor boundary, so the drive
        task blocks on the stalled batch: queued requests pile up behind it
        and shed on their deadlines — the realistic failure shape.
        """
        self._stalled_until = max(self._stalled_until,
                                  self._clock() + float(duration_s))

    def slow(self, factor: float) -> None:
        """Stretch every batch's service time by ``factor`` (degraded host)."""
        if factor < 1.0:
            raise ValueError("slow factor must be >= 1.0")
        self._slow_factor = float(factor)

    def revive(self, warm_start: Optional[str] = None,
               remote_peer: Optional[Tuple[str, int]] = None) -> int:
        """Clear every fault (process restarted, host recovered).

        ``warm_start`` additionally re-hydrates the replica's store from an
        on-disk snapshot directory: a replica that was dead through one or
        more publishes catches up from the durable manifest (mmapped, no
        re-quantization) instead of waiting for the next wire publish.  The
        hydration runs the store's normal two-phase listener flip, so the
        replica's gateway rebuilds or restores its index before any request
        can observe the revived version.  Returns the store version the
        replica is serving after revival.

        ``remote_peer=(host, port)`` first replicates the peer
        :class:`~repro.serving.snapshot.SnapshotServer`'s live snapshot
        into ``warm_start`` over the wire — a revived host whose local
        directory was lost (or never existed) catches up from a healthy
        peer instead of a disk it no longer has.
        """
        self._dead = False
        self._stalled_until = 0.0
        self._slow_factor = 1.0
        if remote_peer is not None and warm_start is None:
            raise ValueError("remote_peer needs a warm_start directory to hydrate into")
        if warm_start is not None:
            return self.gateway.store.hydrate(warm_start, remote=remote_peer)
        return self.gateway.store.version

    @property
    def dead(self) -> bool:
        return self._dead

    @property
    def faulted(self) -> bool:
        return (self._dead or self._slow_factor > 1.0
                or self._clock() < self._stalled_until)

    def _wrap_backend(self) -> None:
        original = self.gateway._search_backend_async

        async def chaotic_backend(
            snapshot, query_matrix: np.ndarray, k: int, spans=None
        ) -> Tuple[np.ndarray, np.ndarray]:
            if self._dead:
                raise ReplicaDeadError(f"replica {self.name!r} is dead")
            now = self._clock()
            if now < self._stalled_until:
                await asyncio.sleep(self._stalled_until - now)
                if self._dead:  # killed while stalled
                    raise ReplicaDeadError(f"replica {self.name!r} is dead")
            if self._slow_factor > 1.0:
                started = self._clock()
                result = await original(snapshot, query_matrix, k, spans=spans)
                elapsed = self._clock() - started
                await asyncio.sleep(elapsed * (self._slow_factor - 1.0))
                return result
            return await original(snapshot, query_matrix, k, spans=spans)

        self.gateway._search_backend_async = chaotic_backend

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def stop_async(self) -> None:
        await self.gateway.stop_async()

    async def drain_async(self) -> None:
        await self.gateway.drain_async()

    def close(self) -> None:
        self.gateway.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FleetReplica({self.name!r}, state={self.health.state!r}, "
                f"queue={self.queue_depth})")
