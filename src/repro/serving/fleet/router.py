"""The fleet front-end: rendezvous routing, failover, explicit shed.

:class:`FleetRouter` stands in front of N :class:`FleetReplica` gateways
and exposes the same async request surface a single gateway does
(``search_async`` / ``rank_async`` / ``stop_async`` / ``close`` plus a
``telemetry`` with ``bucket_rows()``), so anything that serves through a
gateway — the A/B tier, the load drivers, the example — can serve through
a fleet unchanged.

Routing, per request:

1. **Rendezvous primary.**  The session key (``session_id``, defaulting
   to the query id) picks its owner by highest-random-weight hash over
   the replicas currently in the serving set.  Sticky and coordination
   free: the same session lands on the same replica until the serving set
   changes, and an ejection moves *only* the ejected replica's sessions.
2. **Least-loaded fallback.**  If the owner's cumulative pressure (p99 /
   queue depth / loop lag / shed rate against the policy budgets) is at or
   above ``fallback_pressure``, the request is redirected to the eligible
   replica with the lowest ``(instantaneous queue, pressure)`` — hot
   sessions spill before they brown out their owner.
3. **Bounded retry-on-failover.**  ``ReplicaDeadError`` (at admission or
   from an in-flight batch) marks the replica dead and re-routes the
   request over the remaining replicas; ``OverloadError`` re-routes
   without marking.  At most ``max_failovers`` re-executions (default 1 —
   at-most-once re-execution), each excluding every replica already
   attempted, and the *remaining* deadline budget rides along: time spent
   on a dead attempt is not granted back.
4. **Explicit shed.**  A request that exhausts its retries or finds no
   eligible replica raises :class:`FleetUnavailableError` — a subclass of
   ``OverloadError``, so every existing driver and the A/B cost ledger
   account it as shed traffic.  Nothing is silently dropped: every
   admitted request ends in exactly one reply, one deadline miss, or one
   explicit shed.

Health probes run lazily on this same path every ``probe_interval_s``
(see :mod:`repro.serving.fleet.health`), and an attached chaos controller
is ticked per request, so storms interleave with live traffic.
"""

from __future__ import annotations

import asyncio
import math
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serving.fleet.health import HealthPolicy
from repro.serving.fleet.replica import FleetReplica, ReplicaDeadError
from repro.serving.gateway.gateway import ServingGateway
from repro.serving.gateway.scheduler import DeadlineExceededError, OverloadError
from repro.serving.gateway.store import VersionedEmbeddingStore
from repro.serving.gateway.telemetry import GatewayTelemetry
from repro.serving.obs.ids import key_to_u64, mix64_int
from repro.serving.obs.metrics import MetricsRegistry

__all__ = ["FleetRouter", "FleetUnavailableError", "deploy_fleet"]


class FleetUnavailableError(OverloadError):
    """No eligible replica could serve the request (explicit shed)."""


class FleetRouter:
    """Health-aware front-end over a set of named gateway replicas.

    ``replicas`` is a mapping of name -> :class:`ServingGateway` (or a
    plain sequence, auto-named ``replica-0..N-1``).  ``salt`` decorrelates
    the rendezvous placement of independent fleets over identical replica
    names; ``weights`` (per name) skew placement toward bigger replicas.
    """

    def __init__(
        self,
        replicas: Union[Mapping[str, ServingGateway], Sequence[ServingGateway]],
        policy: Optional[HealthPolicy] = None,
        salt: int = 0,
        weights: Optional[Mapping[str, float]] = None,
        max_failovers: int = 1,
        default_deadline_s: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        if not isinstance(replicas, Mapping):
            replicas = {f"replica-{i}": g for i, g in enumerate(replicas)}
        if not replicas:
            raise ValueError("a fleet needs at least one replica")
        if max_failovers < 0:
            raise ValueError("max_failovers must be >= 0")
        self.policy = policy if policy is not None else HealthPolicy()
        self.max_failovers = int(max_failovers)
        self.default_deadline_s = default_deadline_s
        self.clock = clock
        self.salt = int(salt)
        self._replicas: Dict[str, FleetReplica] = {}
        for name, gateway in replicas.items():
            weight = 1.0 if weights is None else float(weights.get(name, 1.0))
            self._replicas[name] = FleetReplica(
                name, gateway, salt=self.salt, weight=weight, clock=clock)
        #: Attached chaos controller (set by ChaosController's constructor).
        self.chaos = None
        self._last_probe_at = -math.inf
        self.telemetry = GatewayTelemetry(clock=clock)
        self.metrics = MetricsRegistry()
        self._routed = self.metrics.family(
            "counter", "fleet_routed_total",
            help="Requests answered, by serving replica",
            label_names=("replica",))
        self._fallbacks = self.metrics.counter(
            "fleet_fallback_routes_total",
            help="Requests redirected off their rendezvous owner by pressure")
        self._failovers = self.metrics.counter(
            "fleet_failovers_total",
            help="Retries after a dead or overloaded attempt")
        self._ejections = self.metrics.family(
            "counter", "fleet_ejections_total",
            help="Replicas removed from the serving set, by reason",
            label_names=("reason",))
        self._readmissions = self.metrics.counter(
            "fleet_readmissions_total",
            help="Replicas returned to the serving set")
        self._unavailable = self.metrics.counter(
            "fleet_unavailable_total",
            help="Requests shed because no eligible replica remained")

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    @property
    def replicas(self) -> List[FleetReplica]:
        return list(self._replicas.values())

    def replica(self, name: str) -> FleetReplica:
        try:
            return self._replicas[name]
        except KeyError:
            raise KeyError(f"no replica named {name!r} in this fleet") from None

    def eligible(self) -> List[FleetReplica]:
        """Replicas currently in the serving set."""
        return [r for r in self._replicas.values() if r.health.up]

    # ------------------------------------------------------------------ #
    # Routing policy (pure, synchronous — tested directly)
    # ------------------------------------------------------------------ #
    def rank(self, session_key: object,
             replicas: Optional[Sequence[FleetReplica]] = None
             ) -> List[FleetReplica]:
        """Rendezvous preference order for a session over ``replicas``.

        Defaults to the full fleet (membership ignored) — the property
        tests compare this against the serving-set order to check minimal
        disruption.
        """
        pool = list(self._replicas.values()) if replicas is None else list(replicas)
        key_u64 = key_to_u64(session_key)
        scored = [
            (-self._score(key_u64, replica), index, replica)
            for index, replica in enumerate(pool)
        ]
        scored.sort(key=lambda item: (item[0], item[1]))
        return [replica for _, _, replica in scored]

    def route(self, session_key: object,
              exclude: Sequence[str] = ()) -> Tuple[FleetReplica, str]:
        """Pick the serving replica: ``(replica, "rendezvous"|"least_loaded")``.

        Raises :class:`FleetUnavailableError` when no eligible replica
        remains outside ``exclude``.
        """
        excluded = set(exclude)
        pool = [r for r in self.eligible() if r.name not in excluded]
        if not pool:
            raise FleetUnavailableError(
                f"no eligible replica for session {session_key!r} "
                f"(excluded: {sorted(excluded) or 'none'})")
        key_u64 = key_to_u64(session_key)
        owner = max(pool, key=lambda r: self._score(key_u64, r))
        if len(pool) > 1:
            pressure = self._pressure(owner)
            if pressure >= self.policy.fallback_pressure:
                fallback = min(
                    pool, key=lambda r: (r.queue_depth, self._pressure(r), r.name))
                if fallback is not owner:
                    return fallback, "least_loaded"
        return owner, "rendezvous"

    def _score(self, key_u64: int, replica: FleetReplica) -> float:
        h = mix64_int(key_u64, replica.salt)
        u = (h + 0.5) / 2.0**64
        return -replica.weight / math.log(u)

    def _pressure(self, replica: FleetReplica) -> float:
        """Routing pressure: cached cumulative pressure + live queue term."""
        queue_term = (replica.queue_depth / self.policy.queue_budget
                      if self.policy.queue_budget > 0 else 0.0)
        return max(replica.health.last_pressure, queue_term)

    # ------------------------------------------------------------------ #
    # Health probing (lazy, on the request path; explicit for tests)
    # ------------------------------------------------------------------ #
    def check_replicas(self, force: bool = False) -> List[Tuple[str, str]]:
        """Probe every replica once; returns ``[(name, transition), ...]``.

        Called from the request path at most once per
        ``policy.probe_interval_s`` (pass ``force=True`` to probe now).
        Dead probes eject immediately; soft scores run through the
        hysteresis tracker.  A dead replica that has been revived re-enters
        through the same readmission streak as a degraded one.

        A soft (degradation) ejection is never allowed to empty the
        serving set: the last replica standing keeps serving — and
        shedding — however bad its score, because an empty fleet answers
        nothing at all.  Death still ejects unconditionally; a fleet of
        corpses has nothing to protect.
        """
        now = self.clock()
        if not force and now - self._last_probe_at < self.policy.probe_interval_s:
            return []
        self._last_probe_at = now
        transitions: List[Tuple[str, str]] = []
        for name, replica in self._replicas.items():
            health = replica.health
            try:
                answered, shed, snapshot = replica.probe()
            except ReplicaDeadError:
                if health.mark_dead():
                    self._ejections.labels("dead").inc()
                    transitions.append((name, "eject"))
                continue
            score = self.policy.soft_score(
                replica.queue_depth,
                answered - health.last_answered,
                shed - health.last_shed)
            health.last_answered = answered
            health.last_shed = shed
            health.last_probe_at = now
            others_up = any(
                other.health.up
                for other in self._replicas.values()
                if other is not replica
            )
            moved = health.observe(
                self.policy, score, self.policy.pressure(snapshot),
                allow_eject=others_up or not health.up)
            if moved == "eject":
                self._ejections.labels("degraded").inc()
                transitions.append((name, "eject"))
            elif moved == "readmit":
                self._readmissions.inc()
                transitions.append((name, "readmit"))
        return transitions

    def _mark_dead(self, replica: FleetReplica) -> None:
        """Passive death detection: an attempt failed with ReplicaDeadError."""
        if replica.health.mark_dead():
            self._ejections.labels("dead").inc()

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    async def search_async(self, query_id: int, k: Optional[int] = None,
                           deadline_s: Optional[float] = None,
                           tag: Optional[str] = None,
                           session_id: Optional[object] = None
                           ) -> Tuple[np.ndarray, np.ndarray]:
        """One fleet search: route, failover if needed, reply or shed.

        ``session_id`` is the routing key (sticky placement); it defaults
        to ``query_id`` so plain gateway callers stay session-sticky per
        query.  All gateway semantics carry through: ``OverloadError`` /
        ``DeadlineExceededError`` on shed, telemetry attributed to ``tag``.
        """
        entered = self.clock()
        if self.chaos is not None:
            self.chaos.tick()
        self.check_replicas()
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        deadline_at = entered + deadline_s if deadline_s is not None else None
        session_key = session_id if session_id is not None else query_id
        attempted: List[str] = []
        while True:
            if deadline_at is not None:
                remaining = deadline_at - self.clock()
                if remaining <= 0.0:
                    self.telemetry.record_deadline_miss(tag=tag)
                    raise DeadlineExceededError(
                        f"fleet deadline exhausted after "
                        f"{len(attempted)} attempt(s)")
            else:
                remaining = None
            try:
                replica, route_policy = self.route(session_key, exclude=attempted)
            except FleetUnavailableError:
                self._unavailable.inc()
                self.telemetry.record_overload(tag=tag)
                raise
            attempted.append(replica.name)
            if route_policy == "least_loaded":
                self._fallbacks.inc()
            try:
                result = await self._attempt(
                    replica, route_policy, query_id, k, remaining, tag,
                    entered, attempt=len(attempted) - 1)
            except ReplicaDeadError:
                self._mark_dead(replica)
                failover_error: Exception = ReplicaDeadError(
                    f"replica {replica.name!r} died serving the request")
            except FleetUnavailableError:
                raise
            except OverloadError:
                failover_error = OverloadError(
                    f"replica {replica.name!r} shed the request at admission")
            except DeadlineExceededError:
                self.telemetry.record_deadline_miss(tag=tag)
                raise
            else:
                self.telemetry.record_request(
                    self.clock() - entered, cache_hit=False, tag=tag)
                self._routed.labels(replica.name).inc()
                return result
            if len(attempted) > self.max_failovers:
                self._unavailable.inc()
                self.telemetry.record_overload(tag=tag)
                raise FleetUnavailableError(
                    f"request exhausted {self.max_failovers} failover(s); "
                    f"attempted {attempted}") from failover_error
            self._failovers.inc()

    async def _attempt(self, replica: FleetReplica, route_policy: str,
                       query_id: int, k: Optional[int],
                       deadline_s: Optional[float], tag: Optional[str],
                       entered: float, attempt: int):
        """One admission + wait on one replica (failover unit)."""
        pending = await replica.submit_async(
            query_id, k, deadline_s=deadline_s, tag=tag)
        if pending.trace is not None:
            pending.trace.add_span(
                "fleet_router", entered, self.clock(),
                replica=replica.name, attempt=attempt, policy=route_policy)
        try:
            return await pending.wait()
        except asyncio.CancelledError:
            pending.cancel()
            self.telemetry.record_cancelled(tag=tag)
            raise

    async def rank_async(self, query_id: int, k: Optional[int] = None,
                         deadline_s: Optional[float] = None,
                         tag: Optional[str] = None,
                         session_id: Optional[object] = None) -> List[int]:
        """Async ranker protocol (the A/B simulator's arm contract)."""
        ids, _ = await self.search_async(
            query_id, k, deadline_s=deadline_s, tag=tag, session_id=session_id)
        return [int(service_id) for service_id in ids]

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def replica_rows(self) -> List[Dict[str, object]]:
        """One row per replica: membership, routed share, health signals."""
        rows = []
        for name, replica in self._replicas.items():
            health = replica.health
            try:
                snapshot = replica.gateway.health().as_dict()
            except Exception:  # pragma: no cover - defensive
                snapshot = {}
            rows.append({
                "replica": name,
                "state": health.state,
                "reason": health.reason,
                "routed": float(self._routed.labels(name).value),
                "queue_depth": float(replica.queue_depth),
                "score": health.last_score,
                "pressure": health.last_pressure,
                "transitions": health.transitions,
                "requests": snapshot.get("requests", 0.0),
                "p99_ms": snapshot.get("p99_ms", float("nan")),
                "shed_rate": snapshot.get("shed_rate", 0.0),
            })
        return rows

    def summary(self) -> Dict[str, float]:
        """Fleet-level serving summary + router counters."""
        summary = self.telemetry.summary()
        summary.update({
            "replicas": float(len(self._replicas)),
            "eligible_replicas": float(len(self.eligible())),
            "failovers": float(self._failovers.value),
            "fallback_routes": float(self._fallbacks.value),
            "ejections": float(sum(
                counter.value for _, counter in self._ejections.items())),
            "readmissions": float(self._readmissions.value),
            "unavailable": float(self._unavailable.value),
        })
        return summary

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def stop_async(self) -> None:
        """Stop every replica's drive task on the current loop (drains)."""
        for replica in self._replicas.values():
            await replica.stop_async()

    async def drain_async(self) -> None:
        """Gracefully drain every replica (finish queued work, stay up)."""
        for replica in self._replicas.values():
            await replica.drain_async()

    def close(self) -> None:
        for replica in self._replicas.values():
            replica.close()

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def deploy_fleet(model, num_replicas: int = 3, policy: Optional[HealthPolicy] = None,
                 salt: int = 0, max_failovers: int = 1,
                 default_deadline_s: Optional[float] = None,
                 store: Optional[VersionedEmbeddingStore] = None,
                 **gateway_kwargs) -> FleetRouter:
    """Build a fleet of N gateways over one shared versioned store.

    The replicas share the store (embeddings are read-only snapshots, and
    a daily hot-swap's two-phase flip reaches every replica at once) but
    each owns its scheduler, cache, telemetry, and — by default — a
    dedicated single-thread scoring executor (``cpu_executor="thread"``):
    numpy releases the GIL during the scan, so per-replica executor
    threads are what makes in-process replicas scale on multi-core hosts.
    ``gateway_kwargs`` are forwarded to every :class:`ServingGateway`.
    """
    if num_replicas < 1:
        raise ValueError("num_replicas must be >= 1")
    if store is None:
        store = VersionedEmbeddingStore.from_model(model)
    gateway_kwargs.setdefault("cpu_executor", "thread")
    replicas = {
        f"replica-{index}": ServingGateway(store, **gateway_kwargs)
        for index in range(num_replicas)
    }
    return FleetRouter(
        replicas, policy=policy, salt=salt, max_failovers=max_failovers,
        default_deadline_s=default_deadline_s)
