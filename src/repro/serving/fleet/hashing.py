"""Rendezvous (highest-random-weight) hashing for session routing.

Every (key, node) pair gets a deterministic pseudo-random score from the
shared :func:`repro.serving.obs.ids.mix64` primitive (the same salt-mixed
splitmix64 the A/B bucket router hashes session ids with); a key routes
to the node with the highest score.  Two properties make this the right
front-end policy for a replica fleet:

* **No coordination.**  Any router instance with the same node list makes
  the same decision — there is no ring state to replicate and no bucket
  map to rebalance.
* **Minimal disruption.**  Removing a node only moves the keys that node
  owned (their new owner is their previous runner-up); every other key's
  argmax is untouched.  Adding a node only steals the keys it now wins.
  ``tests/test_fleet_properties.py`` checks this exactly.

Weighted scores use the standard logarithmic method: node ``i`` with
weight ``w_i`` scores ``-w_i / ln(u)`` for ``u`` uniform in (0, 1), which
routes each key to node ``i`` with probability ``w_i / sum(w)`` in the
limit — so capacity-skewed fleets route proportionally without a second
hashing scheme (uniform weights reduce to plain highest-hash order).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.serving.obs.ids import key_to_u64, mix64_int

__all__ = ["node_salt", "rendezvous_choose", "rendezvous_rank", "rendezvous_score"]

_TWO_64 = 2.0**64


def node_salt(node: object, salt: int = 0) -> int:
    """The per-node mixing salt: node identity finalised under a fleet salt.

    Finalising the node key decorrelates nodes whose raw keys are close
    (e.g. ``"replica-0"`` / ``"replica-1"``), and ``salt`` lets two fleets
    over the same node names route independently.
    """
    return mix64_int(key_to_u64(node), salt)


def rendezvous_score(key: object, node: object, weight: float = 1.0,
                     salt: int = 0) -> float:
    """The (key, node) rendezvous score; route to the argmax over nodes.

    The uniform draw is ``(h + 0.5) / 2^64`` — strictly inside (0, 1), so
    ``ln(u)`` is finite and negative and the score is always positive.
    """
    if weight <= 0.0:
        raise ValueError("rendezvous weights must be positive")
    h = mix64_int(key_to_u64(key), node_salt(node, salt))
    u = (h + 0.5) / _TWO_64
    return -weight / math.log(u)


def rendezvous_rank(key: object, nodes: Sequence[object],
                    weights: Optional[Sequence[float]] = None,
                    salt: int = 0) -> List[object]:
    """All nodes in descending preference order for ``key``.

    The head of the list is the key's owner; the tail is its failover
    order — a router that must exclude attempted replicas walks down this
    list, which keeps retry placement exactly as deterministic as primary
    placement.
    """
    if not nodes:
        raise ValueError("rendezvous_rank needs at least one node")
    if weights is not None and len(weights) != len(nodes):
        raise ValueError("weights must match nodes one-to-one")
    scored = []
    for position, node in enumerate(nodes):
        weight = 1.0 if weights is None else float(weights[position])
        scored.append((rendezvous_score(key, node, weight, salt), position, node))
    # Ties are impossible in practice (64-bit scores) but the position
    # tiebreak keeps the order total and input-order stable if they happen.
    scored.sort(key=lambda item: (-item[0], item[1]))
    return [node for _, _, node in scored]


def rendezvous_choose(key: object, nodes: Sequence[object],
                      weights: Optional[Sequence[float]] = None,
                      salt: int = 0) -> object:
    """The owning node for ``key``: argmax of the rendezvous scores."""
    if not nodes:
        raise ValueError("rendezvous_choose needs at least one node")
    if weights is not None and len(weights) != len(nodes):
        raise ValueError("weights must match nodes one-to-one")
    best = None
    best_score = -math.inf
    for position, node in enumerate(nodes):
        weight = 1.0 if weights is None else float(weights[position])
        score = rendezvous_score(key, node, weight, salt)
        if score > best_score:
            best = node
            best_score = score
    return best
