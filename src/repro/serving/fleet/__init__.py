"""The replicated serving fleet: the step from "a server" to "a service".

Every earlier layer of the stack scales *within* one gateway process —
batching, sharding, quantization, admission control.  This package scales
*across* gateways: N replicas over one shared versioned store behind a
:class:`FleetRouter` front-end, so one stalled event loop or dead process
degrades capacity instead of taking the tier down.

=================  ====================================================
module             contents
=================  ====================================================
``fleet.hashing``  rendezvous (highest-random-weight) hashing on the
                   shared ``obs.ids.mix64`` primitive
``fleet.health``   ``HealthPolicy`` budgets + per-replica hysteresis
                   state machine (eject slow/dead, readmit shy)
``fleet.replica``  ``FleetReplica`` — gateway handle with identity,
                   membership state, and the chaos fault surface
``fleet.router``   ``FleetRouter`` — sticky rendezvous routing,
                   least-loaded fallback, bounded retry-on-failover,
                   explicit shed; ``deploy_fleet`` convenience
``fleet.chaos``    seeded ``ChaosController`` — kill / stall / slow-roll
                   replicas mid-storm, reproducibly
=================  ====================================================

A fleet exposes the gateway's async surface (``search_async`` /
``rank_async`` / ``telemetry.bucket_rows()``), so A/B arms, the load
drivers, and the example serve through it unchanged.
"""

from repro.serving.fleet.chaos import ChaosController, ChaosEvent
from repro.serving.fleet.hashing import (
    node_salt,
    rendezvous_choose,
    rendezvous_rank,
    rendezvous_score,
)
from repro.serving.fleet.health import HealthPolicy, ReplicaHealth
from repro.serving.fleet.replica import FleetReplica, ReplicaDeadError
from repro.serving.fleet.router import (
    FleetRouter,
    FleetUnavailableError,
    deploy_fleet,
)

__all__ = [
    "ChaosController",
    "ChaosEvent",
    "FleetReplica",
    "FleetRouter",
    "FleetUnavailableError",
    "HealthPolicy",
    "ReplicaDeadError",
    "ReplicaHealth",
    "deploy_fleet",
    "node_salt",
    "rendezvous_choose",
    "rendezvous_rank",
    "rendezvous_score",
]
