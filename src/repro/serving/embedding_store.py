"""Embedding store: the daily-refreshed inference artefact of the pipeline.

The production Inference Platform materialises query and service embeddings
once per day; online requests only perform lookups.  This class is that
artefact: a pair of dense arrays with id-based lookup, refresh and staleness
accounting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class EmbeddingStore:
    """Lookup table of query and service embeddings."""

    def __init__(self, query_embeddings: np.ndarray, service_embeddings: np.ndarray,
                 version: int = 0) -> None:
        query_embeddings = np.asarray(query_embeddings, dtype=np.float64)
        service_embeddings = np.asarray(service_embeddings, dtype=np.float64)
        if query_embeddings.ndim != 2 or service_embeddings.ndim != 2:
            raise ValueError("embeddings must be 2-D arrays")
        if query_embeddings.shape[1] != service_embeddings.shape[1]:
            raise ValueError("query and service embeddings must share the same dimensionality")
        self._queries = query_embeddings
        self._services = service_embeddings
        self.version = version

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def num_queries(self) -> int:
        return self._queries.shape[0]

    @property
    def num_services(self) -> int:
        return self._services.shape[0]

    @property
    def embedding_dim(self) -> int:
        return self._queries.shape[1]

    def query(self, query_ids: Sequence[int]) -> np.ndarray:
        """Embeddings of the given query ids."""
        return self._queries[np.asarray(query_ids, dtype=np.int64)]

    def service(self, service_ids: Sequence[int]) -> np.ndarray:
        """Embeddings of the given service ids."""
        return self._services[np.asarray(service_ids, dtype=np.int64)]

    def all_services(self) -> np.ndarray:
        """The full service embedding matrix (used by the retriever)."""
        return self._services

    # ------------------------------------------------------------------ #
    # Refresh (the "daily embedding inference" of Fig. 9)
    # ------------------------------------------------------------------ #
    def refresh(self, query_embeddings: np.ndarray, service_embeddings: np.ndarray) -> int:
        """Replace the stored embeddings; returns the new version number."""
        replacement = EmbeddingStore(query_embeddings, service_embeddings)
        if replacement.embedding_dim != self.embedding_dim:
            raise ValueError("refresh must keep the embedding dimensionality")
        self._queries = replacement._queries
        self._services = replacement._services
        self.version += 1
        return self.version

    @classmethod
    def from_model(cls, model, version: int = 0) -> "EmbeddingStore":
        """Build a store from any model exposing query/service embeddings."""
        return cls(model.query_embeddings(), model.service_embeddings(), version=version)
