"""Sharded multi-process serving tier (the ROADMAP's scale-out item).

The :class:`~repro.serving.gateway.store.VersionedEmbeddingStore` already
lays service embeddings — and their quantized replicas — out in contiguous,
row-aligned shards.  This package puts one worker per shard behind the
gateway:

* :mod:`~repro.serving.sharded.worker` — :class:`ShardWorker`: one shard's
  fp/int8/PQ tables plus a per-shard retrieval index of any registered kind,
  versioned for the two-phase hot-swap;
* :mod:`~repro.serving.sharded.merge` — :func:`merge_top_k`: exact
  vectorised k-way merging of per-shard top-K candidate lists, preserving
  single-process results bit for bit for exact scoring backends;
* :mod:`~repro.serving.sharded.pool` — serial / thread / process execution
  backends behind one :class:`WorkerPool` surface; the process backend
  hands tables off through shared memory and the in-process backends are
  bit-identical to it, which is what keeps tests and CI deterministic;
* :mod:`~repro.serving.sharded.gateway` — :class:`ShardedGateway`: the
  PR-1 request path (micro-batching, caching, telemetry, staleness) with a
  scatter/gather backend and per-shard telemetry breakdowns;
* :mod:`~repro.serving.sharded.retriever` — :class:`ShardedRetriever`: the
  light in-process variant behind ``ServingPipeline(scoring="sharded")``.

``deploy_gateway(model, num_shards=4)`` is the one-call entry point: it
builds the sharded store, subscribes the worker pool to the store's
two-phase publish protocol, and returns a gateway whose every search is
pinned to one snapshot version across all shards.
"""

from repro.serving.sharded.gateway import ShardedGateway
from repro.serving.sharded.merge import merge_top_k, shard_candidate_counts
from repro.serving.sharded.pool import (
    WORKER_KINDS,
    ProcessPool,
    SerialPool,
    ShardReply,
    ThreadPool,
    WorkerPool,
    make_pool,
    resolve_workers,
)
from repro.serving.sharded.retriever import ShardedRetriever
from repro.serving.sharded.worker import ShardVersion, ShardWorker

__all__ = [
    "ProcessPool",
    "SerialPool",
    "ShardReply",
    "ShardVersion",
    "ShardWorker",
    "ShardedGateway",
    "ShardedRetriever",
    "ThreadPool",
    "WORKER_KINDS",
    "WorkerPool",
    "make_pool",
    "merge_top_k",
    "resolve_workers",
    "shard_candidate_counts",
]
