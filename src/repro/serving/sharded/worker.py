"""One shard's serving state: its tables and its per-shard retrieval index.

A :class:`ShardWorker` owns everything needed to answer top-K queries for one
contiguous row range ``[lo, hi)`` of the service catalogue:

* the shard's fp embedding rows (a zero-copy view of the snapshot in the
  in-process backends, a shared-memory copy in the process backend),
* the shard's published quantized tables, when the store publishes them —
  the int8 rows keep the *global* per-dimension scales, which is what makes
  sharded ``int8`` scoring bit-identical to the single-process scan,
* a per-shard :class:`~repro.serving.gateway.index.RetrievalIndex` of any
  registered kind (``exact`` / ``ivf`` / ``lsh`` / ``int8`` / ``ivfpq``).

Workers are versioned like the store: :meth:`prepare` builds a new version's
tables and index while older versions keep serving, :meth:`activate` retires
everything older than the flipped version's predecessor, and :meth:`search`
answers *at an explicit version* — a request that pinned snapshot ``v``
mid-hot-swap is answered from ``v``'s tables on every shard or fails loudly,
never from a mixed pairing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.serving.gateway.index import RetrievalIndex, build_index
from repro.serving.gateway.store import StaleVersionError


@dataclass
class ShardVersion:
    """One published version's tables + index, owned by one shard worker."""

    version: int
    lo: int
    hi: int
    index: RetrievalIndex
    tables: Dict[str, object] = field(default_factory=dict)

    @property
    def num_services(self) -> int:
        return self.hi - self.lo

    @property
    def nbytes(self) -> int:
        """Resident bytes of the shard's index plus owned quantized tables."""
        total = int(self.index.nbytes)
        for kind, table in self.tables.items():
            if kind != "fp":  # fp rows are snapshot views, not worker-owned
                total += int(table.nbytes)
        return total


class ShardWorker:
    """Owns one shard's fp/int8/PQ tables and a per-shard retrieval index."""

    def __init__(
        self,
        shard: int,
        index: str = "exact",
        index_params: Optional[dict] = None,
    ) -> None:
        if shard < 0:
            raise ValueError("shard must be non-negative")
        self.shard = shard
        self.index_kind = index
        self.index_params = dict(index_params or {})
        self._lock = threading.Lock()
        self._versions: Dict[int, ShardVersion] = {}

    # ------------------------------------------------------------------ #
    # Two-phase version lifecycle
    # ------------------------------------------------------------------ #
    def prepare(
        self,
        version: int,
        services: np.ndarray,
        lo: int,
        int8_table=None,
        pq_table=None,
        opq_table=None,
    ) -> None:
        """Build ``version``'s index from this shard's rows; serve it on demand.

        ``services`` holds only the shard's rows (global ids ``lo .. lo +
        len(services)``).  When the published ``int8_table`` rows are passed
        and the index kind can consume them (``int8`` scans them, ``ivfpq``
        refines against them), they are shared instead of re-quantized —
        preserving the global scales and with them exact parity with the
        single-process quantized scan.
        """
        services = np.asarray(services)
        if services.ndim != 2:
            raise ValueError("services must be a (shard_rows, dim) matrix")
        params = dict(self.index_params)
        if self.index_kind in ("int8", "ivfpq") and int8_table is not None:
            params.setdefault("int8_table", int8_table)
        index = build_index(self.index_kind, services, **params)
        tables: Dict[str, object] = {"fp": services}
        if int8_table is not None:
            tables["int8"] = int8_table
        if pq_table is not None:
            tables["pq"] = pq_table
        if opq_table is not None:
            tables["opq"] = opq_table
        entry = ShardVersion(
            version=version,
            lo=int(lo),
            hi=int(lo) + services.shape[0],
            index=index,
            tables=tables,
        )
        with self._lock:
            self._versions[version] = entry

    def prepare_snapshot(self, snapshot) -> None:
        """Prepare from a store snapshot (zero-copy in-process handoff)."""
        ids, services = snapshot.shard(self.shard)
        lo = int(ids[0]) if ids.size else int(snapshot.shard_bounds[self.shard])
        quantized = getattr(snapshot, "quantized", {})
        lo_bound = snapshot.shard_bounds[self.shard]
        hi_bound = snapshot.shard_bounds[self.shard + 1]
        int8_table = quantized.get("int8")
        pq_table = quantized.get("pq")
        opq_table = quantized.get("opq")
        self.prepare(
            snapshot.version,
            services,
            lo,
            int8_table=(
                int8_table.rows(lo_bound, hi_bound) if int8_table is not None else None
            ),
            pq_table=(
                pq_table.rows(lo_bound, hi_bound) if pq_table is not None else None
            ),
            opq_table=(
                opq_table.rows(lo_bound, hi_bound) if opq_table is not None else None
            ),
        )

    def activate(self, version: int) -> None:
        """``version`` flipped to current: keep it and its predecessor only.

        The predecessor stays resident so a request that pinned the previous
        snapshot right before the flip can still be answered at its version.
        """
        with self._lock:
            if version not in self._versions:
                raise KeyError(f"shard {self.shard} never prepared version {version}")
            for stale in [v for v in self._versions if v < version - 1]:
                del self._versions[stale]

    def retire(self, version: int) -> None:
        """Drop one version's tables (aborted publish path)."""
        with self._lock:
            self._versions.pop(version, None)

    # ------------------------------------------------------------------ #
    # Query path
    # ------------------------------------------------------------------ #
    def search(
        self, version: int, queries: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` of this shard at exactly ``version``, with global ids.

        Raises :class:`~repro.serving.gateway.store.StaleVersionError` when
        the version is not resident here — the request path re-pins the
        fresh snapshot and retries rather than silently blending table
        generations.
        """
        entry = self._versions.get(version)
        if entry is None:
            known = sorted(self._versions) or ["none"]
            raise StaleVersionError(
                f"shard {self.shard} holds no tables for version {version} "
                f"(resident: {known})"
            )
        ids, scores = entry.index.search(queries, k)
        return np.where(ids >= 0, ids + entry.lo, ids), scores

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def versions(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._versions))

    def version_state(self, version: int) -> ShardVersion:
        entry = self._versions.get(version)
        if entry is None:
            raise KeyError(f"shard {self.shard} holds no version {version}")
        return entry

    def nbytes(self, version: int) -> int:
        return self.version_state(version).nbytes
