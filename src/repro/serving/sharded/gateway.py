"""The sharded serving gateway: scatter/gather top-K over a worker pool.

:class:`ShardedGateway` is the multi-worker deployment of the PR-1 gateway:
the same micro-batching scheduler, result cache, staleness contract and
telemetry, but the backend search scatters every de-duplicated micro-batch
to one :class:`~repro.serving.sharded.worker.ShardWorker` per contiguous
store shard, gathers the per-shard top-K candidate lists and merges them
exactly (:func:`~repro.serving.sharded.merge.merge_top_k`).  For exact
scoring backends (``exact`` / ``int8``) the merged result is bit-identical
to the single-process gateway's; for the ANN kinds each shard builds its own
index over its rows, and recall stays governed by the same per-shard
probe/refine knobs.

Hot-swaps ride the store's two-phase listener protocol: a publish prepares
the new version on every worker *before* the store's reference flip, and
every search is pinned to the snapshot version the batch observed — the pool
echoes the version each shard actually served, and a mismatch fails the
batch loudly rather than blending table generations.  Per-shard latency,
query and gather-width breakdowns land in
:meth:`~repro.serving.gateway.telemetry.GatewayTelemetry.shard_rows`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.serving.gateway.gateway import ServingGateway
from repro.serving.gateway.store import VersionedEmbeddingStore
from repro.serving.sharded.merge import merge_top_k
from repro.serving.sharded.pool import make_pool, resolve_workers


class ShardedGateway(ServingGateway):
    """Scatter/gather request front-end over one worker per store shard."""

    def __init__(
        self,
        store: VersionedEmbeddingStore,
        index: str = "ivf",
        index_params: Optional[dict] = None,
        workers: str = "auto",
        search_timeout_s: float = 60.0,
        **gateway_kwargs,
    ) -> None:
        snapshot = store.snapshot()
        if snapshot.num_shards < 2:
            raise ValueError(
                "ShardedGateway needs a store with at least 2 shards; "
                "use ServingGateway (or deploy_gateway(num_shards=1)) instead"
            )
        self.workers = resolve_workers(workers)
        self.pool = make_pool(
            self.workers,
            snapshot.num_shards,
            index=index,
            index_params=index_params,
            timeout_s=search_timeout_s,
        )
        try:
            super().__init__(
                store, index=index, index_params=index_params, **gateway_kwargs
            )
        except BaseException:
            self.pool.close()
            raise

    # ------------------------------------------------------------------ #
    # Two-phase snapshot listener: delegate the table lifecycle to the pool
    # ------------------------------------------------------------------ #
    def prepare(self, snapshot) -> None:
        """Every worker builds the new version before the store flips."""
        self.pool.prepare(snapshot)

    def activate(self, snapshot) -> None:
        """Flip happened: workers retire stale versions, cache invalidates."""
        self.pool.activate(snapshot)
        super().activate(snapshot)

    def retire(self, version: int) -> None:
        """Aborted publish: drop the dead version on every worker."""
        self.pool.retire(version)

    # ------------------------------------------------------------------ #
    # Scatter/gather backend search
    # ------------------------------------------------------------------ #
    def _search_backend(
        self, snapshot, query_matrix: np.ndarray, k: int, spans=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scatter the batch to all shards, gather, exact-merge the top-K.

        Each reply carries the version the shard actually served; anything
        other than exactly the pinned snapshot version on every shard is a
        consistency violation and fails the batch.  When ``spans`` is a
        traced batch, the pool receives the pipe-portable trace context and
        every reply carries a worker-side child span.
        """
        trace_ctx = spans.pipe_context() if spans is not None else None
        t0 = spans.clock() if spans is not None else 0.0
        replies = self.pool.search(
            snapshot.version, query_matrix, k, trace_ctx=trace_ctx
        )
        t1 = spans.clock() if spans is not None else 0.0
        return self._merge_replies(
            snapshot, query_matrix.shape[0], replies, k,
            spans=spans, window=(t0, t1),
        )

    async def _search_backend_async(
        self, snapshot, query_matrix: np.ndarray, k: int, spans=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The asyncio-native scatter/gather: shard work overlaps via the
        event loop (executor futures for in-process workers, pipe-fd readers
        for the process backend) instead of a thread fan-out, then the same
        exact merge and version check as the sync path."""
        trace_ctx = spans.pipe_context() if spans is not None else None
        t0 = spans.clock() if spans is not None else 0.0
        replies = await self.pool.search_async(
            snapshot.version, query_matrix, k, trace_ctx=trace_ctx
        )
        t1 = spans.clock() if spans is not None else 0.0
        return self._merge_replies(
            snapshot, query_matrix.shape[0], replies, k,
            spans=spans, window=(t0, t1),
        )

    def _merge_replies(
        self, snapshot, num_queries: int, replies, k: int, spans=None, window=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        served = {reply.version for reply in replies}
        if served != {snapshot.version}:
            raise RuntimeError(
                f"mixed-version gather: pinned v{snapshot.version}, "
                f"shards served {sorted(served)}"
            )
        for reply in replies:
            self.telemetry.record_shard(
                reply.shard,
                reply.latency_s,
                queries=num_queries,
                candidates=int((reply.ids >= 0).sum()),
            )
        if spans is not None:
            t0, t1 = window
            scatter = spans.add("scatter", t0, t1, shards=len(replies))
            for reply in replies:
                if reply.span is None:
                    continue
                # Worker clocks are not ours: keep the measured duration,
                # anchor the child at the scatter start, clamp to the
                # observed window so parents always contain children.
                duration = reply.span["end_s"] - reply.span["start_s"]
                spans.add(
                    "shard_worker",
                    t0,
                    min(t0 + max(duration, 0.0), t1),
                    parent=scatter,
                    shard=reply.span["shard"],
                    **reply.span["attrs"],
                )
            m0 = spans.clock()
        merged = merge_top_k(
            [reply.ids for reply in replies],
            [reply.scores for reply in replies],
            k,
        )
        if spans is not None:
            spans.add("merge", m0, spans.clock(), shards=len(replies), k=k)
        return merged

    # ------------------------------------------------------------------ #
    # Reporting / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return self.pool.num_shards

    def summary(self) -> Dict[str, float]:
        summary = super().summary()
        summary["num_shards"] = float(self.num_shards)
        return summary

    def close(self) -> None:
        """Unsubscribe from the store and shut the worker pool down."""
        super().close()
        self.pool.close()
