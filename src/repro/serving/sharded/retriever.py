"""Sharded retriever speaking the seed ``retrieve()`` protocol.

:class:`ShardedRetriever` is the light-weight, in-process face of the
sharded tier: it partitions the store's service table into the same
contiguous ranges a :class:`~repro.serving.gateway.store.
VersionedEmbeddingStore` would ship to shard workers, builds one per-shard
:class:`~repro.serving.sharded.worker.ShardWorker`, and answers
``retrieve(query_id, k, candidate_ids)`` by scatter/gather + exact merge —
so :class:`~repro.serving.pipeline.ServingPipeline` gains
``scoring="sharded"`` without dragging in the scheduler/cache machinery.
Candidate-restricted calls fall back to an exact scan over the subset (the
restriction already bounds the cost), mirroring
:class:`~repro.serving.gateway.gateway.IndexRetriever`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.sharded.merge import merge_top_k
from repro.serving.sharded.worker import ShardWorker


class ShardedRetriever:
    """Scatter/gather retrieval behind the seed retriever protocol."""

    def __init__(
        self,
        store,
        num_shards: int = 4,
        index: str = "exact",
        index_params: Optional[dict] = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.store = store
        self.num_shards = num_shards
        self.index_kind = index
        self.index_params = dict(index_params or {})
        self._workers: Optional[List[ShardWorker]] = None
        self._version: Optional[int] = None

    def _current_workers(self) -> List[ShardWorker]:
        """Per-shard workers for the store's current version (rebuilt on refresh)."""
        version = int(getattr(self.store, "version", 0))
        if self._workers is None or self._version != version:
            services = np.asarray(self.store.all_services())
            shards = min(self.num_shards, max(1, services.shape[0]))
            bounds = [
                int(b) for b in np.linspace(0, services.shape[0], shards + 1).round()
            ]
            workers = []
            for shard in range(shards):
                lo, hi = bounds[shard], bounds[shard + 1]
                worker = ShardWorker(
                    shard, index=self.index_kind, index_params=self.index_params
                )
                worker.prepare(version, services[lo:hi], lo)
                worker.activate(version)
                workers.append(worker)
            self._workers = workers
            self._version = version
        return self._workers

    def retrieve(
        self,
        query_id: int,
        k: int,
        candidate_ids: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        if k <= 0:
            raise ValueError("k must be positive")
        query_embedding = self.store.query([query_id])[0]
        if candidate_ids is not None:
            candidates = np.asarray(candidate_ids, dtype=np.int64)
            if candidates.size == 0:
                return np.zeros(0, dtype=np.int64), np.zeros(0)
            scores = self.store.all_services()[candidates] @ query_embedding
            limit = min(k, candidates.size)
            top = np.argpartition(-scores, limit - 1)[:limit]
            order = top[np.argsort(-scores[top], kind="stable")]
            return candidates[order], scores[order]
        workers = self._current_workers()
        version = self._version
        replies = [
            worker.search(version, query_embedding[None, :], k) for worker in workers
        ]
        ids, scores = merge_top_k(
            [reply[0] for reply in replies],
            [reply[1] for reply in replies],
            k,
        )
        valid = ids[0] >= 0
        return ids[0][valid], scores[0][valid]
