"""Exact scatter/gather top-K merging for the sharded serving tier.

Every shard worker answers a micro-batch with its local top-``k`` candidate
lists (global service ids, scores sorted descending).  Because each shard's
list is already sorted, only its first ``k`` entries can ever reach the
merged top-``k`` — the classic k-way heap-merge argument — so gathering
``num_shards * k`` candidates per query and selecting the best ``k`` of them
reproduces the single-index result *exactly*.  :func:`merge_top_k` is the
vectorised equivalent of that heap merge: one batched lexicographic sort over
the gathered block instead of a per-query python heap.

Tie-breaking matches the single-process indexes bit for bit: the gateway's
:meth:`~repro.serving.gateway.index.RetrievalIndex._top_k` breaks equal
scores stably by candidate position, and positions are ascending global ids,
so the merge orders by ``(score descending, id ascending)``.  Padding follows
the same ``(-1, -inf)`` convention as every
:class:`~repro.serving.gateway.index.RetrievalIndex`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

#: Sort key used for padded slots so they order after every real candidate.
_PAD_ID = np.iinfo(np.int64).max


def merge_top_k(
    shard_ids: Sequence[np.ndarray],
    shard_scores: Sequence[np.ndarray],
    k: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-shard top-K lists into the exact global top-``k``.

    ``shard_ids`` / ``shard_scores`` hold one ``(batch, k_i)`` array per
    shard, with *global* service ids and ``(-1, -inf)`` padding.  Returns
    ``(ids, scores)`` of shape ``(batch, k)`` — identical to what a single
    index over the concatenated shards would return for exact scoring
    backends, score-descending with ties broken by ascending id.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if not shard_ids or len(shard_ids) != len(shard_scores):
        raise ValueError("need one (ids, scores) pair per shard")
    ids = np.concatenate(
        [np.asarray(block, dtype=np.int64) for block in shard_ids], axis=1
    )
    scores = np.concatenate(
        [np.asarray(block, dtype=np.float64) for block in shard_scores], axis=1
    )
    if ids.shape != scores.shape:
        raise ValueError("ids and scores must share their shape")
    batch, gathered = ids.shape
    # Padded slots sort last: their score is -inf and their id key is pushed
    # past every real id (a raw -1 would win -inf ties against real ids).
    sort_ids = np.where(ids < 0, _PAD_ID, ids)
    order = np.lexsort((sort_ids, -scores), axis=-1)[:, : min(k, gathered)]
    top_ids = np.take_along_axis(ids, order, axis=1)
    top_scores = np.take_along_axis(scores, order, axis=1)
    if top_ids.shape[1] < k:
        pad = k - top_ids.shape[1]
        top_ids = np.pad(top_ids, ((0, 0), (0, pad)), constant_values=-1)
        top_scores = np.pad(top_scores, ((0, 0), (0, pad)), constant_values=-np.inf)
    top_scores = np.where(top_ids >= 0, top_scores, -np.inf)
    return top_ids, top_scores


def shard_candidate_counts(shard_ids: Sequence[np.ndarray]) -> List[int]:
    """Real (non-padding) candidates gathered from each shard.

    The per-shard counts feed the gateway's scatter/gather telemetry; their
    sum is the total gather width the merge had to rank.
    """
    return [int((np.asarray(block) >= 0).sum()) for block in shard_ids]
