"""Worker-pool backends for the sharded gateway: serial, thread, process.

All three backends drive the same :class:`~repro.serving.sharded.worker.
ShardWorker` logic and the same two-phase version protocol, so their search
results are bit-identical for a given snapshot — which is what lets the test
suite pin the deterministic in-process backends while production deployments
run one OS process per shard:

* :class:`SerialPool` — shard searches run in a loop on the calling thread.
  Zero concurrency, zero overhead; the reference backend for tests/CI.
* :class:`ThreadPool` — one pool thread per shard.  numpy releases the GIL
  inside the BLAS scans, so shard scans overlap on multi-core hosts without
  any serialization cost.
* :class:`ProcessPool` — one OS process per shard, the production layout.
  Table handoff goes through :mod:`multiprocessing.shared_memory`: the
  parent exports the snapshot's fp table (and published int8 codes/scales)
  into shared segments, each worker copies out exactly its row slice while
  *preparing* the version, and the segments are unlinked as soon as every
  worker acked — queries and top-K replies are the only per-request pipe
  traffic.  Workers answer at explicit versions, so the two-phase flip
  holds across process boundaries exactly as it does in-process.

:func:`make_pool` resolves a backend name (``"serial"`` / ``"thread"`` /
``"process"`` / ``"auto"``) into a pool; ``"auto"`` picks processes when the
host actually has more than one CPU and threads otherwise.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import List, Optional, Tuple

import numpy as np

from repro.serving.gateway.store import StaleVersionError
from repro.serving.obs.tracing import worker_span
from repro.serving.quant.scalar import Int8Table
from repro.serving.sharded.worker import ShardWorker
from repro.serving.snapshot.codec import shard_tables_from_manifest

WORKER_KINDS = ("serial", "thread", "process", "auto")


@dataclass(frozen=True)
class ShardReply:
    """One shard's answer to a scattered micro-batch.

    ``span`` is the worker-side trace span dict
    (:func:`~repro.serving.obs.tracing.worker_span`) when the scatter
    carried a trace context, else ``None``.  Its timestamps are on the
    worker's own clock; the gateway re-anchors them inside the scatter
    window when grafting.
    """

    shard: int
    ids: np.ndarray
    scores: np.ndarray
    version: int
    latency_s: float
    span: Optional[dict] = None


def resolve_workers(kind: str) -> str:
    """Resolve a worker-backend name, mapping ``"auto"`` to the host."""
    if kind not in WORKER_KINDS:
        known = ", ".join(WORKER_KINDS)
        raise ValueError(f"unknown worker backend {kind!r} (known: {known})")
    if kind == "auto":
        return "process" if (os.cpu_count() or 1) > 1 else "thread"
    return kind


def make_pool(
    kind: str,
    num_shards: int,
    index: str = "exact",
    index_params: Optional[dict] = None,
    timeout_s: float = 60.0,
) -> "WorkerPool":
    """Build the worker pool for one backend kind."""
    kind = resolve_workers(kind)
    if kind == "serial":
        return SerialPool(num_shards, index=index, index_params=index_params)
    if kind == "thread":
        return ThreadPool(num_shards, index=index, index_params=index_params)
    return ProcessPool(
        num_shards, index=index, index_params=index_params, timeout_s=timeout_s
    )


class WorkerPool:
    """Common surface of the three backends (two-phase flip + scatter)."""

    kind = "base"

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards

    def prepare(self, snapshot) -> None:
        raise NotImplementedError

    def activate(self, snapshot) -> None:
        raise NotImplementedError

    def retire(self, version: int) -> None:
        raise NotImplementedError

    def search(
        self,
        version: int,
        queries: np.ndarray,
        k: int,
        trace_ctx: Optional[Tuple[int, int]] = None,
    ) -> List[ShardReply]:
        raise NotImplementedError

    async def search_async(
        self,
        version: int,
        queries: np.ndarray,
        k: int,
        trace_ctx: Optional[Tuple[int, int]] = None,
    ) -> List[ShardReply]:
        """Async scatter/gather; the base runs the sync scatter inline.

        The serial backend has nothing to overlap, so inline is exact; the
        thread and process backends override this so per-shard work overlaps
        on the caller's event loop instead of a thread fan-out.

        ``trace_ctx`` is the ``(trace-context id, parent span id)`` pair of
        a traced scatter; when present, every reply carries a worker-side
        span dict.
        """
        return self.search(version, queries, k, trace_ctx=trace_ctx)

    def close(self) -> None:
        """Release every worker resource; idempotent."""

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_snapshot(self, snapshot) -> None:
        if snapshot.num_shards != self.num_shards:
            raise ValueError(
                f"snapshot has {snapshot.num_shards} shards but the pool owns "
                f"{self.num_shards} workers; republish with a matching layout"
            )


class SerialPool(WorkerPool):
    """In-process reference backend: shard searches run back to back."""

    kind = "serial"

    def __init__(
        self,
        num_shards: int,
        index: str = "exact",
        index_params: Optional[dict] = None,
    ) -> None:
        super().__init__(num_shards)
        self.workers = [
            ShardWorker(shard, index=index, index_params=index_params)
            for shard in range(num_shards)
        ]

    def prepare(self, snapshot) -> None:
        self._check_snapshot(snapshot)
        for worker in self.workers:
            worker.prepare_snapshot(snapshot)

    def activate(self, snapshot) -> None:
        for worker in self.workers:
            worker.activate(snapshot.version)

    def retire(self, version: int) -> None:
        for worker in self.workers:
            worker.retire(version)

    def _one(
        self,
        worker: ShardWorker,
        version: int,
        queries: np.ndarray,
        k: int,
        trace_ctx: Optional[Tuple[int, int]] = None,
    ) -> ShardReply:
        started = time.perf_counter()
        ids, scores = worker.search(version, queries, k)
        ended = time.perf_counter()
        span = None
        if trace_ctx is not None:
            span = worker_span(
                trace_ctx, worker.shard, started, ended,
                queries=queries.shape[0], version=version,
            )
        return ShardReply(
            shard=worker.shard,
            ids=ids,
            scores=scores,
            version=version,
            latency_s=ended - started,
            span=span,
        )

    def search(
        self,
        version: int,
        queries: np.ndarray,
        k: int,
        trace_ctx: Optional[Tuple[int, int]] = None,
    ) -> List[ShardReply]:
        return [
            self._one(worker, version, queries, k, trace_ctx)
            for worker in self.workers
        ]


class ThreadPool(SerialPool):
    """One pool thread per shard; BLAS scans overlap on multi-core hosts."""

    kind = "thread"

    def __init__(
        self,
        num_shards: int,
        index: str = "exact",
        index_params: Optional[dict] = None,
    ) -> None:
        super().__init__(num_shards, index=index, index_params=index_params)
        self._executor = ThreadPoolExecutor(
            max_workers=num_shards, thread_name_prefix="shard-worker"
        )

    def search(
        self,
        version: int,
        queries: np.ndarray,
        k: int,
        trace_ctx: Optional[Tuple[int, int]] = None,
    ) -> List[ShardReply]:
        futures = [
            self._executor.submit(self._one, worker, version, queries, k, trace_ctx)
            for worker in self.workers
        ]
        return [future.result() for future in futures]

    async def search_async(
        self,
        version: int,
        queries: np.ndarray,
        k: int,
        trace_ctx: Optional[Tuple[int, int]] = None,
    ) -> List[ShardReply]:
        """Per-shard scans overlap as loop-awaited executor futures."""
        loop = asyncio.get_running_loop()
        return list(
            await asyncio.gather(
                *(
                    loop.run_in_executor(
                        self._executor,
                        self._one,
                        worker,
                        version,
                        queries,
                        k,
                        trace_ctx,
                    )
                    for worker in self.workers
                )
            )
        )

    def close(self) -> None:
        self._executor.shutdown(wait=True)


# --------------------------------------------------------------------- #
# Process backend: one OS process per shard, shared-memory table handoff
# --------------------------------------------------------------------- #
def _export_array(array: np.ndarray) -> Tuple[dict, shared_memory.SharedMemory]:
    """Copy one array into a fresh shared-memory segment; returns its meta."""
    array = np.ascontiguousarray(array)
    segment = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[...] = array
    meta = {"name": segment.name, "shape": array.shape, "dtype": str(array.dtype)}
    return meta, segment


def _read_shm_rows(meta: dict, lo: int, hi: Optional[int]) -> np.ndarray:
    """Attach one exported segment and copy out the ``[lo, hi)`` row slice.

    The parent owns (and unlinks) the segment; the attaching side must not
    let its resource tracker adopt it, or every worker exit reports a bogus
    leak.  Python 3.13 grew ``track=False`` for exactly this; older minors
    need the explicit unregister.
    """
    try:
        segment = shared_memory.SharedMemory(name=meta["name"], track=False)
        tracked = False
    except TypeError:  # Python < 3.13: no track parameter
        segment = shared_memory.SharedMemory(name=meta["name"])
        tracked = True
    try:
        view = np.ndarray(
            tuple(meta["shape"]), dtype=np.dtype(meta["dtype"]), buffer=segment.buf
        )
        rows = view[lo:hi].copy() if view.ndim > 1 else view.copy()
    finally:
        segment.close()
        if tracked:
            try:
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:
                pass
    return rows


def _shard_worker_main(  # pragma: no cover - runs in a child process
    conn, shard: int, index: str, index_params: dict
) -> None:
    """Child-process loop: prepare/activate/search/retire/stop over a pipe.

    Every received command gets exactly one reply, so the parent can always
    pair its sends and receives; errors are shipped back as strings instead
    of killing the worker.
    """
    worker = ShardWorker(shard, index=index, index_params=index_params)
    while True:
        message = conn.recv()
        op = message[0]
        try:
            if op == "prepare":
                _, version, lo, hi, metas = message
                services = _read_shm_rows(metas["services"], lo, hi)
                int8_table = None
                if "int8_codes" in metas:
                    int8_table = Int8Table(
                        codes=_read_shm_rows(metas["int8_codes"], lo, hi),
                        scales=_read_shm_rows(metas["int8_scales"], 0, None),
                    )
                worker.prepare(version, services, lo, int8_table=int8_table)
                conn.send(("ready", version))
            elif op == "prepare_disk":
                # Durable-snapshot hydration: the worker reads exactly its
                # row range off the manifest's mmapped chunks — no
                # shared-memory export, no cross-process array shipping.
                # Integrity failures surface as an "error" reply and the
                # parent falls back to the shared-memory handoff.
                _, version, lo, hi, root, manifest_path = message
                services, int8_table = shard_tables_from_manifest(
                    root, manifest_path, lo, hi
                )
                worker.prepare(version, services, lo, int8_table=int8_table)
                conn.send(("ready", version))
            elif op == "activate":
                worker.activate(message[1])
                conn.send(("ok",))
            elif op == "retire":
                worker.retire(message[1])
                conn.send(("ok",))
            elif op == "search":
                _, version, k, queries, trace_ctx = message
                started = time.perf_counter()
                ids, scores = worker.search(version, queries, k)
                ended = time.perf_counter()
                span = None
                if trace_ctx is not None:
                    # The worker's child span crosses the pipe as a plain
                    # dict; its clock is this process's perf_counter, so
                    # the parent re-anchors it inside the scatter window.
                    span = worker_span(
                        trace_ctx, shard, started, ended,
                        queries=queries.shape[0], version=version,
                    )
                conn.send(("result", ids, scores, version, ended - started, span))
            elif op == "stop":
                conn.send(("ok",))
                return
            else:
                conn.send(("error", f"unknown op {op!r}"))
        except StaleVersionError as error:
            conn.send(("stale", str(error)))
        except BaseException as error:
            conn.send(("error", f"{type(error).__name__}: {error}"))


class ProcessPool(WorkerPool):
    """One worker process per shard with shared-memory snapshot handoff."""

    kind = "process"

    def __init__(
        self,
        num_shards: int,
        index: str = "exact",
        index_params: Optional[dict] = None,
        timeout_s: float = 60.0,
        start_method: Optional[str] = None,
    ) -> None:
        super().__init__(num_shards)
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.timeout_s = timeout_s
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        context = multiprocessing.get_context(start_method)
        self._conns = []
        self._processes = []
        self._closed = False
        # The pipes carry strictly paired command/reply cycles; concurrent
        # callers (producer threads dispatching full batches, the publisher
        # preparing a hot-swap) must not interleave their sends and recvs.
        self._io_lock = threading.Lock()
        try:
            for shard in range(num_shards):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_shard_worker_main,
                    args=(child_conn, shard, index, dict(index_params or {})),
                    name=f"shard-worker-{shard}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._processes.append(process)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    # Pipe plumbing
    # ------------------------------------------------------------------ #
    def _recv_raw(self, shard: int):
        """One raw reply from one worker (timeout desyncs the pipe: fatal)."""
        conn = self._conns[shard]
        if not conn.poll(self.timeout_s):
            raise RuntimeError(
                f"shard worker {shard} did not reply within {self.timeout_s:.1f}s"
            )
        return conn.recv()

    @staticmethod
    def _checked(shard: int, reply):
        """Translate a worker's error replies; pass healthy ones through."""
        if reply[0] == "stale":
            raise StaleVersionError(reply[1])
        if reply[0] == "error":
            raise RuntimeError(f"shard worker {shard} failed: {reply[1]}")
        return reply

    def _recv_all(self) -> List[tuple]:
        """Drain one reply per worker BEFORE raising, keeping pipes paired.

        Raising on the first bad reply would leave the later workers' replies
        queued and desynchronise every subsequent command; instead the first
        failure is re-raised only after every worker answered.
        """
        replies = [self._recv_raw(shard) for shard in range(self.num_shards)]
        return [self._checked(shard, reply) for shard, reply in enumerate(replies)]

    def _broadcast(self, message, expect: str) -> List[tuple]:
        with self._io_lock:
            self._drain_stale()
            for conn in self._conns:
                conn.send(message)
            replies = self._recv_all()
        for shard, reply in enumerate(replies):
            if reply[0] != expect:
                raise RuntimeError(
                    f"shard worker {shard} replied {reply[0]!r}, expected {expect!r}"
                )
        return replies

    # ------------------------------------------------------------------ #
    # Two-phase flip
    # ------------------------------------------------------------------ #
    def prepare(self, snapshot) -> None:
        """Hand the new version's tables to every worker.

        A durably-published snapshot (``snapshot.durable`` set) skips IPC
        entirely: each worker hydrates its ``[lo, hi)`` rows straight off
        the manifest's mmapped chunks.  Everything else — and any disk
        hydration that fails its integrity checks — goes through the
        shared-memory handoff, so a damaged chunk store degrades a publish
        to the old path instead of failing it.
        """
        self._check_snapshot(snapshot)
        durable = getattr(snapshot, "durable", None)
        if durable is not None:
            try:
                self._prepare_from_disk(snapshot, durable)
                return
            except RuntimeError as error:
                import warnings

                warnings.warn(
                    f"disk hydration of snapshot v{snapshot.version} failed "
                    f"({error}); falling back to shared-memory handoff",
                    RuntimeWarning,
                    stacklevel=2,
                )
        self._prepare_from_shm(snapshot)

    def _prepare_from_disk(self, snapshot, durable) -> None:
        """Workers read their shard rows from the durable manifest."""
        with self._io_lock:
            self._drain_stale()
            for shard, conn in enumerate(self._conns):
                lo = int(snapshot.shard_bounds[shard])
                hi = int(snapshot.shard_bounds[shard + 1])
                conn.send((
                    "prepare_disk", snapshot.version, lo, hi,
                    durable.root, durable.manifest_rel,
                ))
            replies = self._recv_all()
        for shard, reply in enumerate(replies):
            if reply != ("ready", snapshot.version):
                raise RuntimeError(
                    f"shard worker {shard} failed to hydrate "
                    f"version {snapshot.version} from disk: {reply!r}"
                )

    def _prepare_from_shm(self, snapshot) -> None:
        """Export the snapshot to shared memory; every worker copies its rows.

        The segments live only for the duration of the handoff: once all
        workers acked ``ready`` they own private copies of their slices and
        the parent unlinks the shared segments immediately.
        """
        segments: List[shared_memory.SharedMemory] = []
        try:
            meta, segment = _export_array(snapshot.services)
            metas = {"services": meta}
            segments.append(segment)
            int8_table = getattr(snapshot, "quantized", {}).get("int8")
            if int8_table is not None:
                meta, segment = _export_array(int8_table.codes)
                metas["int8_codes"] = meta
                segments.append(segment)
                meta, segment = _export_array(int8_table.scales)
                metas["int8_scales"] = meta
                segments.append(segment)
            with self._io_lock:
                self._drain_stale()
                for shard, conn in enumerate(self._conns):
                    lo = int(snapshot.shard_bounds[shard])
                    hi = int(snapshot.shard_bounds[shard + 1])
                    conn.send(("prepare", snapshot.version, lo, hi, metas))
                replies = self._recv_all()
            for shard, reply in enumerate(replies):
                if reply != ("ready", snapshot.version):
                    raise RuntimeError(
                        f"shard worker {shard} failed to prepare "
                        f"version {snapshot.version}: {reply!r}"
                    )
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()

    def activate(self, snapshot) -> None:
        self._broadcast(("activate", snapshot.version), expect="ok")

    def retire(self, version: int) -> None:
        self._broadcast(("retire", version), expect="ok")

    # ------------------------------------------------------------------ #
    # Scatter/gather
    # ------------------------------------------------------------------ #
    def search(
        self,
        version: int,
        queries: np.ndarray,
        k: int,
        trace_ctx: Optional[Tuple[int, int]] = None,
    ) -> List[ShardReply]:
        queries = np.ascontiguousarray(queries)
        with self._io_lock:
            self._drain_stale()
            for conn in self._conns:
                conn.send(("search", version, int(k), queries, trace_ctx))
            raw_replies = self._recv_all()
        return self._replies_from_raw(raw_replies)

    @staticmethod
    def _replies_from_raw(raw_replies: List[tuple]) -> List[ShardReply]:
        replies = []
        for shard, reply in enumerate(raw_replies):
            tag, ids, scores, served_version, latency_s, span = reply
            if tag != "result":
                raise RuntimeError(f"shard worker {shard} replied {tag!r}")
            replies.append(
                ShardReply(
                    shard=shard,
                    ids=ids,
                    scores=scores,
                    version=served_version,
                    latency_s=latency_s,
                    span=span,
                )
            )
        return replies

    # ------------------------------------------------------------------ #
    # Async scatter/gather: the framed-pipe cycle driven by loop readers
    # ------------------------------------------------------------------ #
    async def _recv_raw_async(self, shard: int) -> tuple:
        """One raw reply, awaited through ``loop.add_reader``.

        The loop watches the pipe's fd and wakes this coroutine when the
        worker's reply frame lands, so the event loop never parks a thread
        on a blocking ``recv`` — replies from all shards are awaited
        concurrently and arrive in whatever order the workers finish.
        """
        conn = self._conns[shard]
        loop = asyncio.get_running_loop()
        readable = loop.create_future()
        fd = conn.fileno()

        def _on_readable() -> None:
            if not readable.done():
                readable.set_result(None)

        loop.add_reader(fd, _on_readable)
        try:
            await asyncio.wait_for(readable, timeout=self.timeout_s)
        except asyncio.TimeoutError:
            raise RuntimeError(
                f"shard worker {shard} did not reply within {self.timeout_s:.1f}s"
            ) from None
        finally:
            loop.remove_reader(fd)
        # The fd firing only guarantees the frame *started* arriving; the
        # recv (frame completion + unpickling) runs off-loop so a large
        # top-K reply never stalls admission or the other shards' readers.
        return await loop.run_in_executor(None, conn.recv)

    async def _recv_all_async(self) -> List[tuple]:
        """Drain one reply per worker BEFORE raising, keeping pipes paired."""
        gathered = await asyncio.gather(
            *(self._recv_raw_async(shard) for shard in range(self.num_shards)),
            return_exceptions=True,
        )
        for shard, reply in enumerate(gathered):
            if isinstance(reply, BaseException):
                raise reply
        return [self._checked(shard, reply) for shard, reply in enumerate(gathered)]

    async def search_async(
        self,
        version: int,
        queries: np.ndarray,
        k: int,
        trace_ctx: Optional[Tuple[int, int]] = None,
    ) -> List[ShardReply]:
        """Scatter on the loop; per-shard replies overlap via fd readers.

        The pipe pairing contract still holds: the command/reply cycle runs
        under ``_io_lock`` (acquired off-loop so a concurrent sync caller —
        a hot-swap preparing tables, a legacy thread dispatch — never stalls
        the event loop while it holds the pipes), and the *whole* cycle is
        shielded from caller cancellation: once the scatter was sent, the
        workers' reply frames must be drained — abandoning them would hand
        the next cycle stale replies.  The shielded cycle finishes (bounded
        by ``timeout_s``), releases the pipes, and only then does the
        cancellation surface to the caller.
        """
        queries = np.ascontiguousarray(queries)
        return await asyncio.shield(
            self._search_cycle(queries, version, int(k), trace_ctx)
        )

    async def _search_cycle(
        self,
        queries: np.ndarray,
        version: int,
        k: int,
        trace_ctx: Optional[Tuple[int, int]] = None,
    ) -> List[ShardReply]:
        loop = asyncio.get_running_loop()
        acquire = loop.run_in_executor(None, self._io_lock.acquire)
        try:
            await acquire
        except asyncio.CancelledError:
            # Only reachable on abrupt loop teardown (the shield's outer
            # await absorbs caller cancellation): the executor thread still
            # completes acquire() later, so hand the orphaned hold back.
            def _release_orphaned(future) -> None:
                if not future.cancelled():
                    self._io_lock.release()

            acquire.add_done_callback(_release_orphaned)
            raise
        try:
            self._drain_stale()
            for conn in self._conns:
                conn.send(("search", version, k, queries, trace_ctx))
            raw_replies = await self._recv_all_async()
        finally:
            self._io_lock.release()
        return self._replies_from_raw(raw_replies)

    def _drain_stale(self) -> None:
        """Discard reply frames a torn-down cycle left queued (holding
        ``_io_lock``).  The protocol is strictly paired, so anything
        readable before a command is sent is garbage from an aborted
        predecessor — never a reply this cycle is owed."""
        for conn in self._conns:
            try:
                while conn.poll(0):
                    conn.recv()
            except (EOFError, OSError):  # worker died; surface on next recv
                pass

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        with self._io_lock:
            if self._closed:
                return
            self._closed = True
            for conn in self._conns:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for process, conn in zip(self._processes, self._conns):
                process.join(timeout=2.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1.0)
                conn.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass
