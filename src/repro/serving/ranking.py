"""Ranking module: turn retrieval results into the final service list.

The ranking module keeps only the top-K services with the highest similarity
(Sec. V-F.1) and attaches the quality metadata (MAU, authoritative rating)
used by the paper's case studies (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.data.schema import ServiceSearchDataset
from repro.serving.retrieval import InnerProductRetriever


@dataclass
class RankedService:
    """One entry of the final ranking list."""

    rank: int
    service_id: int
    score: float
    name: str = ""
    mau: int = 0
    rating: int = 0


class RankingModule:
    """Produce the final ranked list of services for a query."""

    def __init__(self, retriever: InnerProductRetriever,
                 dataset: Optional[ServiceSearchDataset] = None, top_k: int = 5) -> None:
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        self.retriever = retriever
        self.dataset = dataset
        self.top_k = top_k

    def rank(self, query_id: int, k: Optional[int] = None,
             candidate_ids: Optional[Sequence[int]] = None) -> List[int]:
        """Return the ids of the top-K services for the query."""
        limit = k if k is not None else self.top_k
        service_ids, _ = self.retriever.retrieve(query_id, limit, candidate_ids=candidate_ids)
        return [int(service_id) for service_id in service_ids]

    def rank_with_metadata(self, query_id: int, k: Optional[int] = None,
                           candidate_ids: Optional[Sequence[int]] = None) -> List[RankedService]:
        """Ranked list enriched with MAU / rating for case-study style output."""
        limit = k if k is not None else self.top_k
        service_ids, scores = self.retriever.retrieve(query_id, limit, candidate_ids=candidate_ids)
        results: List[RankedService] = []
        for position, (service_id, score) in enumerate(zip(service_ids, scores), start=1):
            name, mau, rating = "", 0, 0
            if self.dataset is not None:
                service = self.dataset.service_by_id(int(service_id))
                name, mau, rating = service.name, service.mau, service.rating
            results.append(
                RankedService(
                    rank=position,
                    service_id=int(service_id),
                    score=float(score),
                    name=name,
                    mau=mau,
                    rating=rating,
                )
            )
        return results

    def average_quality(self, query_id: int, k: Optional[int] = None) -> float:
        """Mean composite quality of the returned list (used by Fig. 11 analysis)."""
        if self.dataset is None:
            raise ValueError("average_quality requires the dataset metadata")
        ranked = self.rank(query_id, k)
        if not ranked:
            return float("nan")
        qualities = [self.dataset.service_by_id(s).quality_score() for s in ranked]
        return float(np.mean(qualities))
