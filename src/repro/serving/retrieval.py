"""Top-K inner-product retrieval.

Online, GARCIA replaces the MLP click head with an inner product so that
retrieval reduces to a maximum-inner-product search over the service
embedding matrix (Sec. V-F.1).  The retriever supports optional candidate
restriction (e.g. to services sharing the query's category) and returns both
ids and scores.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.serving.embedding_store import EmbeddingStore


class ModelScoringRetriever:
    """Top-K retrieval that scores every candidate with the model's click head.

    The production system avoids this (it runs the full head over the whole
    catalogue per request) and uses the inner-product path below instead; at
    reproduction scale the catalogue is tiny, so exact scoring is affordable
    and keeps the offline and online rankings consistent.  The paper's
    latency-motivated inner-product approximation remains available through
    :class:`InnerProductRetriever`.
    """

    def __init__(self, model, num_services: int) -> None:
        if num_services <= 0:
            raise ValueError("num_services must be positive")
        self.model = model
        self.num_services = num_services

    def retrieve(
        self,
        query_id: int,
        k: int,
        candidate_ids: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(service_ids, scores)`` of the top-K services for a query."""
        if k <= 0:
            raise ValueError("k must be positive")
        candidates = (
            np.arange(self.num_services, dtype=np.int64)
            if candidate_ids is None
            else np.asarray(candidate_ids, dtype=np.int64)
        )
        if candidates.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0)
        scores = np.asarray(
            self.model.predict(np.full(len(candidates), query_id, dtype=np.int64), candidates)
        )
        k = min(k, len(candidates))
        top = np.argpartition(-scores, k - 1)[:k]
        order = top[np.argsort(-scores[top], kind="stable")]
        return candidates[order], scores[order]


class InnerProductRetriever:
    """Maximum-inner-product top-K retrieval over an embedding store."""

    def __init__(self, store: EmbeddingStore, normalize: bool = False) -> None:
        self.store = store
        self.normalize = normalize

    def _score(self, query_embedding: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        service_matrix = self.store.all_services()[candidates]
        if self.normalize:
            query_embedding = query_embedding / (np.linalg.norm(query_embedding) + 1e-12)
            norms = np.linalg.norm(service_matrix, axis=1, keepdims=True) + 1e-12
            service_matrix = service_matrix / norms
        return service_matrix @ query_embedding

    def retrieve(
        self,
        query_id: int,
        k: int,
        candidate_ids: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(service_ids, scores)`` of the top-K services for a query."""
        if k <= 0:
            raise ValueError("k must be positive")
        candidates = (
            np.arange(self.store.num_services, dtype=np.int64)
            if candidate_ids is None
            else np.asarray(candidate_ids, dtype=np.int64)
        )
        if candidates.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0)
        query_embedding = self.store.query([query_id])[0]
        scores = self._score(query_embedding, candidates)
        k = min(k, len(candidates))
        top = np.argpartition(-scores, k - 1)[:k]
        order = top[np.argsort(-scores[top], kind="stable")]
        return candidates[order], scores[order]
