"""Activation modules (thin wrappers around tensor methods)."""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent activation (used by the aggregate step, Eq. 2)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid activation (used by the CTR head, Eq. 12)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Identity(Module):
    """No-op activation, handy for configurable output layers."""

    def forward(self, x: Tensor) -> Tensor:
        return x
