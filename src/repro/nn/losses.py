"""Loss modules wrapping the functional primitives."""

from __future__ import annotations

from typing import Optional

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class BCELoss(Module):
    """Mean binary cross entropy over probabilities (GARCIA fine-tuning, Eq. 13)."""

    def forward(self, predictions: Tensor, targets) -> Tensor:
        return F.binary_cross_entropy(predictions, targets)


class BCEWithLogitsLoss(Module):
    """Mean binary cross entropy computed from raw logits."""

    def forward(self, logits: Tensor, targets) -> Tensor:
        return F.binary_cross_entropy_with_logits(logits, targets)


class InfoNCELoss(Module):
    """InfoNCE contrastive loss with a configurable temperature.

    This is the shared primitive behind KTCL (Eq. 4-5), SECL (Eq. 7) and IGCL
    (Eq. 9): anchors are pulled toward their positives and pushed away from
    the negative candidate set under a temperature-scaled cosine softmax.
    """

    def __init__(self, temperature: float = 0.1) -> None:
        super().__init__()
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.temperature = temperature

    def forward(self, anchors: Tensor, positives: Tensor,
                negatives: Optional[Tensor] = None) -> Tensor:
        return F.info_nce(anchors, positives, negatives=negatives, temperature=self.temperature)
