"""Gradient-descent optimisers.

The paper trains GARCIA and every baseline with Adam (learning rate 1e-4,
batch size 1024); SGD is included as a simpler reference used in tests.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        # De-duplicate by identity: models that share sub-modules (e.g. the
        # GARCIA-Share ablation) must not have a parameter updated twice.
        seen = set()
        self.parameters: List[Parameter] = []
        for parameter in parameters:
            if id(parameter) not in seen:
                seen.add(id(parameter))
                self.parameters.append(parameter)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(id(parameter))
                velocity = grad if velocity is None else self.momentum * velocity + grad
                self._velocity[id(parameter)] = velocity
                grad = velocity
            parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba), the optimiser used in the paper."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-4,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            key = id(parameter)
            first = self._first_moment.get(key)
            second = self._second_moment.get(key)
            first = grad * (1 - self.beta1) if first is None else self.beta1 * first + (1 - self.beta1) * grad
            second = (grad ** 2) * (1 - self.beta2) if second is None else (
                self.beta2 * second + (1 - self.beta2) * grad ** 2
            )
            self._first_moment[key] = first
            self._second_moment[key] = second
            corrected_first = first / bias_correction1
            corrected_second = second / bias_correction2
            parameter.data = parameter.data - self.lr * corrected_first / (np.sqrt(corrected_second) + self.eps)
