"""Weight initialisers.

All initialisers take an explicit :class:`numpy.random.Generator` so that the
whole reproduction is deterministic given a seed (important for the
pre-training → fine-tuning hand-off and for reproducible benchmark tables).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for weight matrices."""
    generator = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return generator.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    generator = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return generator.normal(0.0, std, size=shape)


def uniform(shape: Tuple[int, ...], low: float = -0.05, high: float = 0.05,
            rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Plain uniform initialisation, used for embedding tables."""
    generator = rng if rng is not None else np.random.default_rng()
    return generator.uniform(low, high, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
