"""Neural-network layers, initialisers and optimisers on top of the autograd engine.

The module mirrors the familiar layer/optimizer split of mainstream deep
learning frameworks so that GARCIA and the baseline models read naturally:

* :class:`Module` / :class:`Parameter` — parameter containers with recursive
  collection, train/eval switching and state (de)serialisation.
* :class:`Linear`, :class:`Embedding`, :class:`MLP`, :class:`Dropout` — the
  layers every model in the paper is composed of.
* :mod:`repro.nn.init` — Xavier/Glorot and uniform initialisers.
* :class:`Adam`, :class:`SGD` — optimisers (the paper trains with Adam).
* :mod:`repro.nn.losses` — BCE and InfoNCE loss modules.
"""

from repro.nn import init
from repro.nn.activations import Identity, ReLU, Sigmoid, Tanh
from repro.nn.layers import MLP, Dropout, Embedding, Linear, Sequential
from repro.nn.losses import BCELoss, BCEWithLogitsLoss, InfoNCELoss
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "MLP",
    "Dropout",
    "Sequential",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Adam",
    "SGD",
    "Optimizer",
    "BCELoss",
    "BCEWithLogitsLoss",
    "InfoNCELoss",
    "init",
]
