"""Parameter and Module containers.

A :class:`Parameter` is simply a :class:`~repro.autograd.Tensor` flagged as
trainable.  A :class:`Module` owns parameters and sub-modules and exposes the
recursive utilities the training loops need: parameter iteration, gradient
zeroing, train/eval mode switching and state dict export/import (used to copy
pre-trained weights into the fine-tuning stage, as the paper prescribes).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.autograd.tensor import ArrayLike, Tensor


class Parameter(Tensor):
    """A trainable tensor; always created with ``requires_grad=True``."""

    def __init__(self, data: ArrayLike, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for every layer and model in the reproduction."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Attribute handling: registering parameters / sub-modules on assignment
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Explicitly register a sub-module (used for modules kept in lists)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Parameter iteration
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def parameters(self) -> List[Parameter]:
        """Return the flat list of all trainable parameters."""
        return [parameter for _, parameter in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalar weights."""
        return int(sum(parameter.size for parameter in self.parameters()))

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------ #
    # Training / evaluation mode
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set the module (and children) to training mode."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set the module (and children) to evaluation mode."""
        return self.train(False)

    # ------------------------------------------------------------------ #
    # State (de)serialisation — used for pre-train → fine-tune hand-off
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a name → array copy of every parameter."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Copy arrays from ``state`` into matching parameters.

        With ``strict=False`` parameters missing from ``state`` are left
        untouched and extra keys are ignored, which is exactly what the
        pre-training → fine-tuning hand-off needs (the fine-tuning model adds
        a prediction head that has no pre-trained weights).
        """
        own = dict(self.named_parameters())
        missing = [name for name in own if name not in state]
        unexpected = [name for name in state if name not in own]
        if strict and (missing or unexpected):
            raise KeyError(f"state dict mismatch: missing={missing}, unexpected={unexpected}")
        for name, parameter in own.items():
            if name not in state:
                continue
            array = np.asarray(state[name], dtype=np.float64)
            if array.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {parameter.data.shape}, got {array.shape}"
                )
            parameter.data = array.copy()

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_repr = ", ".join(self._modules.keys())
        return f"{type(self).__name__}({child_repr})"
