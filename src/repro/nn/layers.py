"""Core layers: Linear, Embedding, MLP, Dropout and Sequential."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.activations import Identity, ReLU, Sigmoid, Tanh
from repro.nn.module import Module, Parameter

_ACTIVATIONS = {
    "relu": ReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "identity": Identity,
    "none": Identity,
}


def build_activation(name: str) -> Module:
    """Construct an activation module from its lower-case name."""
    key = name.lower()
    if key not in _ACTIVATIONS:
        raise ValueError(f"unknown activation {name!r}; expected one of {sorted(_ACTIVATIONS)}")
    return _ACTIVATIONS[key]()


class Linear(Module):
    """Affine layer ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input / output dimensionality.
    bias:
        Whether to learn an additive bias term.
    rng:
        Random generator for deterministic Xavier initialisation.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng=rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        output = x @ self.weight
        if self.bias is not None:
            output = output + self.bias
        return output

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """Learnable lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding dimensions must be positive")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init.uniform((num_embeddings, embedding_dim), low=-0.1, high=0.1, rng=rng),
            name="embedding",
        )

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}); "
                f"got min={indices.min()}, max={indices.max()}"
            )
        return self.weight.index_select(indices, axis=0)

    def all_embeddings(self) -> Tensor:
        """Return the full table as a tensor participating in autograd."""
        return self.weight.index_select(np.arange(self.num_embeddings), axis=0)

    def __repr__(self) -> str:
        return f"Embedding(num={self.num_embeddings}, dim={self.embedding_dim})"


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, rate: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, rng=self._rng, training=self.training)


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, modules: Iterable[Module]) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for index, module in enumerate(modules):
            self.register_module(f"layer_{index}", module)
            self._layers.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes and activation.

    The GARCIA fine-tuning head (Eq. 12) is ``MLP([2d, d, 1])`` with ReLU
    hidden activations and a sigmoid output.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        activation: str = "relu",
        output_activation: str = "identity",
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if len(layer_sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        self.layer_sizes = tuple(int(s) for s in layer_sizes)
        modules: List[Module] = []
        for index in range(len(self.layer_sizes) - 1):
            modules.append(Linear(self.layer_sizes[index], self.layer_sizes[index + 1], rng=rng))
            is_last = index == len(self.layer_sizes) - 2
            if not is_last:
                modules.append(build_activation(activation))
                if dropout > 0.0:
                    modules.append(Dropout(dropout, rng=rng))
        modules.append(build_activation(output_activation))
        self.network = Sequential(modules)

    def forward(self, x: Tensor) -> Tensor:
        return self.network(x)
