"""Generic mini-batch trainer.

Runs epochs over a :class:`~repro.data.loaders.BatchLoader`, calling a
configurable loss method on the model, backpropagating and stepping Adam.
Optionally evaluates on held-out interactions after every epoch, recording
everything in a :class:`~repro.training.history.TrainingHistory` (which is
what the Fig. 5 / Fig. 6 "AUC vs training steps" curves are built from).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.data.loaders import BatchLoader, InteractionBatch
from repro.data.schema import Interaction
from repro.data.splits import HeadTailSplit
from repro.eval.evaluator import Evaluator
from repro.models.base import RankingModel
from repro.nn import Adam
from repro.training.history import EpochRecord, TrainingHistory


@dataclass
class TrainerConfig:
    """Hyper-parameters of the optimisation loop."""

    num_epochs: int = 5
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    batch_size: int = 256
    shuffle: bool = True
    seed: int = 0
    #: Evaluate on the validation interactions every ``eval_every`` epochs
    #: (0 disables periodic evaluation).
    eval_every: int = 1

    def __post_init__(self) -> None:
        if self.num_epochs < 0:
            raise ValueError("num_epochs must be non-negative")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")


class Trainer:
    """Mini-batch gradient-descent driver for any :class:`RankingModel`."""

    def __init__(
        self,
        model: RankingModel,
        config: Optional[TrainerConfig] = None,
        loss_fn: Optional[Callable[[InteractionBatch], object]] = None,
        evaluator: Optional[Evaluator] = None,
    ) -> None:
        self.model = model
        self.config = config if config is not None else TrainerConfig()
        self._loss_fn = loss_fn if loss_fn is not None else model.training_loss
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.evaluator = evaluator if evaluator is not None else Evaluator()
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def fit(
        self,
        train_interactions: Sequence[Interaction],
        validation_interactions: Optional[Sequence[Interaction]] = None,
        head_tail: Optional[HeadTailSplit] = None,
    ) -> TrainingHistory:
        """Train for ``num_epochs`` epochs; returns the populated history."""
        loader = BatchLoader(
            train_interactions,
            batch_size=self.config.batch_size,
            shuffle=self.config.shuffle,
            seed=self.config.seed,
        )
        for epoch in range(1, self.config.num_epochs + 1):
            epoch_loss, num_steps = self._run_epoch(loader)
            metrics = {}
            should_eval = (
                validation_interactions is not None
                and head_tail is not None
                and self.config.eval_every > 0
                and epoch % self.config.eval_every == 0
            )
            if should_eval:
                report = self.evaluator.evaluate(
                    self.model, validation_interactions, head_tail, model_name=self.model.name
                )
                metrics = {
                    "head_auc": report.head.auc,
                    "tail_auc": report.tail.auc,
                    "overall_auc": report.overall.auc,
                    "tail_gauc": report.tail.gauc,
                    "tail_ndcg": report.tail.ndcg,
                }
            self.history.append(
                EpochRecord(epoch=epoch, loss=epoch_loss, metrics=metrics, num_steps=num_steps)
            )
        return self.history

    def _run_epoch(self, loader: BatchLoader) -> tuple:
        self.model.train()
        total_loss = 0.0
        num_steps = 0
        for batch in loader:
            loss = self._loss_fn(batch)
            if getattr(loss, "requires_grad", False):
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                self.model.invalidate_cache()
            total_loss += float(loss.numpy()) if hasattr(loss, "numpy") else float(loss)
            num_steps += 1
        self.model.eval()
        average = total_loss / num_steps if num_steps else 0.0
        return average, num_steps
