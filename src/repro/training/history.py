"""Training history containers used by trainers and the sensitivity sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class EpochRecord:
    """Loss and optional evaluation metrics of one epoch."""

    epoch: int
    loss: float
    metrics: Dict[str, float] = field(default_factory=dict)
    num_steps: int = 0


@dataclass
class TrainingHistory:
    """Ordered record of epochs; feeds the Fig. 5 / Fig. 6 step curves."""

    records: List[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    def losses(self) -> List[float]:
        return [record.loss for record in self.records]

    def metric(self, name: str) -> List[float]:
        """Per-epoch series of one evaluation metric (``nan`` when missing)."""
        return [record.metrics.get(name, float("nan")) for record in self.records]

    def best_epoch(self, metric: str = "overall_auc", maximize: bool = True) -> Optional[EpochRecord]:
        candidates = [record for record in self.records if metric in record.metrics]
        if not candidates:
            return None
        key = (lambda record: record.metrics[metric]) if maximize else (lambda record: -record.metrics[metric])
        return max(candidates, key=key)

    @property
    def num_epochs(self) -> int:
        return len(self.records)

    @property
    def total_steps(self) -> int:
        return sum(record.num_steps for record in self.records)
