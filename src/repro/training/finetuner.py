"""GARCIA fine-tuning stage (and the full pre-train → fine-tune pipeline).

Following the paper's learning schema (Sec. IV-C), the fine-tuner initialises
the model with pre-trained parameters and optimises the binary cross-entropy
click objective (Eq. 13).  :func:`train_garcia` packages the complete
pipeline used by the experiments and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.data.schema import Interaction
from repro.data.splits import HeadTailSplit
from repro.models.garcia.model import GARCIA
from repro.training.history import TrainingHistory
from repro.training.pretrainer import Pretrainer
from repro.training.trainer import Trainer, TrainerConfig


class Finetuner:
    """Fine-tune a (optionally pre-trained) GARCIA model on the click objective."""

    def __init__(self, model: GARCIA, config: Optional[TrainerConfig] = None) -> None:
        self.model = model
        self.config = config if config is not None else TrainerConfig()
        self._trainer = Trainer(model, config=self.config, loss_fn=model.finetune_loss)

    def run(
        self,
        train_interactions: Sequence[Interaction],
        validation_interactions: Optional[Sequence[Interaction]] = None,
        head_tail: Optional[HeadTailSplit] = None,
        pretrained_state: Optional[Dict[str, np.ndarray]] = None,
    ) -> TrainingHistory:
        """Load pre-trained weights (if given) and run the supervised stage."""
        if pretrained_state is not None:
            self.model.load_state_dict(pretrained_state, strict=False)
            self.model.invalidate_cache()
        return self._trainer.fit(train_interactions, validation_interactions, head_tail)


@dataclass
class GarciaTrainingResult:
    """Histories of both learning stages."""

    pretrain_history: TrainingHistory
    finetune_history: TrainingHistory


def train_garcia(
    model: GARCIA,
    train_interactions: Sequence[Interaction],
    validation_interactions: Optional[Sequence[Interaction]] = None,
    head_tail: Optional[HeadTailSplit] = None,
    pretrain_config: Optional[TrainerConfig] = None,
    finetune_config: Optional[TrainerConfig] = None,
) -> GarciaTrainingResult:
    """Run the full pre-training → fine-tuning pipeline on one GARCIA model."""
    pretrainer = Pretrainer(model, config=pretrain_config)
    pretrain_history = pretrainer.run(train_interactions)
    finetuner = Finetuner(model, config=finetune_config)
    finetune_history = finetuner.run(
        train_interactions,
        validation_interactions=validation_interactions,
        head_tail=head_tail,
        pretrained_state=None,  # weights already live in the same model object
    )
    return GarciaTrainingResult(
        pretrain_history=pretrain_history,
        finetune_history=finetune_history,
    )
