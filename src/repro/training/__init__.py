"""Training loops: generic trainer, GARCIA pre-trainer and fine-tuner."""

from repro.training.finetuner import Finetuner
from repro.training.history import EpochRecord, TrainingHistory
from repro.training.pretrainer import Pretrainer
from repro.training.seeding import seed_everything
from repro.training.trainer import Trainer, TrainerConfig

__all__ = [
    "TrainingHistory",
    "EpochRecord",
    "Trainer",
    "TrainerConfig",
    "Pretrainer",
    "Finetuner",
    "seed_everything",
]
