"""Training loops: generic trainer, GARCIA pre-trainer and fine-tuner."""

from repro.training.history import TrainingHistory, EpochRecord
from repro.training.trainer import Trainer, TrainerConfig
from repro.training.pretrainer import Pretrainer
from repro.training.finetuner import Finetuner
from repro.training.seeding import seed_everything

__all__ = [
    "TrainingHistory",
    "EpochRecord",
    "Trainer",
    "TrainerConfig",
    "Pretrainer",
    "Finetuner",
    "seed_everything",
]
