"""Deterministic seeding helpers."""

from __future__ import annotations

import random

import numpy as np


def seed_everything(seed: int) -> np.random.Generator:
    """Seed Python and NumPy global state and return a dedicated generator.

    Models and loaders in this reproduction take explicit generators, so the
    global seeding mainly protects against accidental use of the module-level
    ``np.random`` API inside user code or third-party helpers.
    """
    random.seed(seed)
    np.random.seed(seed % (2 ** 32))
    return np.random.default_rng(seed)
