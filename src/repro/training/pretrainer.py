"""GARCIA pre-training stage.

The pre-trainer optimises the multi-granularity contrastive objective
``L_P = L_KTCL + α L_SECL + β L_IGCL`` (Eq. 11) over the training
interactions.  It is a thin specialisation of :class:`~repro.training.trainer.Trainer`
that swaps the loss function for :meth:`GARCIA.pretrain_loss` and returns the
learned parameter state so the fine-tuning stage can start from it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.data.schema import Interaction
from repro.models.garcia.model import GARCIA
from repro.training.history import TrainingHistory
from repro.training.trainer import Trainer, TrainerConfig


class Pretrainer:
    """Optimise the multi-granularity contrastive objective of GARCIA."""

    def __init__(self, model: GARCIA, config: Optional[TrainerConfig] = None) -> None:
        self.model = model
        self.config = config if config is not None else TrainerConfig(num_epochs=3, eval_every=0)
        self._trainer = Trainer(model, config=self.config, loss_fn=model.pretrain_loss)

    def run(self, train_interactions: Sequence[Interaction]) -> TrainingHistory:
        """Pre-train and return the loss history."""
        if not self._has_active_objective():
            # "GARCIA w.o. ALL": every contrastive granularity disabled, so
            # pre-training is a no-op by construction.
            return TrainingHistory()
        return self._trainer.fit(train_interactions)

    def pretrained_state(self) -> Dict[str, np.ndarray]:
        """Parameter state to hand over to the fine-tuning stage."""
        return self.model.state_dict()

    def _has_active_objective(self) -> bool:
        config = self.model.config
        return config.use_ktcl or config.use_secl or config.use_igcl
