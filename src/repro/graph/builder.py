"""GraphBuilder: derive the service-search graph from feedback logs.

The builder mirrors the production "Node Feature Extractor" and "Relation
Extractor" components of the deployment pipeline (Fig. 9):

* the **interaction condition** adds an edge between a query and a service
  when the service was clicked under that query within the training window,
  keeping the observed click-through rate as an edge feature;
* the **correlation condition** adds an edge when the pair shares at least a
  configurable number of correlation attributes (city, brand, category),
  keeping the shared-attribute ratio as an edge feature.

Only *training* interactions may be used for edge construction so that graph
structure never leaks validation/test labels.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.data.schema import CORRELATION_ATTRIBUTES, Interaction, ServiceSearchDataset
from repro.data.splits import HeadTailSplit
from repro.graph.search_graph import ServiceSearchGraph


@dataclass
class GraphBuildConfig:
    """Knobs of the graph construction process."""

    #: Minimum number of clicks for the interaction condition to fire.
    min_clicks: int = 1
    #: Minimum number of shared correlation attributes for a correlation edge.
    min_shared_attributes: int = 2
    #: Cap on correlation edges added per query (keeps density bounded on
    #: datasets with very popular brands/cities).
    max_correlation_edges_per_query: int = 20
    #: Window (in days, counted back from the latest timestamp) from which
    #: interactions are considered; the paper uses the past 30 days.
    interaction_window_days: int = 30


class GraphBuilder:
    """Build a :class:`ServiceSearchGraph` from a dataset and its train split."""

    def __init__(self, config: Optional[GraphBuildConfig] = None) -> None:
        self.config = config if config is not None else GraphBuildConfig()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def build(
        self,
        dataset: ServiceSearchDataset,
        train_interactions: Sequence[Interaction],
        head_tail: HeadTailSplit,
    ) -> ServiceSearchGraph:
        """Construct the graph from training feedback and entity attributes."""
        num_queries = dataset.num_queries
        num_services = dataset.num_services
        total = num_queries + num_services

        adjacency = np.zeros((total, total), dtype=np.float64)
        ctr = np.zeros((total, total), dtype=np.float64)
        correlation = np.zeros((total, total), dtype=np.float64)

        self._add_interaction_edges(dataset, train_interactions, adjacency, ctr)
        self._add_correlation_edges(dataset, adjacency, correlation)

        query_attributes = self._attribute_arrays(
            (query.attributes for query in dataset.queries), num_queries
        )
        service_attributes = self._attribute_arrays(
            (service.attributes for service in dataset.services), num_services
        )
        return ServiceSearchGraph(
            num_queries=num_queries,
            num_services=num_services,
            adjacency=adjacency,
            ctr=ctr,
            correlation=correlation,
            query_attributes=query_attributes,
            service_attributes=service_attributes,
            head_query_ids=head_tail.head_array(),
            name=dataset.name,
        )

    # ------------------------------------------------------------------ #
    # Interaction condition
    # ------------------------------------------------------------------ #
    def _add_interaction_edges(
        self,
        dataset: ServiceSearchDataset,
        interactions: Sequence[Interaction],
        adjacency: np.ndarray,
        ctr: np.ndarray,
    ) -> None:
        if not interactions:
            return
        latest = max(i.timestamp for i in interactions)
        cutoff = latest - self.config.interaction_window_days
        exposures: Dict[Tuple[int, int], int] = defaultdict(int)
        clicks: Dict[Tuple[int, int], int] = defaultdict(int)
        for interaction in interactions:
            if interaction.timestamp < cutoff:
                continue
            key = (interaction.query_id, interaction.service_id)
            exposures[key] += 1
            clicks[key] += interaction.clicked
        num_queries = dataset.num_queries
        for (query_id, service_id), click_count in clicks.items():
            if click_count < self.config.min_clicks:
                continue
            query_node = query_id
            service_node = num_queries + service_id
            rate = click_count / max(exposures[(query_id, service_id)], 1)
            adjacency[query_node, service_node] = 1.0
            adjacency[service_node, query_node] = 1.0
            ctr[query_node, service_node] = rate
            ctr[service_node, query_node] = rate

    # ------------------------------------------------------------------ #
    # Correlation condition
    # ------------------------------------------------------------------ #
    def _add_correlation_edges(
        self,
        dataset: ServiceSearchDataset,
        adjacency: np.ndarray,
        correlation: np.ndarray,
    ) -> None:
        num_queries = dataset.num_queries
        num_attributes = len(CORRELATION_ATTRIBUTES)
        # Index services by each attribute value for fast candidate lookup.
        services_by_attr: Dict[Tuple[str, int], list] = defaultdict(list)
        for service in dataset.services:
            for key in CORRELATION_ATTRIBUTES:
                services_by_attr[(key, service.attributes.get(key, -1))].append(service.service_id)

        for query in dataset.queries:
            candidate_matches: Dict[int, int] = defaultdict(int)
            for key in CORRELATION_ATTRIBUTES:
                value = query.attributes.get(key, -2)
                for service_id in services_by_attr.get((key, value), ()):
                    candidate_matches[service_id] += 1
            qualified = [
                (matches, service_id)
                for service_id, matches in candidate_matches.items()
                if matches >= self.config.min_shared_attributes
            ]
            qualified.sort(key=lambda pair: (-pair[0], pair[1]))
            for matches, service_id in qualified[: self.config.max_correlation_edges_per_query]:
                query_node = query.query_id
                service_node = num_queries + service_id
                strength = matches / num_attributes
                adjacency[query_node, service_node] = 1.0
                adjacency[service_node, query_node] = 1.0
                correlation[query_node, service_node] = strength
                correlation[service_node, query_node] = strength

    # ------------------------------------------------------------------ #
    # Node features
    # ------------------------------------------------------------------ #
    @staticmethod
    def _attribute_arrays(attribute_dicts: Iterable[Dict[str, int]], count: int) -> Dict[str, np.ndarray]:
        arrays: Dict[str, np.ndarray] = {key: np.zeros(count, dtype=np.int64) for key in CORRELATION_ATTRIBUTES}
        for index, attributes in enumerate(attribute_dicts):
            for key in CORRELATION_ATTRIBUTES:
                arrays[key][index] = attributes.get(key, 0)
        return arrays
