"""Intention forest utilities.

Wraps the flat intention list of a dataset into the structures GARCIA needs:

* bottom-up level ordering for the hierarchical intention encoder (Eq. 3),
* parent chains ``P_{q,i}`` (the intention of a query plus all its ancestors)
  used as IGCL positives (Eq. 9),
* level-matched negative sampling: "hard" negatives share the tree and the
  level of the positive intention, "easy" negatives have the same level but
  come from a different tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.schema import Intention, ServiceSearchDataset


class IntentionForest:
    """Structured view over a dataset's intention nodes."""

    def __init__(self, intentions: Sequence[Intention], max_level: Optional[int] = None) -> None:
        if not intentions:
            raise ValueError("IntentionForest requires at least one intention node")
        self.intentions: List[Intention] = list(intentions)
        self.num_intentions = len(self.intentions)
        self.levels = np.array([i.level for i in self.intentions], dtype=np.int64)
        self.tree_ids = np.array([i.tree_id for i in self.intentions], dtype=np.int64)
        self.parent_ids = np.array(
            [-1 if i.parent_id is None else i.parent_id for i in self.intentions], dtype=np.int64
        )
        self.max_level = int(self.levels.max()) if max_level is None else int(max_level)
        if self.max_level < 1:
            raise ValueError("max_level must be at least 1")
        self._children: List[List[int]] = [list(i.children) for i in self.intentions]
        self._ancestor_cache: Dict[int, Tuple[int, ...]] = {}
        self._by_level: Dict[int, np.ndarray] = {}
        for level in range(1, int(self.levels.max()) + 1):
            self._by_level[level] = np.flatnonzero(self.levels == level)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dataset(cls, dataset: ServiceSearchDataset, max_level: Optional[int] = None) -> "IntentionForest":
        return cls(dataset.intentions, max_level=max_level)

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    def children(self, intention_id: int) -> List[int]:
        return self._children[intention_id]

    def parent(self, intention_id: int) -> Optional[int]:
        parent = int(self.parent_ids[intention_id])
        return None if parent < 0 else parent

    def level(self, intention_id: int) -> int:
        return int(self.levels[intention_id])

    def tree(self, intention_id: int) -> int:
        return int(self.tree_ids[intention_id])

    def nodes_at_level(self, level: int) -> np.ndarray:
        """All intention ids at the given 1-based level (roots are level 1)."""
        return self._by_level.get(level, np.zeros(0, dtype=np.int64))

    def ancestors(self, intention_id: int) -> Tuple[int, ...]:
        """Return the ancestor chain of ``intention_id`` (parent, grandparent, …)."""
        cached = self._ancestor_cache.get(intention_id)
        if cached is not None:
            return cached
        chain: List[int] = []
        current = self.parent(intention_id)
        while current is not None:
            chain.append(current)
            current = self.parent(current)
        result = tuple(chain)
        self._ancestor_cache[intention_id] = result
        return result

    def parent_chain(self, intention_id: int, max_level: Optional[int] = None) -> Tuple[int, ...]:
        """The IGCL positive set ``P``: the intention itself plus its ancestors.

        ``max_level`` truncates the chain to ancestors whose level is at least
        ``deepest_level - max_level + 1`` — this is how the H hyper-parameter
        (number of intention-tree levels used) is exercised in Fig. 7.
        """
        chain = (intention_id,) + self.ancestors(intention_id)
        if max_level is None:
            return chain
        if max_level < 1:
            raise ValueError("max_level must be at least 1")
        deepest = self.level(intention_id)
        lowest_allowed = deepest - max_level + 1
        return tuple(node for node in chain if self.level(node) >= lowest_allowed)

    def bottom_up_levels(self) -> List[np.ndarray]:
        """Levels ordered deepest-first, as consumed by the bottom-up encoder."""
        deepest = int(self.levels.max())
        return [self.nodes_at_level(level) for level in range(deepest, 0, -1)]

    # ------------------------------------------------------------------ #
    # Negative sampling for IGCL
    # ------------------------------------------------------------------ #
    def hard_negatives(self, intention_id: int, exclude: Sequence[int] = ()) -> np.ndarray:
        """Same-tree, same-level intentions other than the positive itself."""
        level = self.level(intention_id)
        tree = self.tree(intention_id)
        candidates = self.nodes_at_level(level)
        mask = (self.tree_ids[candidates] == tree) & (candidates != intention_id)
        if len(exclude):
            mask &= ~np.isin(candidates, np.asarray(exclude, dtype=np.int64))
        return candidates[mask]

    def easy_negatives(self, intention_id: int, exclude: Sequence[int] = ()) -> np.ndarray:
        """Other-tree, same-level intentions."""
        level = self.level(intention_id)
        tree = self.tree(intention_id)
        candidates = self.nodes_at_level(level)
        mask = self.tree_ids[candidates] != tree
        if len(exclude):
            mask &= ~np.isin(candidates, np.asarray(exclude, dtype=np.int64))
        return candidates[mask]

    def sample_negatives(
        self,
        intention_id: int,
        num_negatives: int,
        rng: np.random.Generator,
        hard_ratio: float = 0.5,
    ) -> np.ndarray:
        """Mix of hard (same-tree) and easy (other-tree) level-matched negatives."""
        if num_negatives <= 0:
            return np.zeros(0, dtype=np.int64)
        hard = self.hard_negatives(intention_id)
        easy = self.easy_negatives(intention_id)
        num_hard = int(round(hard_ratio * num_negatives))
        chosen: List[int] = []
        if len(hard):
            take = min(num_hard, len(hard))
            chosen.extend(rng.choice(hard, size=take, replace=len(hard) < take).tolist())
        remaining = num_negatives - len(chosen)
        if remaining > 0 and len(easy):
            chosen.extend(rng.choice(easy, size=remaining, replace=len(easy) < remaining).tolist())
        if not chosen:
            # Degenerate forest (single tree, single node per level): fall back
            # to any other intention so the loss stays well defined.
            others = np.array([i for i in range(self.num_intentions) if i != intention_id], dtype=np.int64)
            if len(others) == 0:
                return np.zeros(0, dtype=np.int64)
            chosen = rng.choice(others, size=min(num_negatives, len(others)), replace=False).tolist()
        return np.array(chosen, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Statistics (Table II)
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Number of parent→child edges in the forest."""
        return int((self.parent_ids >= 0).sum())

    def __repr__(self) -> str:
        return (
            f"IntentionForest(nodes={self.num_intentions}, edges={self.num_edges}, "
            f"max_level={self.max_level})"
        )
