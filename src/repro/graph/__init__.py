"""Graph substrate: the service-search graph and the intention forest.

The service-search graph (Sec. III of the paper) connects queries and
services through two edge types:

* **interaction edges** — the service was clicked under the query in the
  training window; the click-through rate is kept as an edge feature;
* **correlation edges** — the query and service share correlation attributes
  (city, brand, category); the number of shared attributes is the feature.

The intention forest is the ≤5-level taxonomy every query/service attaches
to; GARCIA's intention encoder aggregates it bottom-up and the IGCL loss uses
level-matched negatives from the same tree (hard) and other trees (easy).
"""

from repro.graph.builder import GraphBuildConfig, GraphBuilder
from repro.graph.intention_tree import IntentionForest
from repro.graph.sampling import add_embedding_noise, dropout_adjacency, dropout_nodes
from repro.graph.search_graph import GraphStatistics, ServiceSearchGraph

__all__ = [
    "ServiceSearchGraph",
    "GraphStatistics",
    "GraphBuilder",
    "GraphBuildConfig",
    "IntentionForest",
    "dropout_adjacency",
    "dropout_nodes",
    "add_embedding_noise",
]
