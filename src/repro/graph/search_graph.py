"""The service-search graph: a query–service bipartite graph with edge features.

Node indexing convention used throughout the reproduction:

* query ``q`` occupies node index ``q`` (``0 .. num_queries - 1``),
* service ``s`` occupies node index ``num_queries + s``.

Edges carry two features (Sec. III): the click-through rate observed in the
training window for interaction edges, and the (normalised) number of shared
correlation attributes for correlation edges.  A pair connected by both
conditions keeps both features on its single edge.

The graph exposes dense adjacency / edge-feature matrices because every model
in the reproduction performs full-graph message passing on laptop-scale data;
head-only and tail-only views (the "head graph" and "tail graph" the paper
organises in advance for adaptive encoding) are provided as masked copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class GraphStatistics:
    """Node / edge counts mirroring Table II of the paper."""

    name: str
    head_nodes: int
    head_edges: int
    tail_nodes: int
    tail_edges: int
    intention_nodes: int
    intention_edges: int

    def as_row(self) -> Dict[str, object]:
        return {
            "dataset": self.name,
            "head_nodes": self.head_nodes,
            "head_edges": self.head_edges,
            "tail_nodes": self.tail_nodes,
            "tail_edges": self.tail_edges,
            "intention_nodes": self.intention_nodes,
            "intention_edges": self.intention_edges,
        }


class ServiceSearchGraph:
    """Dense representation of the query–service graph with edge features."""

    def __init__(
        self,
        num_queries: int,
        num_services: int,
        adjacency: np.ndarray,
        ctr: np.ndarray,
        correlation: np.ndarray,
        query_attributes: Dict[str, np.ndarray],
        service_attributes: Dict[str, np.ndarray],
        head_query_ids: Sequence[int],
        name: str = "",
    ) -> None:
        total = num_queries + num_services
        for matrix, label in ((adjacency, "adjacency"), (ctr, "ctr"), (correlation, "correlation")):
            if matrix.shape != (total, total):
                raise ValueError(f"{label} matrix must have shape ({total}, {total}), got {matrix.shape}")
        self.num_queries = num_queries
        self.num_services = num_services
        self.num_nodes = total
        self.adjacency = adjacency.astype(np.float64)
        self.ctr = ctr.astype(np.float64)
        self.correlation = correlation.astype(np.float64)
        self.query_attributes = {k: np.asarray(v, dtype=np.int64) for k, v in query_attributes.items()}
        self.service_attributes = {k: np.asarray(v, dtype=np.int64) for k, v in service_attributes.items()}
        self.head_query_ids = np.array(sorted(set(int(q) for q in head_query_ids)), dtype=np.int64)
        tail = sorted(set(range(num_queries)) - set(self.head_query_ids.tolist()))
        self.tail_query_ids = np.array(tail, dtype=np.int64)
        self.name = name
        self._head_adjacency: Optional[np.ndarray] = None
        self._tail_adjacency: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Node index helpers
    # ------------------------------------------------------------------ #
    def query_node(self, query_ids: Sequence[int]) -> np.ndarray:
        """Map query ids to node indices."""
        return np.asarray(query_ids, dtype=np.int64)

    def service_node(self, service_ids: Sequence[int]) -> np.ndarray:
        """Map service ids to node indices."""
        return np.asarray(service_ids, dtype=np.int64) + self.num_queries

    def is_query_node(self, node_ids: Sequence[int]) -> np.ndarray:
        return np.asarray(node_ids) < self.num_queries

    # ------------------------------------------------------------------ #
    # Edge views
    # ------------------------------------------------------------------ #
    def edge_feature_stack(self) -> np.ndarray:
        """Return edge features as an ``(N, N, 2)`` array: [ctr, correlation]."""
        return np.stack([self.ctr, self.correlation], axis=-1)

    @property
    def num_edges(self) -> int:
        """Number of undirected query–service edges."""
        return int(self.adjacency.sum()) // 2

    def degree(self) -> np.ndarray:
        """Node degrees under the full adjacency."""
        return self.adjacency.sum(axis=1)

    def neighbor_lists(self) -> List[np.ndarray]:
        """Return, for every node, the array of its neighbour node indices."""
        return [np.flatnonzero(self.adjacency[node]) for node in range(self.num_nodes)]

    # ------------------------------------------------------------------ #
    # Head / tail views for adaptive encoding
    # ------------------------------------------------------------------ #
    def _slice_adjacency(self, query_ids: np.ndarray) -> np.ndarray:
        """Keep only edges whose query endpoint belongs to ``query_ids``."""
        keep = np.zeros(self.num_nodes, dtype=bool)
        keep[query_ids] = True
        keep[self.num_queries:] = True  # services stay in both views
        mask = np.zeros_like(self.adjacency)
        query_rows = np.flatnonzero(keep[: self.num_queries])
        mask[query_rows, :] = self.adjacency[query_rows, :]
        mask[:, query_rows] = self.adjacency[:, query_rows]
        # Service–service entries do not exist in a bipartite graph, but be
        # explicit: zero any edge whose query endpoint was dropped.
        dropped = np.flatnonzero(~keep[: self.num_queries])
        mask[dropped, :] = 0.0
        mask[:, dropped] = 0.0
        return mask

    @property
    def head_adjacency(self) -> np.ndarray:
        """Adjacency restricted to edges incident to head queries."""
        if self._head_adjacency is None:
            self._head_adjacency = self._slice_adjacency(self.head_query_ids)
        return self._head_adjacency

    @property
    def tail_adjacency(self) -> np.ndarray:
        """Adjacency restricted to edges incident to tail queries."""
        if self._tail_adjacency is None:
            self._tail_adjacency = self._slice_adjacency(self.tail_query_ids)
        return self._tail_adjacency

    def head_node_ids(self) -> np.ndarray:
        """Head query nodes plus every service node (services live in both views)."""
        return np.concatenate([self.head_query_ids, np.arange(self.num_queries, self.num_nodes)])

    def tail_node_ids(self) -> np.ndarray:
        """Tail query nodes plus every service node."""
        return np.concatenate([self.tail_query_ids, np.arange(self.num_queries, self.num_nodes)])

    # ------------------------------------------------------------------ #
    # Statistics (Table II)
    # ------------------------------------------------------------------ #
    def statistics(self, intention_nodes: int = 0, intention_edges: int = 0) -> GraphStatistics:
        """Compute Table II style statistics for this graph."""
        head_edges = int(self.head_adjacency.sum()) // 2
        tail_edges = int(self.tail_adjacency.sum()) // 2
        head_degree = self.head_adjacency.sum(axis=1)
        tail_degree = self.tail_adjacency.sum(axis=1)
        head_nodes = int((head_degree > 0).sum())
        tail_nodes = int((tail_degree > 0).sum())
        return GraphStatistics(
            name=self.name,
            head_nodes=head_nodes,
            head_edges=head_edges,
            tail_nodes=tail_nodes,
            tail_edges=tail_edges,
            intention_nodes=intention_nodes,
            intention_edges=intention_edges,
        )

    def __repr__(self) -> str:
        return (
            f"ServiceSearchGraph(name={self.name!r}, queries={self.num_queries}, "
            f"services={self.num_services}, edges={self.num_edges})"
        )
