"""Stochastic graph augmentations.

These utilities implement the random augmentations the CL-augmented GNN
baselines rely on (and which GARCIA deliberately avoids in favour of
relation-driven contrastive pairs):

* :func:`dropout_adjacency` — edge dropout, used by SGL;
* :func:`dropout_nodes` — node dropout, used by SGL's node-drop variant;
* :func:`add_embedding_noise` — uniform directional noise on embeddings, the
  augmentation-free perturbation of SimGCL.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def dropout_adjacency(adjacency: np.ndarray, rate: float, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Randomly remove a fraction ``rate`` of edges (symmetrically)."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"edge dropout rate must be in [0, 1), got {rate}")
    if rate == 0.0:
        return adjacency.copy()
    generator = rng if rng is not None else np.random.default_rng()
    upper = np.triu(adjacency, k=1)
    rows, cols = np.nonzero(upper)
    keep = generator.random(len(rows)) >= rate
    result = np.zeros_like(adjacency)
    kept_rows, kept_cols = rows[keep], cols[keep]
    result[kept_rows, kept_cols] = adjacency[kept_rows, kept_cols]
    result[kept_cols, kept_rows] = adjacency[kept_cols, kept_rows]
    return result


def dropout_nodes(adjacency: np.ndarray, rate: float, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Randomly isolate a fraction ``rate`` of nodes (drop all their edges)."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"node dropout rate must be in [0, 1), got {rate}")
    if rate == 0.0:
        return adjacency.copy()
    generator = rng if rng is not None else np.random.default_rng()
    num_nodes = adjacency.shape[0]
    dropped = generator.random(num_nodes) < rate
    result = adjacency.copy()
    result[dropped, :] = 0.0
    result[:, dropped] = 0.0
    return result


def add_embedding_noise(embeddings: np.ndarray, magnitude: float,
                        rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """SimGCL-style perturbation: add sign-aligned uniform noise of fixed L2 norm."""
    if magnitude < 0:
        raise ValueError(f"noise magnitude must be non-negative, got {magnitude}")
    if magnitude == 0.0:
        return embeddings.copy()
    generator = rng if rng is not None else np.random.default_rng()
    noise = generator.uniform(0.0, 1.0, size=embeddings.shape)
    noise /= np.linalg.norm(noise, axis=-1, keepdims=True) + 1e-12
    return embeddings + magnitude * noise * np.sign(embeddings)
