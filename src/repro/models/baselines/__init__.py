"""Baseline models compared against GARCIA in Table III / Table IV.

The paper compares against three families (Sec. V-B.1), all re-implemented
here on the shared autograd / graph substrate and — as in the paper —
extended to consume the node and edge attributes of the service-search graph:

* a general deep model: Wide&Deep;
* GNN-based models: LightGCN and KGAT;
* GNN models with self-supervised learning: SGL and SimGCL.
"""

from repro.models.baselines.kgat import KGAT
from repro.models.baselines.lightgcn import LightGCN
from repro.models.baselines.sgl import SGL
from repro.models.baselines.simgcl import SimGCL
from repro.models.baselines.wide_deep import WideAndDeep

__all__ = ["WideAndDeep", "LightGCN", "KGAT", "SGL", "SimGCL"]
