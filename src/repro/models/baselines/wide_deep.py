"""Wide&Deep baseline.

The wide component memorises cross features — here the indicator of each
shared correlation attribute between the query and the service plus the
historical CTR of the pair — while the deep component generalises through
embeddings of ids and attributes fed to an MLP.  No graph structure is used,
which is exactly why the paper reports a large gap to the GNN models on tail
queries.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.data.loaders import InteractionBatch
from repro.data.schema import CORRELATION_ATTRIBUTES
from repro.graph.search_graph import ServiceSearchGraph
from repro.models.base import NodeFeatureEncoder, RankingModel
from repro.nn import Linear


class WideAndDeep(RankingModel):
    """Wide (cross features) + Deep (embedding MLP) click model."""

    name = "Wide&Deep"

    def __init__(self, graph: ServiceSearchGraph, embedding_dim: int = 64,
                 hidden_dim: Optional[int] = None, seed: int = 0) -> None:
        super().__init__(graph)
        rng = np.random.default_rng(seed)
        hidden = hidden_dim if hidden_dim is not None else embedding_dim
        self.embedding_dim = embedding_dim
        self.feature_encoder = NodeFeatureEncoder(graph, embedding_dim, rng=rng)
        self.deep_layer1 = Linear(2 * embedding_dim, hidden, rng=rng)
        self.deep_layer2 = Linear(hidden, 1, rng=rng)
        # Wide features: one raw-attribute match indicator per correlation
        # attribute.  Graph-derived signals (e.g. the interaction CTR) are
        # deliberately excluded — the paper's Wide&Deep is the non-graph
        # reference model.
        self.wide = Linear(len(CORRELATION_ATTRIBUTES), 1, rng=rng)

    # ------------------------------------------------------------------ #
    # Feature construction
    # ------------------------------------------------------------------ #
    def _wide_features(self, query_ids: np.ndarray, service_ids: np.ndarray) -> np.ndarray:
        matches = []
        for name in CORRELATION_ATTRIBUTES:
            query_values = self.graph.query_attributes[name][query_ids]
            service_values = self.graph.service_attributes[name][service_ids]
            matches.append((query_values == service_values).astype(np.float64))
        return np.stack(matches, axis=1)

    def _pair_probability(self, query_ids: np.ndarray, service_ids: np.ndarray,
                          node_repr: Tensor) -> Tensor:
        query_repr = node_repr.index_select(query_ids, axis=0)
        service_repr = node_repr.index_select(self.graph.service_node(service_ids), axis=0)
        deep_hidden = self.deep_layer1(Tensor.concat([query_repr, service_repr], axis=1)).relu()
        deep_logit = self.deep_layer2(deep_hidden).reshape(-1)
        wide_logit = self.wide(Tensor(self._wide_features(query_ids, service_ids))).reshape(-1)
        return (deep_logit + wide_logit).sigmoid()

    # ------------------------------------------------------------------ #
    # RankingModel interface
    # ------------------------------------------------------------------ #
    def training_loss(self, batch: InteractionBatch) -> Tensor:
        node_repr = self.feature_encoder()
        predictions = self._pair_probability(batch.query_ids, batch.service_ids, node_repr)
        return F.binary_cross_entropy(predictions, batch.labels)

    def compute_embeddings(self) -> Dict[str, np.ndarray]:
        node_repr = self.feature_encoder().numpy()
        return {
            "query": node_repr[: self.graph.num_queries],
            "service": node_repr[self.graph.num_queries:],
        }

    def score_pairs(self, query_repr: Tensor, service_repr: Tensor) -> Tensor:
        # Deep part only — used by the generic embedding-based scorer.
        hidden = self.deep_layer1(Tensor.concat([query_repr, service_repr], axis=1)).relu()
        return self.deep_layer2(hidden).reshape(-1).sigmoid()

    def predict(self, query_ids, service_ids) -> np.ndarray:
        # Override to keep the wide cross features at inference time.
        query_ids = np.asarray(query_ids, dtype=np.int64)
        service_ids = np.asarray(service_ids, dtype=np.int64)
        from repro.autograd.tensor import no_grad

        with no_grad():
            node_repr = self.feature_encoder()
            return self._pair_probability(query_ids, service_ids, node_repr).numpy().reshape(-1)
