"""SGL baseline: self-supervised graph learning with stochastic augmentations.

SGL keeps the LightGCN backbone and adds an auxiliary InfoNCE loss between
two stochastically augmented views of the graph (edge dropout here).  The
paper's discussion (Sec. V-C) attributes SGL's weak industrial performance to
exactly this randomness: on noisy graphs, random augmentations easily destroy
the informative structure, which is why GARCIA builds its contrastive pairs
from explicit relations instead.
"""

from __future__ import annotations


import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.data.loaders import InteractionBatch
from repro.graph.sampling import dropout_adjacency
from repro.graph.search_graph import ServiceSearchGraph
from repro.models.baselines.lightgcn import LightGCN, normalized_adjacency


class SGL(LightGCN):
    """LightGCN + contrastive learning over edge-dropout augmented views."""

    name = "SGL"

    def __init__(self, graph: ServiceSearchGraph, embedding_dim: int = 64, num_layers: int = 2,
                 edge_dropout: float = 0.1, ssl_weight: float = 0.1, temperature: float = 0.2,
                 seed: int = 0) -> None:
        super().__init__(graph, embedding_dim=embedding_dim, num_layers=num_layers, seed=seed)
        if not 0.0 <= edge_dropout < 1.0:
            raise ValueError("edge_dropout must be in [0, 1)")
        if ssl_weight < 0:
            raise ValueError("ssl_weight must be non-negative")
        self.edge_dropout = edge_dropout
        self.ssl_weight = ssl_weight
        self.temperature = temperature
        self._augment_rng = np.random.default_rng(seed + 1)

    # ------------------------------------------------------------------ #
    # Augmented views
    # ------------------------------------------------------------------ #
    def _augmented_readout(self) -> Tensor:
        dropped = dropout_adjacency(self.graph.adjacency, self.edge_dropout, rng=self._augment_rng)
        operator = Tensor(normalized_adjacency(dropped))
        return self.readout(self.layer_outputs(propagation=operator))

    def _ssl_loss(self, batch: InteractionBatch) -> Tensor:
        view_a = self._augmented_readout()
        view_b = self._augmented_readout()
        nodes = np.unique(
            np.concatenate([batch.query_ids, self.graph.service_node(batch.service_ids)])
        )
        anchors = view_a.index_select(nodes, axis=0)
        positives = view_b.index_select(nodes, axis=0)
        return F.info_nce(anchors, positives, temperature=self.temperature)

    # ------------------------------------------------------------------ #
    # RankingModel interface
    # ------------------------------------------------------------------ #
    def training_loss(self, batch: InteractionBatch) -> Tensor:
        supervised = super().training_loss(batch)
        if self.ssl_weight == 0.0:
            return supervised
        return supervised + self.ssl_weight * self._ssl_loss(batch)
