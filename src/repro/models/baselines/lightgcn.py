"""LightGCN baseline (attribute-extended).

LightGCN propagates embeddings over the symmetrically-normalised adjacency
matrix without feature transforms or non-linearities and averages the layer
outputs.  As in the paper's comparison, the model is extended to consume the
node attributes of the service-search graph by initialising the propagation
from the shared :class:`~repro.models.base.NodeFeatureEncoder`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.data.loaders import InteractionBatch
from repro.graph.search_graph import ServiceSearchGraph
from repro.models.base import NodeFeatureEncoder, RankingModel, ScoringHead


def normalized_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Symmetric normalisation ``D^{-1/2} A D^{-1/2}`` with isolated-node safety."""
    degrees = adjacency.sum(axis=1)
    inverse_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inverse_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    return adjacency * inverse_sqrt[:, None] * inverse_sqrt[None, :]


class LightGCN(RankingModel):
    """Simplified graph convolution with mean layer readout."""

    name = "LightGCN"

    def __init__(self, graph: ServiceSearchGraph, embedding_dim: int = 64,
                 num_layers: int = 2, seed: int = 0) -> None:
        super().__init__(graph)
        if num_layers < 1:
            raise ValueError("num_layers must be at least 1")
        rng = np.random.default_rng(seed)
        self.embedding_dim = embedding_dim
        self.num_layers = num_layers
        self.feature_encoder = NodeFeatureEncoder(graph, embedding_dim, rng=rng)
        self.click_head = ScoringHead(embedding_dim, rng=rng)
        self._propagation = Tensor(normalized_adjacency(graph.adjacency))

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #
    def layer_outputs(self, propagation: Optional[Tensor] = None) -> List[Tensor]:
        """Return ``[Z^(0), …, Z^(L)]`` under the (optionally overridden) operator."""
        operator = propagation if propagation is not None else self._propagation
        outputs = [self.feature_encoder()]
        for _ in range(self.num_layers):
            outputs.append(operator @ outputs[-1])
        return outputs

    def readout(self, layer_list: Optional[List[Tensor]] = None) -> Tensor:
        layers = layer_list if layer_list is not None else self.layer_outputs()
        total = layers[0]
        for output in layers[1:]:
            total = total + output
        return total * (1.0 / len(layers))

    # ------------------------------------------------------------------ #
    # RankingModel interface
    # ------------------------------------------------------------------ #
    def training_loss(self, batch: InteractionBatch) -> Tensor:
        node_repr = self.readout()
        query_repr = node_repr.index_select(batch.query_ids, axis=0)
        service_repr = node_repr.index_select(self.graph.service_node(batch.service_ids), axis=0)
        predictions = self.click_head(query_repr, service_repr)
        return F.binary_cross_entropy(predictions, batch.labels)

    def compute_embeddings(self) -> Dict[str, np.ndarray]:
        node_repr = self.readout().numpy()
        return {
            "query": node_repr[: self.graph.num_queries],
            "service": node_repr[self.graph.num_queries:],
        }

    def score_pairs(self, query_repr: Tensor, service_repr: Tensor) -> Tensor:
        return self.click_head(query_repr, service_repr)
