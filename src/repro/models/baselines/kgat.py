"""KGAT baseline (knowledge-graph attention network, adapted).

KGAT weights each neighbour by a learned relation-aware attention score and
aggregates with a bi-interaction update.  The original model attends with
``π(h, r, t) = (W_r e_t)ᵀ tanh(W_r e_h + e_r)`` over knowledge-graph triplets;
in the service-search graph the "relation" of an edge is its feature vector
(CTR, correlation strength), so the attention logit here is a bilinear
node–node term plus a learned projection of the edge features — the closest
dense-graph equivalent that keeps the same inductive bias (neighbours are
weighted by relation-aware relevance, unlike LightGCN's uniform weights).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.data.loaders import InteractionBatch
from repro.graph.search_graph import ServiceSearchGraph
from repro.models.base import NodeFeatureEncoder, RankingModel, ScoringHead
from repro.models.garcia.encoder import leaky_relu
from repro.nn import Linear, Parameter, init


class KGAT(RankingModel):
    """Attention-based propagation with bi-interaction aggregation."""

    name = "KGAT"

    def __init__(self, graph: ServiceSearchGraph, embedding_dim: int = 64,
                 num_layers: int = 2, leaky_slope: float = 0.2, seed: int = 0) -> None:
        super().__init__(graph)
        if num_layers < 1:
            raise ValueError("num_layers must be at least 1")
        rng = np.random.default_rng(seed)
        self.embedding_dim = embedding_dim
        self.num_layers = num_layers
        self.leaky_slope = leaky_slope
        self.feature_encoder = NodeFeatureEncoder(graph, embedding_dim, rng=rng)
        self.click_head = ScoringHead(embedding_dim, rng=rng)
        # Per-layer parameters.
        for index in range(num_layers):
            self.register_module(f"attention_transform_{index}",
                                 Linear(embedding_dim, embedding_dim, bias=False, rng=rng))
            self.register_module(f"sum_transform_{index}",
                                 Linear(embedding_dim, embedding_dim, rng=rng))
            self.register_module(f"product_transform_{index}",
                                 Linear(embedding_dim, embedding_dim, rng=rng))
        self.edge_projection = Parameter(init.xavier_uniform((2, 1), rng=rng))
        self._adjacency = Tensor(graph.adjacency)
        self._edge_features = [Tensor(graph.ctr), Tensor(graph.correlation)]

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #
    def _attention(self, representations: Tensor, layer_index: int) -> Tensor:
        transform: Linear = getattr(self, f"attention_transform_{layer_index}")
        transformed = transform(representations)
        logits = transformed @ transformed.transpose()
        edge_weights = self.edge_projection.reshape(-1)
        for index, feature in enumerate(self._edge_features):
            logits = logits + feature * edge_weights[index]
        mask_bias = (self._adjacency - 1.0) * 1e9
        attention = F.softmax(logits + mask_bias, axis=1)
        return attention * self._adjacency

    def layer_outputs(self) -> List[Tensor]:
        outputs = [self.feature_encoder()]
        current = outputs[0]
        for index in range(self.num_layers):
            attention = self._attention(current, index)
            messages = attention @ current
            sum_transform: Linear = getattr(self, f"sum_transform_{index}")
            product_transform: Linear = getattr(self, f"product_transform_{index}")
            combined = leaky_relu(sum_transform(current + messages), self.leaky_slope) + leaky_relu(
                product_transform(current * messages), self.leaky_slope
            )
            outputs.append(combined)
            current = combined
        return outputs

    def readout(self) -> Tensor:
        layers = self.layer_outputs()
        total = layers[0]
        for output in layers[1:]:
            total = total + output
        return total * (1.0 / len(layers))

    # ------------------------------------------------------------------ #
    # RankingModel interface
    # ------------------------------------------------------------------ #
    def training_loss(self, batch: InteractionBatch) -> Tensor:
        node_repr = self.readout()
        query_repr = node_repr.index_select(batch.query_ids, axis=0)
        service_repr = node_repr.index_select(self.graph.service_node(batch.service_ids), axis=0)
        predictions = self.click_head(query_repr, service_repr)
        return F.binary_cross_entropy(predictions, batch.labels)

    def compute_embeddings(self) -> Dict[str, np.ndarray]:
        node_repr = self.readout().numpy()
        return {
            "query": node_repr[: self.graph.num_queries],
            "service": node_repr[self.graph.num_queries:],
        }

    def score_pairs(self, query_repr: Tensor, service_repr: Tensor) -> Tensor:
        return self.click_head(query_repr, service_repr)
