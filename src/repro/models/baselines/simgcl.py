"""SimGCL baseline: augmentation-free contrastive learning with noise views.

SimGCL drops graph augmentations entirely and instead perturbs each layer's
embeddings with small sign-aligned uniform noise, contrasting the two noisy
views with InfoNCE on top of the LightGCN backbone.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.data.loaders import InteractionBatch
from repro.graph.search_graph import ServiceSearchGraph
from repro.models.baselines.lightgcn import LightGCN


class SimGCL(LightGCN):
    """LightGCN + InfoNCE between noise-perturbed embedding views."""

    name = "SimGCL"

    def __init__(self, graph: ServiceSearchGraph, embedding_dim: int = 64, num_layers: int = 2,
                 noise_magnitude: float = 0.1, ssl_weight: float = 0.1, temperature: float = 0.2,
                 seed: int = 0) -> None:
        super().__init__(graph, embedding_dim=embedding_dim, num_layers=num_layers, seed=seed)
        if noise_magnitude < 0:
            raise ValueError("noise_magnitude must be non-negative")
        if ssl_weight < 0:
            raise ValueError("ssl_weight must be non-negative")
        self.noise_magnitude = noise_magnitude
        self.ssl_weight = ssl_weight
        self.temperature = temperature
        self._noise_rng = np.random.default_rng(seed + 1)

    # ------------------------------------------------------------------ #
    # Noise-perturbed views
    # ------------------------------------------------------------------ #
    def _noisy_readout(self) -> Tensor:
        """LightGCN propagation with per-layer directional noise injection."""
        outputs: List[Tensor] = [self.feature_encoder()]
        current = outputs[0]
        for _ in range(self.num_layers):
            current = self._propagation @ current
            noise = self._noise_rng.uniform(0.0, 1.0, size=current.shape)
            noise /= np.linalg.norm(noise, axis=-1, keepdims=True) + 1e-12
            signs = np.sign(current.numpy())
            current = current + Tensor(self.noise_magnitude * noise * signs)
            outputs.append(current)
        total = outputs[0]
        for output in outputs[1:]:
            total = total + output
        return total * (1.0 / len(outputs))

    def _ssl_loss(self, batch: InteractionBatch) -> Tensor:
        view_a = self._noisy_readout()
        view_b = self._noisy_readout()
        nodes = np.unique(
            np.concatenate([batch.query_ids, self.graph.service_node(batch.service_ids)])
        )
        anchors = view_a.index_select(nodes, axis=0)
        positives = view_b.index_select(nodes, axis=0)
        return F.info_nce(anchors, positives, temperature=self.temperature)

    # ------------------------------------------------------------------ #
    # RankingModel interface
    # ------------------------------------------------------------------ #
    def training_loss(self, batch: InteractionBatch) -> Tensor:
        supervised = super().training_loss(batch)
        if self.ssl_weight == 0.0:
            return supervised
        return supervised + self.ssl_weight * self._ssl_loss(batch)
