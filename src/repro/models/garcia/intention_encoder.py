"""Hierarchical intention encoder (Eq. 3).

Intentions start from a learnable embedding table and are refined by a
GCN-like bottom-up aggregation over the intention forest:

    z_i^(h+1) = σ(W_T (z_i^(h) + Σ_{v ∈ children(i)} z_v^(h)))

Because aggregation flows from leaves towards roots, after ``H - 1`` steps a
level-``l`` intention has absorbed information from the ``H - 1`` levels
beneath it, making the representations hierarchy aware.  The number of levels
``H`` is the hyper-parameter swept in Fig. 7.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.graph.intention_tree import IntentionForest
from repro.nn import Embedding, Linear, Module


class IntentionEncoder(Module):
    """Bottom-up encoder over an :class:`~repro.graph.IntentionForest`."""

    def __init__(
        self,
        forest: IntentionForest,
        embedding_dim: int,
        num_levels: int = 5,
        activation: str = "tanh",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_levels < 1:
            raise ValueError("num_levels must be at least 1")
        if activation not in ("tanh", "sigmoid", "relu"):
            raise ValueError(f"unsupported activation {activation!r}")
        self.forest = forest
        self.embedding_dim = embedding_dim
        self.num_levels = num_levels
        self.activation = activation
        self.embedding = Embedding(forest.num_intentions, embedding_dim, rng=rng)
        self.transform = Linear(embedding_dim, embedding_dim, rng=rng)
        # Dense child-aggregation operator: row i sums the embeddings of i's children.
        child_matrix = np.zeros((forest.num_intentions, forest.num_intentions), dtype=np.float64)
        for intention_id in range(forest.num_intentions):
            for child in forest.children(intention_id):
                child_matrix[intention_id, child] = 1.0
        self._child_matrix = Tensor(child_matrix)

    def _activate(self, x: Tensor) -> Tensor:
        if self.activation == "tanh":
            return x.tanh()
        if self.activation == "sigmoid":
            return x.sigmoid()
        return x.relu()

    def forward(self) -> Tensor:
        """Return hierarchy-aware representations ``z^T`` for every intention."""
        representations = self.embedding(np.arange(self.forest.num_intentions))
        for _ in range(self.num_levels - 1):
            aggregated = representations + self._child_matrix @ representations
            representations = self._activate(self.transform(aggregated))
        return representations
