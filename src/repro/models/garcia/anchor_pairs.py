"""Head–tail anchor-pair mining for knowledge-transfer contrastive learning.

For every tail query GARCIA picks one head query to serve as the positive in
KTCL (Eq. 4).  The paper's criteria (Sec. IV-B.1):

1. the head query has the highest semantic-level relevance with the tail
   query — with no raw query text available, semantic relevance is computed
   from intention proximity in the forest (same leaf ≫ shared ancestors ≫
   same tree) plus correlation-attribute overlap;
2. the pair shares correlation attributes (city / brand / category);
3. among equally relevant candidates, the head query with the most exposure
   (page views) wins.

Tail queries for which no head query satisfies the sharing constraint simply
get no anchor and do not contribute to the KTCL query loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


from repro.data.schema import CORRELATION_ATTRIBUTES, ServiceSearchDataset
from repro.data.splits import HeadTailSplit
from repro.graph.intention_tree import IntentionForest


@dataclass
class AnchorPair:
    """One mined ``<q_tail, p_head>`` anchor pair with its mining diagnostics."""

    tail_query_id: int
    head_query_id: int
    semantic_score: float
    shared_attributes: int


def _semantic_relevance(
    tail_intention: int,
    head_intention: int,
    forest: IntentionForest,
) -> float:
    """Intention-proximity component of semantic relevance."""
    if tail_intention == head_intention:
        return 3.0
    tail_ancestors = set(forest.ancestors(tail_intention))
    head_ancestors = set(forest.ancestors(head_intention))
    shared = len(tail_ancestors & head_ancestors)
    if shared > 0:
        return 1.0 + 0.5 * shared
    if forest.tree(tail_intention) == forest.tree(head_intention):
        return 0.5
    return 0.0


def mine_anchor_pairs(
    dataset: ServiceSearchDataset,
    head_tail: HeadTailSplit,
    forest: IntentionForest,
    min_shared_attributes: int = 1,
) -> Dict[int, AnchorPair]:
    """Mine one head anchor per tail query where the criteria allow it.

    Returns a mapping ``tail_query_id -> AnchorPair``.
    """
    if min_shared_attributes < 0:
        raise ValueError("min_shared_attributes must be non-negative")
    head_queries = [dataset.queries[q] for q in sorted(head_tail.head_query_ids)]
    pairs: Dict[int, AnchorPair] = {}
    for tail_id in sorted(head_tail.tail_query_ids):
        tail_query = dataset.queries[tail_id]
        best: Optional[AnchorPair] = None
        best_key = None
        for head_query in head_queries:
            shared = sum(
                1
                for key in CORRELATION_ATTRIBUTES
                if tail_query.attributes.get(key) is not None
                and tail_query.attributes.get(key) == head_query.attributes.get(key)
            )
            if shared < min_shared_attributes:
                continue
            score = _semantic_relevance(tail_query.intention_id, head_query.intention_id, forest)
            score += 0.25 * shared
            # Rank by (semantic score, exposure); deterministic tie-break on id.
            key = (score, head_query.frequency, -head_query.query_id)
            if best_key is None or key > best_key:
                best_key = key
                best = AnchorPair(
                    tail_query_id=tail_id,
                    head_query_id=head_query.query_id,
                    semantic_score=float(score),
                    shared_attributes=int(shared),
                )
        if best is not None:
            pairs[tail_id] = best
    return pairs


def anchor_mapping(pairs: Dict[int, AnchorPair]) -> Dict[int, int]:
    """Reduce mined pairs to a plain ``tail_query_id -> head_query_id`` mapping."""
    return {tail: pair.head_query_id for tail, pair in pairs.items()}


def coverage(pairs: Dict[int, AnchorPair], head_tail: HeadTailSplit) -> float:
    """Fraction of tail queries that obtained an anchor."""
    if head_tail.num_tail == 0:
        return 0.0
    return len(pairs) / head_tail.num_tail
