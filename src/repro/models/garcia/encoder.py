"""GARCIA's attention-based GNN encoder (Eq. 2).

One :class:`GarciaGNNLayer` performs the "aggregate" and "update" steps:

* **aggregate** — every query/service node attends over its graph neighbours;
  the attention logit combines transformed node representations with the edge
  features (CTR and correlation strength), and the attended message is
  ``Tanh(W_A [Σ_v α_{q,v} z_v || Σ_v α_{q,v} e_{q,v}])``;
* **update** — ``z' = ReLU(W_U [z || m])``.

The :class:`GraphEncoder` stacks ``L`` layers and performs the mean "readout"
over all layer outputs.  GARCIA instantiates two encoders (head / tail) with
separate parameters — the adaptive encoding of Sec. IV-A — unless the
GARCIA-Share ablation is requested.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import Linear, Module, Parameter, init


def leaky_relu(x: Tensor, slope: float = 0.2) -> Tensor:
    """Leaky ReLU built from two ReLUs (keeps the op set of the engine small)."""
    return x.relu() - slope * (-x).relu()


class GarciaGNNLayer(Module):
    """One aggregate + update step of Eq. 2 with edge-feature-aware attention."""

    def __init__(self, embedding_dim: int, num_edge_features: int = 2,
                 leaky_slope: float = 0.2, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.embedding_dim = embedding_dim
        self.num_edge_features = num_edge_features
        self.leaky_slope = leaky_slope
        generator = rng if rng is not None else np.random.default_rng()
        # Attention parameters (GAT-style, plus an edge-feature term).
        self.attention_transform = Linear(embedding_dim, embedding_dim, bias=False, rng=generator)
        self.attention_source = Parameter(init.xavier_uniform((embedding_dim, 1), rng=generator))
        self.attention_target = Parameter(init.xavier_uniform((embedding_dim, 1), rng=generator))
        self.attention_edge = Parameter(init.xavier_uniform((num_edge_features, 1), rng=generator))
        # Aggregate (W_A) and update (W_U) transforms of Eq. 2.
        self.aggregate_transform = Linear(embedding_dim + num_edge_features, embedding_dim, rng=generator)
        self.update_transform = Linear(2 * embedding_dim, embedding_dim, rng=generator)

    def attention_weights(self, representations: Tensor, adjacency: Tensor,
                          edge_features: List[Tensor]) -> Tensor:
        """Neighbour attention matrix ``α`` with rows summing to one over neighbours."""
        transformed = self.attention_transform(representations)
        source_scores = transformed @ self.attention_source        # (N, 1)
        target_scores = transformed @ self.attention_target        # (N, 1)
        num_nodes = representations.shape[0]
        logits = source_scores + target_scores.reshape(1, num_nodes)
        edge_weights = self.attention_edge.reshape(-1)
        for index, feature in enumerate(edge_features):
            logits = logits + feature * edge_weights[index]
        logits = leaky_relu(logits, self.leaky_slope)
        # Mask non-edges with a large negative constant, then renormalise.
        mask_bias = (adjacency - 1.0) * 1e9
        attention = F.softmax(logits + mask_bias, axis=1)
        return attention * adjacency

    def forward(self, representations: Tensor, adjacency: Tensor,
                edge_features: List[Tensor]) -> Tensor:
        attention = self.attention_weights(representations, adjacency, edge_features)
        message_nodes = attention @ representations                 # Σ_v α z_v
        message_edges = [
            (attention * feature).sum(axis=1, keepdims=True) for feature in edge_features
        ]                                                           # Σ_v α e_{q,v}
        message = Tensor.concat([message_nodes] + message_edges, axis=1)
        message = self.aggregate_transform(message).tanh()
        updated = Tensor.concat([representations, message], axis=1)
        return self.update_transform(updated).relu()


class GraphEncoder(Module):
    """Stack of :class:`GarciaGNNLayer` with mean readout over layers."""

    def __init__(self, embedding_dim: int, num_layers: int = 2, num_edge_features: int = 2,
                 leaky_slope: float = 0.2, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be at least 1")
        self.num_layers = num_layers
        self._layers: List[GarciaGNNLayer] = []
        for index in range(num_layers):
            layer = GarciaGNNLayer(
                embedding_dim,
                num_edge_features=num_edge_features,
                leaky_slope=leaky_slope,
                rng=rng,
            )
            self.register_module(f"gnn_layer_{index}", layer)
            self._layers.append(layer)

    def layer_outputs(self, initial: Tensor, adjacency: Tensor,
                      edge_features: List[Tensor]) -> List[Tensor]:
        """Return ``[Z^(0), Z^(1), …, Z^(L)]``."""
        outputs = [initial]
        current = initial
        for layer in self._layers:
            current = layer(current, adjacency, edge_features)
            outputs.append(current)
        return outputs

    def readout(self, layer_outputs: List[Tensor]) -> Tensor:
        """Mean over all layer representations (the readout of Eq. 2)."""
        stacked = layer_outputs[0]
        for output in layer_outputs[1:]:
            stacked = stacked + output
        return stacked * (1.0 / len(layer_outputs))

    def forward(self, initial: Tensor, adjacency: Tensor, edge_features: List[Tensor]) -> Tensor:
        return self.readout(self.layer_outputs(initial, adjacency, edge_features))
