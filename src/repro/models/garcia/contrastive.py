"""Multi-granularity contrastive losses: KTCL, SECL and IGCL.

All three granularities share the ``-log softmax(cos/τ)`` InfoNCE structure
and differ only in how anchors, positives and negatives are constructed:

* **KTCL** (knowledge transfer, Eq. 4–6): tail-query anchors pull towards
  their mined head-query positives against in-batch head negatives; on the
  service side the head-encoded and tail-encoded views of the same service
  are aligned symmetrically.
* **SECL** (structure enhancement, Eq. 7–8): for every GNN layer ``l``, the
  layer-``l`` representation of a node is the positive of its own layer-0
  representation against the other in-batch nodes.
* **IGCL** (intention generalisation, Eq. 9–10): a query/service pulls
  towards every intention on its parent chain, against level-matched
  negatives sampled from the same tree (hard) and other trees (easy).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.graph.intention_tree import IntentionForest


# --------------------------------------------------------------------- #
# KTCL — knowledge transfer oriented CL
# --------------------------------------------------------------------- #
def ktcl_query_loss(
    tail_repr: Tensor,
    anchor_head_repr: Tensor,
    batch_head_repr: Optional[Tensor],
    temperature: float,
) -> Tensor:
    """Eq. 4: pull each tail query towards its head anchor.

    ``batch_head_repr`` provides the in-batch negative pool ``B_head``; when
    the current batch contains no head queries, the anchors' own heads act as
    the (in-batch) negative pool, which degenerates to standard in-batch
    InfoNCE.
    """
    if batch_head_repr is None or batch_head_repr.shape[0] == 0:
        return F.info_nce(tail_repr, anchor_head_repr, temperature=temperature)
    return F.info_nce(tail_repr, anchor_head_repr, negatives=batch_head_repr, temperature=temperature)


def ktcl_service_loss(
    head_service_repr: Tensor,
    tail_service_repr: Tensor,
    temperature: float,
) -> Tensor:
    """Eq. 5: symmetric alignment of the two encodings of the same service."""
    forward = F.info_nce(head_service_repr, tail_service_repr, temperature=temperature)
    backward = F.info_nce(tail_service_repr, head_service_repr, temperature=temperature)
    return forward + backward


# --------------------------------------------------------------------- #
# SECL — structure enhancement oriented CL
# --------------------------------------------------------------------- #
def secl_loss(layer_outputs: Sequence[Tensor], node_indices: np.ndarray, temperature: float) -> Tensor:
    """Eq. 7: align every layer's representation with the layer-0 anchor.

    Parameters
    ----------
    layer_outputs:
        ``[Z^(0), Z^(1), …, Z^(L)]`` full-graph tensors from one encoder.
    node_indices:
        Node indices (into the graph) of the in-batch entities.
    """
    if len(layer_outputs) < 2:
        raise ValueError("SECL needs at least one propagation layer")
    node_indices = np.asarray(node_indices, dtype=np.int64)
    if node_indices.size == 0:
        return Tensor(0.0)
    anchors = layer_outputs[0].index_select(node_indices, axis=0)
    total: Optional[Tensor] = None
    num_layers = len(layer_outputs) - 1
    for layer in range(1, len(layer_outputs)):
        positives = layer_outputs[layer].index_select(node_indices, axis=0)
        term = F.info_nce(anchors, positives, temperature=temperature)
        total = term if total is None else total + term
    return total * (1.0 / num_layers)


# --------------------------------------------------------------------- #
# IGCL — intention generalisation oriented CL
# --------------------------------------------------------------------- #
def build_igcl_pairs(
    entity_intentions: Sequence[int],
    forest: IntentionForest,
    num_negatives: int,
    rng: np.random.Generator,
    max_level: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Expand entities into (anchor_row, positive_intention, negatives, weight) tuples.

    For entity ``e`` attached to intention ``i`` the positives are every
    intention of ``parent_chain(i)`` (truncated to ``max_level`` levels); each
    pair receives weight ``1 / |chain|`` so every entity contributes equally
    (the ``1/|P_{q,i}|`` factor of Eq. 9).  Negatives mix same-tree (hard) and
    other-tree (easy) intentions of the matching level.
    """
    anchor_rows: List[int] = []
    positive_ids: List[int] = []
    negative_ids: List[np.ndarray] = []
    weights: List[float] = []
    for row, intention_id in enumerate(entity_intentions):
        chain = forest.parent_chain(int(intention_id), max_level=max_level)
        if not chain:
            continue
        weight = 1.0 / len(chain)
        for positive in chain:
            negatives = forest.sample_negatives(positive, num_negatives, rng)
            if negatives.size == 0:
                continue
            if negatives.size < num_negatives:
                negatives = np.resize(negatives, num_negatives)
            anchor_rows.append(row)
            positive_ids.append(int(positive))
            negative_ids.append(negatives)
            weights.append(weight)
    if not anchor_rows:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, np.zeros((0, num_negatives), dtype=np.int64), np.zeros(0)
    return (
        np.asarray(anchor_rows, dtype=np.int64),
        np.asarray(positive_ids, dtype=np.int64),
        np.stack(negative_ids).astype(np.int64),
        np.asarray(weights, dtype=np.float64),
    )


def igcl_loss(
    entity_repr: Tensor,
    intention_repr: Tensor,
    anchor_rows: np.ndarray,
    positive_ids: np.ndarray,
    negative_ids: np.ndarray,
    weights: np.ndarray,
    temperature: float,
) -> Tensor:
    """Eq. 9: weighted InfoNCE of entities against their intention chains."""
    if anchor_rows.size == 0:
        return Tensor(0.0)
    num_pairs, num_negatives = negative_ids.shape
    anchors = F.l2_normalize(entity_repr.index_select(anchor_rows, axis=0), axis=-1)
    positives = F.l2_normalize(intention_repr.index_select(positive_ids, axis=0), axis=-1)
    negatives = F.l2_normalize(
        intention_repr.index_select(negative_ids.reshape(-1), axis=0), axis=-1
    ).reshape(num_pairs, num_negatives, -1)

    positive_logits = (anchors * positives).sum(axis=-1, keepdims=True) / temperature
    anchor_expanded = anchors.reshape(num_pairs, 1, anchors.shape[-1])
    negative_logits = (anchor_expanded * negatives).sum(axis=-1) / temperature
    logits = Tensor.concat([positive_logits, negative_logits], axis=1)
    log_probs = F.log_softmax(logits, axis=-1)
    per_pair = -log_probs[:, 0]
    weighted = per_pair * Tensor(weights)
    # Normalise by the number of distinct entities (each entity's chain sums to weight 1).
    num_entities = max(len(np.unique(anchor_rows)), 1)
    return weighted.sum() * (1.0 / num_entities)
