"""Configuration of the GARCIA model.

Default values follow the implementation details of the paper (Sec. V-B.3):
embedding size 64, L = 2 GNN layers, H = 5 intention levels, α = 0.1,
β = 0.01, τ = 0.1, Adam with learning rate 1e-4 (the learning rate itself is
owned by the trainer).  The extra switches (``use_*``, ``share_encoder``)
drive the ablations of Fig. 3 and Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass
class GarciaConfig:
    """Hyper-parameters of GARCIA."""

    embedding_dim: int = 64
    num_gnn_layers: int = 2
    intention_levels: int = 5

    # Pre-training loss weights (Eq. 11) and contrastive temperature.
    alpha: float = 0.1
    beta: float = 0.01
    temperature: float = 0.1

    # Ablation switches.
    share_encoder: bool = False      # GARCIA-Share (Fig. 3)
    use_ktcl: bool = True            # knowledge-transfer CL (Eq. 6)
    use_secl: bool = True            # structure-enhancement CL (Eq. 8)
    use_igcl: bool = True            # intention-generalisation CL (Eq. 10)

    # Sampling caps keeping the contrastive terms cheap per batch.
    igcl_negatives: int = 8
    max_contrastive_entities: int = 96

    # Anchor-pair mining.
    anchor_min_shared_attributes: int = 1

    # Misc.
    intention_activation: str = "tanh"
    leaky_relu_slope: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if self.num_gnn_layers < 1:
            raise ValueError("num_gnn_layers must be at least 1")
        if not 1 <= self.intention_levels <= 5:
            raise ValueError("intention_levels must be between 1 and 5")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if self.igcl_negatives < 1:
            raise ValueError("igcl_negatives must be at least 1")
        if self.max_contrastive_entities < 1:
            raise ValueError("max_contrastive_entities must be at least 1")

    # ------------------------------------------------------------------ #
    # Ablation helpers used by the Fig. 3 / Fig. 4 experiments
    # ------------------------------------------------------------------ #
    def without(self, *modules: str) -> "GarciaConfig":
        """Return a copy with the given CL granularities disabled.

        ``modules`` may contain ``"ktcl"``, ``"secl"``, ``"igcl"`` or
        ``"all"`` (disable every contrastive term).
        """
        updates: Dict[str, bool] = {}
        for module in modules:
            key = module.lower()
            if key == "all":
                updates.update(use_ktcl=False, use_secl=False, use_igcl=False)
            elif key in ("ktcl", "kt"):
                updates["use_ktcl"] = False
            elif key in ("secl", "se"):
                updates["use_secl"] = False
            elif key in ("igcl", "ig"):
                updates["use_igcl"] = False
            else:
                raise ValueError(f"unknown contrastive module {module!r}")
        return replace(self, **updates)

    def shared(self) -> "GarciaConfig":
        """Return the GARCIA-Share variant (single encoder for head and tail)."""
        return replace(self, share_encoder=True)

    def variant_name(self) -> str:
        """Human-readable name reflecting the active ablation switches."""
        if not (self.use_ktcl or self.use_secl or self.use_igcl):
            return "GARCIA w.o. ALL"
        disabled = []
        if not self.use_igcl:
            disabled.append("IG")
        if not self.use_secl:
            disabled.append("SE")
        if not self.use_ktcl:
            disabled.append("KT")
        base = "GARCIA-Share" if self.share_encoder else "GARCIA"
        if disabled:
            return f"{base} w.o. {'&'.join(disabled)}"
        return base
