"""The complete GARCIA model.

Composition (Fig. 2 of the paper):

* a shared :class:`~repro.models.base.NodeFeatureEncoder` producing ``Z^(0)``
  from node ids and correlation attributes;
* two :class:`~repro.models.garcia.encoder.GraphEncoder` instances — the
  *adaptive encoding* — one operating on the head view of the service-search
  graph, one on the tail view (a single shared encoder over the full graph in
  the GARCIA-Share ablation);
* an :class:`~repro.models.garcia.intention_encoder.IntentionEncoder` over
  the intention forest;
* the multi-granularity contrastive losses (KTCL / SECL / IGCL) forming the
  pre-training objective ``L_P = L_KTCL + α L_SECL + β L_IGCL`` (Eq. 11);
* a two-layer MLP click head for fine-tuning with binary cross entropy
  (Eq. 12–13).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd.tensor import Tensor
from repro.data.loaders import InteractionBatch
from repro.data.schema import ServiceSearchDataset
from repro.data.splits import HeadTailSplit
from repro.graph.intention_tree import IntentionForest
from repro.graph.search_graph import ServiceSearchGraph
from repro.models.base import NodeFeatureEncoder, RankingModel, ScoringHead
from repro.models.garcia import contrastive
from repro.models.garcia.anchor_pairs import anchor_mapping, mine_anchor_pairs
from repro.models.garcia.config import GarciaConfig
from repro.models.garcia.encoder import GraphEncoder
from repro.models.garcia.intention_encoder import IntentionEncoder
from repro.nn import BCELoss


class GARCIA(RankingModel):
    """GrAph based service seaRch with multi-granularity ContrastIve leArning."""

    name = "GARCIA"

    def __init__(
        self,
        graph: ServiceSearchGraph,
        forest: IntentionForest,
        query_intentions: Sequence[int],
        service_intentions: Sequence[int],
        anchor_map: Dict[int, int],
        config: Optional[GarciaConfig] = None,
    ) -> None:
        super().__init__(graph)
        self.config = config if config is not None else GarciaConfig()
        self.forest = forest
        self.name = self.config.variant_name()
        self._rng = np.random.default_rng(self.config.seed)
        dim = self.config.embedding_dim

        self.feature_encoder = NodeFeatureEncoder(graph, dim, rng=self._rng)
        self.head_encoder = GraphEncoder(
            dim, num_layers=self.config.num_gnn_layers,
            leaky_slope=self.config.leaky_relu_slope, rng=self._rng,
        )
        if self.config.share_encoder:
            # GARCIA-Share: head and tail reuse the same encoder object.  Bypass
            # module registration so its parameters are not collected twice.
            object.__setattr__(self, "tail_encoder", self.head_encoder)
        else:
            self.tail_encoder = GraphEncoder(
                dim, num_layers=self.config.num_gnn_layers,
                leaky_slope=self.config.leaky_relu_slope, rng=self._rng,
            )
        self.intention_encoder = IntentionEncoder(
            forest, dim, num_levels=self.config.intention_levels,
            activation=self.config.intention_activation, rng=self._rng,
        )
        self.click_head = ScoringHead(dim, rng=self._rng)
        self._bce = BCELoss()

        # Static graph views as constant tensors.
        if self.config.share_encoder:
            head_adjacency = tail_adjacency = graph.adjacency
        else:
            head_adjacency = graph.head_adjacency
            tail_adjacency = graph.tail_adjacency
        self._head_adjacency = Tensor(head_adjacency)
        self._tail_adjacency = Tensor(tail_adjacency)
        self._head_edges = [Tensor(graph.ctr * head_adjacency), Tensor(graph.correlation * head_adjacency)]
        self._tail_edges = [Tensor(graph.ctr * tail_adjacency), Tensor(graph.correlation * tail_adjacency)]

        # Entity → intention lookups and the head/tail membership mask.
        self._query_intentions = np.asarray(query_intentions, dtype=np.int64)
        self._service_intentions = np.asarray(service_intentions, dtype=np.int64)
        if len(self._query_intentions) != graph.num_queries:
            raise ValueError("query_intentions must cover every query")
        if len(self._service_intentions) != graph.num_services:
            raise ValueError("service_intentions must cover every service")
        self._is_head_query = np.zeros(graph.num_queries, dtype=bool)
        self._is_head_query[graph.head_query_ids] = True
        self._anchor_map = dict(anchor_map)

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def encode(self) -> Tuple[List[Tensor], List[Tensor]]:
        """Run both encoders; returns per-layer outputs (head view, tail view)."""
        initial = self.feature_encoder()
        head_layers = self.head_encoder.layer_outputs(initial, self._head_adjacency, self._head_edges)
        if self.config.share_encoder:
            return head_layers, head_layers
        tail_layers = self.tail_encoder.layer_outputs(initial, self._tail_adjacency, self._tail_edges)
        return head_layers, tail_layers

    def _readouts(self, head_layers: List[Tensor], tail_layers: List[Tensor]) -> Tuple[Tensor, Tensor]:
        head_readout = self.head_encoder.readout(head_layers)
        if self.config.share_encoder:
            return head_readout, head_readout
        return head_readout, self.tail_encoder.readout(tail_layers)

    def _pair_representations(
        self,
        head_readout: Tensor,
        tail_readout: Tensor,
        query_ids: np.ndarray,
        service_ids: np.ndarray,
    ) -> Tuple[Tensor, Tensor]:
        """Slice-aware query representations and averaged service representations."""
        head_mask = self._is_head_query[query_ids].astype(np.float64).reshape(-1, 1)
        query_head = head_readout.index_select(query_ids, axis=0)
        query_tail = tail_readout.index_select(query_ids, axis=0)
        query_repr = query_head * head_mask + query_tail * (1.0 - head_mask)
        service_nodes = self.graph.service_node(service_ids)
        service_repr = (
            head_readout.index_select(service_nodes, axis=0)
            + tail_readout.index_select(service_nodes, axis=0)
        ) * 0.5
        return query_repr, service_repr

    # ------------------------------------------------------------------ #
    # Pre-training objective (Eq. 11)
    # ------------------------------------------------------------------ #
    def pretrain_loss(self, batch: InteractionBatch) -> Tensor:
        config = self.config
        head_layers, tail_layers = self.encode()
        head_readout, tail_readout = self._readouts(head_layers, tail_layers)

        total = Tensor(0.0)
        if config.use_ktcl:
            total = total + self._ktcl_loss(batch, head_readout, tail_readout)
        if config.use_secl:
            total = total + config.alpha * self._secl_loss(batch, head_layers, tail_layers)
        if config.use_igcl:
            total = total + config.beta * self._igcl_loss(batch, head_readout, tail_readout)
        return total

    def _ktcl_loss(self, batch: InteractionBatch, head_readout: Tensor, tail_readout: Tensor) -> Tensor:
        config = self.config
        query_ids = np.unique(batch.query_ids)
        tail_with_anchor = np.array(
            [q for q in query_ids if not self._is_head_query[q] and q in self._anchor_map],
            dtype=np.int64,
        )
        loss = Tensor(0.0)
        if tail_with_anchor.size > 0:
            anchors = tail_readout.index_select(tail_with_anchor, axis=0)
            anchor_heads = np.array([self._anchor_map[int(q)] for q in tail_with_anchor], dtype=np.int64)
            positives = head_readout.index_select(anchor_heads, axis=0)
            batch_heads = np.array([q for q in query_ids if self._is_head_query[q]], dtype=np.int64)
            negatives = (
                head_readout.index_select(batch_heads, axis=0) if batch_heads.size > 0 else None
            )
            loss = loss + contrastive.ktcl_query_loss(
                anchors, positives, negatives, temperature=config.temperature
            )
        service_ids = np.unique(batch.service_ids)
        if service_ids.size > 1 and not config.share_encoder:
            service_nodes = self.graph.service_node(service_ids)
            loss = loss + contrastive.ktcl_service_loss(
                head_readout.index_select(service_nodes, axis=0),
                tail_readout.index_select(service_nodes, axis=0),
                temperature=config.temperature,
            )
        return loss

    def _secl_loss(self, batch: InteractionBatch, head_layers: List[Tensor],
                   tail_layers: List[Tensor]) -> Tensor:
        config = self.config
        cap = config.max_contrastive_entities
        query_ids = np.unique(batch.query_ids)
        service_nodes = self.graph.service_node(np.unique(batch.service_ids))
        head_queries = np.array([q for q in query_ids if self._is_head_query[q]], dtype=np.int64)
        tail_queries = np.array([q for q in query_ids if not self._is_head_query[q]], dtype=np.int64)

        head_nodes = np.concatenate([head_queries, service_nodes])[:cap]
        tail_nodes = np.concatenate([tail_queries, service_nodes])[:cap]
        loss = contrastive.secl_loss(head_layers, head_nodes, temperature=config.temperature)
        if not config.share_encoder:
            loss = loss + contrastive.secl_loss(tail_layers, tail_nodes, temperature=config.temperature)
        return loss

    def _igcl_loss(self, batch: InteractionBatch, head_readout: Tensor, tail_readout: Tensor) -> Tensor:
        config = self.config
        cap = config.max_contrastive_entities
        query_ids = np.unique(batch.query_ids)[:cap]
        service_ids = np.unique(batch.service_ids)[: max(cap // 2, 1)]

        query_repr, service_repr = self._pair_representations(
            head_readout, tail_readout, query_ids, service_ids
        )
        entity_repr = Tensor.concat([query_repr, service_repr], axis=0)
        entity_intentions = np.concatenate(
            [self._query_intentions[query_ids], self._service_intentions[service_ids]]
        )
        anchor_rows, positive_ids, negative_ids, weights = contrastive.build_igcl_pairs(
            entity_intentions,
            self.forest,
            num_negatives=config.igcl_negatives,
            rng=self._rng,
            max_level=config.intention_levels,
        )
        if anchor_rows.size == 0:
            return Tensor(0.0)
        intention_repr = self.intention_encoder()
        return contrastive.igcl_loss(
            entity_repr,
            intention_repr,
            anchor_rows,
            positive_ids,
            negative_ids,
            weights,
            temperature=config.temperature,
        )

    # ------------------------------------------------------------------ #
    # Fine-tuning objective (Eq. 12–13)
    # ------------------------------------------------------------------ #
    def finetune_loss(self, batch: InteractionBatch) -> Tensor:
        head_layers, tail_layers = self.encode()
        head_readout, tail_readout = self._readouts(head_layers, tail_layers)
        query_repr, service_repr = self._pair_representations(
            head_readout, tail_readout, batch.query_ids, batch.service_ids
        )
        predictions = self.click_head(query_repr, service_repr)
        return self._bce(predictions, batch.labels)

    def training_loss(self, batch: InteractionBatch) -> Tensor:
        return self.finetune_loss(batch)

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def score_pairs(self, query_repr: Tensor, service_repr: Tensor) -> Tensor:
        return self.click_head(query_repr, service_repr)

    def compute_embeddings(self) -> Dict[str, np.ndarray]:
        head_layers, tail_layers = self.encode()
        head_readout, tail_readout = self._readouts(head_layers, tail_layers)
        query_ids = np.arange(self.graph.num_queries)
        service_ids = np.arange(self.graph.num_services)
        query_repr, service_repr = self._pair_representations(
            head_readout, tail_readout, query_ids, service_ids
        )
        return {"query": query_repr.numpy(), "service": service_repr.numpy()}


def build_garcia(
    dataset: ServiceSearchDataset,
    graph: ServiceSearchGraph,
    forest: IntentionForest,
    head_tail: HeadTailSplit,
    config: Optional[GarciaConfig] = None,
) -> GARCIA:
    """Convenience factory: mine anchor pairs and assemble a GARCIA model."""
    config = config if config is not None else GarciaConfig()
    pairs = mine_anchor_pairs(
        dataset, head_tail, forest,
        min_shared_attributes=config.anchor_min_shared_attributes,
    )
    query_intentions = [query.intention_id for query in dataset.queries]
    service_intentions = [service.intention_id for service in dataset.services]
    return GARCIA(
        graph=graph,
        forest=forest,
        query_intentions=query_intentions,
        service_intentions=service_intentions,
        anchor_map=anchor_mapping(pairs),
        config=config,
    )
