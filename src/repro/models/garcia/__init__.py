"""GARCIA: the paper's primary contribution.

Sub-modules:

* :mod:`config` — :class:`GarciaConfig`, every hyper-parameter of the paper
  (α, β, τ, L, H, adaptive vs shared encoding, CL granularity toggles).
* :mod:`encoder` — the attention-based GNN layer of Eq. 2 and the adaptive
  (dual head/tail) encoder.
* :mod:`intention_encoder` — bottom-up aggregation over the intention forest
  (Eq. 3).
* :mod:`anchor_pairs` — head–tail anchor-pair mining for knowledge transfer.
* :mod:`contrastive` — the multi-granularity contrastive losses: KTCL
  (Eq. 4–6), SECL (Eq. 7–8) and IGCL (Eq. 9–10).
* :mod:`model` — the full model with pre-training (Eq. 11) and fine-tuning
  (Eq. 12–13) objectives.
"""

from repro.models.garcia.anchor_pairs import AnchorPair, mine_anchor_pairs
from repro.models.garcia.config import GarciaConfig
from repro.models.garcia.encoder import GarciaGNNLayer, GraphEncoder
from repro.models.garcia.intention_encoder import IntentionEncoder
from repro.models.garcia.model import GARCIA

__all__ = [
    "GarciaConfig",
    "GarciaGNNLayer",
    "GraphEncoder",
    "IntentionEncoder",
    "mine_anchor_pairs",
    "AnchorPair",
    "GARCIA",
]
