"""Models: GARCIA (the paper's contribution) and the five compared baselines."""

from repro.models.base import RankingModel, NodeFeatureEncoder
from repro.models.garcia import GARCIA, GarciaConfig
from repro.models.baselines import WideAndDeep, LightGCN, KGAT, SGL, SimGCL

__all__ = [
    "RankingModel",
    "NodeFeatureEncoder",
    "GARCIA",
    "GarciaConfig",
    "WideAndDeep",
    "LightGCN",
    "KGAT",
    "SGL",
    "SimGCL",
]
