"""Models: GARCIA (the paper's contribution) and the five compared baselines."""

from repro.models.base import NodeFeatureEncoder, RankingModel
from repro.models.baselines import KGAT, SGL, LightGCN, SimGCL, WideAndDeep
from repro.models.garcia import GARCIA, GarciaConfig

__all__ = [
    "RankingModel",
    "NodeFeatureEncoder",
    "GARCIA",
    "GarciaConfig",
    "WideAndDeep",
    "LightGCN",
    "KGAT",
    "SGL",
    "SimGCL",
]
