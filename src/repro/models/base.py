"""Shared model infrastructure.

Every ranking model in the reproduction (GARCIA and the baselines) follows
the same contract:

* it is built from a :class:`~repro.graph.ServiceSearchGraph` so the number
  of queries/services and their attributes are known up front;
* :meth:`RankingModel.training_loss` returns the loss tensor of one
  mini-batch (used by the generic trainer);
* :meth:`RankingModel.predict` returns click probabilities for aligned
  (query, service) id arrays without recording gradients;
* :meth:`RankingModel.query_embeddings` / :meth:`RankingModel.service_embeddings`
  expose final representations for the serving / retrieval pipeline.

:class:`NodeFeatureEncoder` provides the attribute-aware initial node
representations ``Z^(0)`` shared by all graph models (the paper extends the
baselines with the same node/edge attributes for a fair comparison).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.schema import CORRELATION_ATTRIBUTES
from repro.graph.search_graph import ServiceSearchGraph
from repro.nn import Embedding, Linear, Module


class NodeFeatureEncoder(Module):
    """Initial node representations from id and correlation-attribute embeddings.

    ``Z^(0)[v] = id_embedding[v] + Σ_attr attr_embedding[attr_value(v)]`` —
    an additive composition keeps the dimensionality fixed while letting
    attribute signals flow to sparsely-interacted (tail) nodes.
    """

    def __init__(self, graph: ServiceSearchGraph, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.embedding_dim = embedding_dim
        self.num_nodes = graph.num_nodes
        self.id_embedding = Embedding(graph.num_nodes, embedding_dim, rng=rng)
        # One embedding table per correlation attribute, shared by queries and
        # services so that "same brand" lands in the same region of the space.
        cardinalities = self._attribute_cardinalities(graph)
        self.attribute_names = tuple(sorted(cardinalities))
        for name in self.attribute_names:
            self.register_module(
                f"attr_{name}", Embedding(cardinalities[name], embedding_dim, rng=rng)
            )
        self._attribute_indices = self._stack_attribute_indices(graph)

    @staticmethod
    def _attribute_cardinalities(graph: ServiceSearchGraph) -> Dict[str, int]:
        cardinalities: Dict[str, int] = {}
        for name in CORRELATION_ATTRIBUTES:
            query_values = graph.query_attributes.get(name, np.zeros(0, dtype=np.int64))
            service_values = graph.service_attributes.get(name, np.zeros(0, dtype=np.int64))
            max_value = 0
            if query_values.size:
                max_value = max(max_value, int(query_values.max()))
            if service_values.size:
                max_value = max(max_value, int(service_values.max()))
            cardinalities[name] = max_value + 1
        return cardinalities

    def _stack_attribute_indices(self, graph: ServiceSearchGraph) -> Dict[str, np.ndarray]:
        indices: Dict[str, np.ndarray] = {}
        for name in self.attribute_names:
            query_values = graph.query_attributes.get(name, np.zeros(graph.num_queries, dtype=np.int64))
            service_values = graph.service_attributes.get(name, np.zeros(graph.num_services, dtype=np.int64))
            indices[name] = np.concatenate([query_values, service_values]).astype(np.int64)
        return indices

    def forward(self) -> Tensor:
        """Return the full ``(num_nodes, embedding_dim)`` initial representation."""
        output = self.id_embedding(np.arange(self.num_nodes))
        for name in self.attribute_names:
            table: Embedding = getattr(self, f"attr_{name}")
            output = output + table(self._attribute_indices[name])
        return output


class ScoringHead(Module):
    """Two-layer MLP head predicting the click probability from ``[z_q || z_s]``.

    Mirrors Eq. 12 of the paper.  The serving pipeline replaces it with an
    inner product for efficient retrieval (Sec. V-F.1); that path lives in
    :mod:`repro.serving.ranking`.
    """

    def __init__(self, embedding_dim: int, hidden_dim: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        hidden = hidden_dim if hidden_dim is not None else embedding_dim
        self.layer1 = Linear(2 * embedding_dim, hidden, rng=rng)
        self.layer2 = Linear(hidden, 1, rng=rng)

    def forward(self, query_repr: Tensor, service_repr: Tensor) -> Tensor:
        hidden = Tensor.concat([query_repr, service_repr], axis=1)
        hidden = self.layer1(hidden).relu()
        logits = self.layer2(hidden).reshape(-1)
        return logits.sigmoid()


class RankingModel(Module):
    """Base class for every click-prediction model in the reproduction."""

    #: Human-readable name used in benchmark tables.
    name: str = "model"

    def __init__(self, graph: ServiceSearchGraph) -> None:
        super().__init__()
        self.graph = graph
        self._cached_query_embeddings: Optional[np.ndarray] = None
        self._cached_service_embeddings: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Training interface
    # ------------------------------------------------------------------ #
    def training_loss(self, batch) -> Tensor:
        """Loss of one mini-batch; overridden by each concrete model."""
        raise NotImplementedError

    def invalidate_cache(self) -> None:
        """Drop cached inference embeddings (call after every optimiser step)."""
        self._cached_query_embeddings = None
        self._cached_service_embeddings = None

    # ------------------------------------------------------------------ #
    # Inference interface
    # ------------------------------------------------------------------ #
    def compute_embeddings(self) -> Dict[str, np.ndarray]:
        """Return final query/service embeddings as plain arrays (no grad)."""
        raise NotImplementedError

    def _ensure_cache(self) -> None:
        if self._cached_query_embeddings is None or self._cached_service_embeddings is None:
            with no_grad():
                embeddings = self.compute_embeddings()
            self._cached_query_embeddings = embeddings["query"]
            self._cached_service_embeddings = embeddings["service"]

    def query_embeddings(self) -> np.ndarray:
        """Final query representations, ``(num_queries, d)``."""
        self._ensure_cache()
        return self._cached_query_embeddings

    def service_embeddings(self) -> np.ndarray:
        """Final service representations, ``(num_services, d)``."""
        self._ensure_cache()
        return self._cached_service_embeddings

    def score_pairs(self, query_repr: Tensor, service_repr: Tensor) -> Tensor:
        """Differentiable click probability for aligned representation rows."""
        raise NotImplementedError

    def predict(self, query_ids: Sequence[int], service_ids: Sequence[int]) -> np.ndarray:
        """Click probabilities for aligned (query, service) id arrays."""
        query_ids = np.asarray(query_ids, dtype=np.int64)
        service_ids = np.asarray(service_ids, dtype=np.int64)
        self._ensure_cache()
        with no_grad():
            query_repr = Tensor(self._cached_query_embeddings[query_ids])
            service_repr = Tensor(self._cached_service_embeddings[service_ids])
            return self.score_pairs(query_repr, service_repr).numpy().reshape(-1)
