"""Fig. 7 — impact of the number of intention-tree levels H.

The paper varies H from 1 to 5 and includes GARCIA without any intention
information as a reference line.  The finding to reproduce: using the
intention tree beats the no-intention reference, and deeper trees generally
help (with small fluctuations attributed to taxonomy noise).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.eval.evaluator import Evaluator
from repro.experiments.common import ExperimentResult, ExperimentSettings, build_model, scenario_for, train_model


def run(settings: Optional[ExperimentSettings] = None,
        levels: Sequence[int] = (1, 2, 3, 4, 5),
        dataset: str = "Sep. A") -> ExperimentResult:
    """Sweep the intention-tree depth H plus a no-intention reference run."""
    settings = settings if settings is not None else ExperimentSettings()
    scenario = scenario_for(dataset, settings)
    evaluator = Evaluator()
    result = ExperimentResult(
        experiment_id="fig7",
        title="Fig. 7: impact of the number of intention-tree levels H",
    )

    # Reference: GARCIA without the intention granularity at all (red line).
    reference_config = settings.garcia_config().without("ig")
    model = build_model("GARCIA", scenario, settings, garcia_config=reference_config)
    train_model(model, scenario, settings)
    reference = evaluator.evaluate(model, scenario.splits.test, scenario.head_tail,
                                   dataset_name=dataset, model_name="no-intention")
    result.rows.append(
        {
            "dataset": dataset,
            "H": "none",
            "tail_auc": reference.tail.auc,
            "overall_auc": reference.overall.auc,
        }
    )

    max_depth = int(scenario.forest.levels.max())
    for level in levels:
        effective = min(int(level), max_depth)
        config = settings.garcia_config(intention_levels=effective)
        model = build_model("GARCIA", scenario, settings, garcia_config=config)
        train_model(model, scenario, settings)
        report = evaluator.evaluate(model, scenario.splits.test, scenario.head_tail,
                                    dataset_name=dataset, model_name=f"H={level}")
        result.rows.append(
            {
                "dataset": dataset,
                "H": int(level),
                "tail_auc": report.tail.auc,
                "overall_auc": report.overall.auc,
            }
        )
    return result
