"""Experiment drivers: one module per table / figure of the paper.

Each driver exposes a ``run(settings)`` function returning an
:class:`~repro.experiments.common.ExperimentResult` whose rows/series mirror
what the paper reports.  The benchmarks in ``benchmarks/`` are thin wrappers
that execute these drivers and print the resulting tables.
"""

from repro.experiments import (
    fig10_online_ab,
    fig11_case_study,
    fig3_adaptive_encoding,
    fig4_mgcl_ablation,
    fig5_alpha,
    fig6_beta,
    fig7_tree_depth,
    fig8_temperature,
    table1_datasets,
    table2_graphs,
    table3_auc,
    table4_tail_ranking,
)
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    all_dataset_names,
    build_model,
    scenario_for,
    train_and_evaluate,
    train_model,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSettings",
    "scenario_for",
    "build_model",
    "train_model",
    "train_and_evaluate",
    "all_dataset_names",
    "table1_datasets",
    "table2_graphs",
    "table3_auc",
    "table4_tail_ranking",
    "fig3_adaptive_encoding",
    "fig4_mgcl_ablation",
    "fig5_alpha",
    "fig6_beta",
    "fig7_tree_depth",
    "fig8_temperature",
    "fig10_online_ab",
    "fig11_case_study",
]
