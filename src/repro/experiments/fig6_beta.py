"""Fig. 6 — sensitivity of the IGCL weight β.

The paper sweeps β ∈ {0.0, 0.01, 0.02, 0.03, 0.04, 0.05}; β = 0 (no IGCL) is
the worst and the optimum sits around 0.01–0.04.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ExperimentSettings
from repro.experiments.sweep import sweep_garcia_hyperparameter

DEFAULT_VALUES = (0.0, 0.01, 0.02, 0.03, 0.04, 0.05)


def run(settings: Optional[ExperimentSettings] = None,
        values: Sequence[float] = DEFAULT_VALUES,
        dataset: str = "Sep. A") -> ExperimentResult:
    """Sweep β and report tail / overall AUC (plus per-epoch step curves)."""
    return sweep_garcia_hyperparameter(
        experiment_id="fig6",
        title="Fig. 6: sensitivity of the IGCL balance factor beta",
        parameter_name="beta",
        values=values,
        make_config=lambda s, value: s.garcia_config(beta=float(value)),
        settings=settings,
        dataset=dataset,
    )
