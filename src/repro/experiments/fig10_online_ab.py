"""Fig. 10 — online A/B test: relative CTR and Valid-CTR improvement.

The paper's bucket test compares GARCIA against the deployed baseline (a
KGAT-augmented Wide&Deep model) over seven days, reporting the daily relative
improvement of CTR and Valid CTR; aggregated, GARCIA gains +0.79 pp CTR and
+0.60 pp Valid CTR.  The reproduction trains both models offline and replays
simulated user traffic through the ground-truth click oracle, with two
deployment backends:

* ``backend="pipeline"`` (the original replay) deploys both models through
  the serving pipeline (inner-product retrieval, Sec. V-F.1) and drives the
  offline :class:`~repro.eval.ab_test.OnlineABTest` simulator;
* ``backend="gateway"`` deploys each bucket behind its own serving gateway
  and replays day-partitioned session streams *through the serving stack*
  (:class:`~repro.serving.abtest.OnlineABExperiment`): sessions are hashed
  into buckets deterministically, requests flow open-loop through
  ``search_async`` tagged with their bucket, and the result reports the CTR
  deltas alongside per-bucket serving cost (QPS, p99, shed sessions) from
  the same run.
"""

from __future__ import annotations

from typing import Optional

from repro.eval.ab_test import ABTestConfig, OnlineABTest
from repro.experiments.common import ExperimentResult, ExperimentSettings, build_model, scenario_for, train_model
from repro.serving.pipeline import deploy_model


def run(
    settings: Optional[ExperimentSettings] = None,
    dataset: str = "Sep. A",
    baseline_model: str = "KGAT",
    num_days: int = 7,
    sessions_per_day: int = 1500,
    top_k: int = 5,
    backend: str = "pipeline",
    treatment_fraction: float = 0.5,
    rate_qps: Optional[float] = None,
    control_index: str = "exact",
    treatment_index: str = "exact",
) -> ExperimentResult:
    """Simulated seven-day bucket test of GARCIA vs the deployed baseline.

    With ``backend="gateway"`` the buckets are real gateway deployments:
    ``treatment_fraction`` sets the traffic split (the paper buckets a small
    slice of live traffic), ``control_index`` / ``treatment_index`` pick
    each arm's retrieval configuration, and ``rate_qps`` paces the open-loop
    Poisson arrivals (``None`` submits each day as one burst).
    """
    if backend not in ("pipeline", "gateway"):
        raise ValueError(f"unknown backend {backend!r} (pipeline or gateway)")
    settings = settings if settings is not None else ExperimentSettings()
    scenario = scenario_for(dataset, settings)

    baseline = build_model(baseline_model, scenario, settings)
    train_model(baseline, scenario, settings)
    garcia = build_model("GARCIA", scenario, settings)
    train_model(garcia, scenario, settings)

    if backend == "gateway":
        return _run_gateway(
            scenario, baseline, garcia, baseline_model, num_days,
            sessions_per_day, top_k, settings, treatment_fraction, rate_qps,
            control_index, treatment_index,
        )

    baseline_pipeline = deploy_model(baseline, scenario.dataset, top_k=top_k)
    garcia_pipeline = deploy_model(garcia, scenario.dataset, top_k=top_k)

    ab_config = ABTestConfig(num_days=num_days, sessions_per_day=sessions_per_day,
                             top_k=top_k, seed=settings.seed)
    ab_test = OnlineABTest(scenario.dataset, scenario.oracle, config=ab_config)
    outcome = ab_test.run(baseline_pipeline, garcia_pipeline, start_date="2022/10/01")

    result = ExperimentResult(
        experiment_id="fig10",
        title="Fig. 10: online A/B test — relative CTR and Valid-CTR improvement per day",
        notes=(
            f"absolute CTR gain: {outcome.absolute_ctr_gain():.3f} pp, "
            f"absolute Valid-CTR gain: {outcome.absolute_valid_ctr_gain():.3f} pp "
            f"(baseline bucket: {baseline_model})"
        ),
    )
    result.rows.extend(outcome.as_rows())
    result.series["ctr_improvement_pct"] = outcome.ctr_improvement()
    result.series["valid_ctr_improvement_pct"] = outcome.valid_ctr_improvement()
    return result


def _run_gateway(scenario, baseline, garcia, baseline_model: str, num_days: int,
                 sessions_per_day: int, top_k: int, settings,
                 treatment_fraction: float, rate_qps: Optional[float],
                 control_index: str, treatment_index: str) -> ExperimentResult:
    """The gateway-backed bucket test: CTR and serving cost from one run."""
    from repro.serving.abtest import (
        ABExperimentConfig,
        BucketRouter,
        OnlineABExperiment,
    )
    from repro.serving.gateway import deploy_gateway

    if not 0.0 < treatment_fraction < 1.0:
        raise ValueError("treatment_fraction must be in (0, 1)")
    # Validate the experiment parameters BEFORE deploying any gateway, so a
    # bad config cannot leak live schedulers/subscriptions.
    config = ABExperimentConfig(
        num_days=num_days, sessions_per_day=sessions_per_day, top_k=top_k,
        rate_qps=rate_qps, seed=settings.seed,
    )
    arms = {}
    try:
        arms["control"] = deploy_gateway(baseline, index=control_index,
                                         top_k=top_k, cache_capacity=0)
        arms["treatment"] = deploy_gateway(garcia, index=treatment_index,
                                           top_k=top_k, cache_capacity=0)
        router = BucketRouter(
            {"control": 1.0 - treatment_fraction,
             "treatment": treatment_fraction},
            arms=arms,
            salt=settings.seed,
        )
        experiment = OnlineABExperiment(scenario.dataset, scenario.oracle,
                                        router, config)
        report = experiment.run(start_date="2022/10/01")
    finally:
        for gateway in arms.values():
            gateway.close()

    outcome = report.ab_result()
    cost = {row["bucket"]: row for row in report.cost_rows()}
    result = ExperimentResult(
        experiment_id="fig10_gateway",
        title=("Fig. 10 (gateway backend): bucketed traffic through the "
               "serving stack — CTR deltas and per-bucket cost per day"),
        notes=(
            f"absolute CTR gain: {outcome.absolute_ctr_gain():.3f} pp, "
            f"absolute Valid-CTR gain: {outcome.absolute_valid_ctr_gain():.3f} pp "
            f"(baseline bucket: {baseline_model}, "
            f"split {1.0 - treatment_fraction:.0%}/{treatment_fraction:.0%}); "
            f"serving cost: control {cost['control'].get('qps', 0.0):,.0f} QPS "
            f"p99 {cost['control'].get('p99_ms', float('nan')):.2f} ms / "
            f"treatment {cost['treatment'].get('qps', 0.0):,.0f} QPS "
            f"p99 {cost['treatment'].get('p99_ms', float('nan')):.2f} ms, "
            f"{int(report.summary()['sessions_shed_total'])} sessions shed"
        ),
    )
    result.rows.extend(report.joint_rows())
    result.series["ctr_improvement_pct"] = report.ctr_improvement()
    result.series["valid_ctr_improvement_pct"] = report.valid_ctr_improvement()
    result.series["control_p99_ms"] = [cost["control"].get("p99_ms", float("nan"))]
    result.series["treatment_p99_ms"] = [cost["treatment"].get("p99_ms", float("nan"))]
    return result
