"""Fig. 10 — online A/B test: relative CTR and Valid-CTR improvement.

The paper's bucket test compares GARCIA against the deployed baseline (a
KGAT-augmented Wide&Deep model) over seven days, reporting the daily relative
improvement of CTR and Valid CTR; aggregated, GARCIA gains +0.79 pp CTR and
+0.60 pp Valid CTR.  The reproduction trains both models offline, deploys
them through the serving pipeline (inner-product retrieval, Sec. V-F.1) and
replays simulated user traffic through the ground-truth click oracle.
"""

from __future__ import annotations

from typing import Optional

from repro.eval.ab_test import ABTestConfig, OnlineABTest
from repro.experiments.common import ExperimentResult, ExperimentSettings, build_model, scenario_for, train_model
from repro.serving.pipeline import deploy_model


def run(
    settings: Optional[ExperimentSettings] = None,
    dataset: str = "Sep. A",
    baseline_model: str = "KGAT",
    num_days: int = 7,
    sessions_per_day: int = 1500,
    top_k: int = 5,
) -> ExperimentResult:
    """Simulated seven-day bucket test of GARCIA vs the deployed baseline."""
    settings = settings if settings is not None else ExperimentSettings()
    scenario = scenario_for(dataset, settings)

    baseline = build_model(baseline_model, scenario, settings)
    train_model(baseline, scenario, settings)
    garcia = build_model("GARCIA", scenario, settings)
    train_model(garcia, scenario, settings)

    baseline_pipeline = deploy_model(baseline, scenario.dataset, top_k=top_k)
    garcia_pipeline = deploy_model(garcia, scenario.dataset, top_k=top_k)

    ab_config = ABTestConfig(num_days=num_days, sessions_per_day=sessions_per_day,
                             top_k=top_k, seed=settings.seed)
    ab_test = OnlineABTest(scenario.dataset, scenario.oracle, config=ab_config)
    outcome = ab_test.run(baseline_pipeline, garcia_pipeline, start_date="2022/10/01")

    result = ExperimentResult(
        experiment_id="fig10",
        title="Fig. 10: online A/B test — relative CTR and Valid-CTR improvement per day",
        notes=(
            f"absolute CTR gain: {outcome.absolute_ctr_gain():.3f} pp, "
            f"absolute Valid-CTR gain: {outcome.absolute_valid_ctr_gain():.3f} pp "
            f"(baseline bucket: {baseline_model})"
        ),
    )
    result.rows.extend(outcome.as_rows())
    result.series["ctr_improvement_pct"] = outcome.ctr_improvement()
    result.series["valid_ctr_improvement_pct"] = outcome.valid_ctr_improvement()
    return result
