"""Fig. 8 — sensitivity of the contrastive temperature τ.

The paper sweeps τ ∈ {0.05, 0.1, 0.3, 0.5, 0.7, 1.0}; the optimum is τ = 0.1
and large temperatures hurt because the softmax becomes too flat to separate
positives from negatives.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ExperimentSettings
from repro.experiments.sweep import sweep_garcia_hyperparameter

DEFAULT_VALUES = (0.05, 0.1, 0.3, 0.5, 0.7, 1.0)


def run(settings: Optional[ExperimentSettings] = None,
        values: Sequence[float] = DEFAULT_VALUES,
        dataset: str = "Sep. A") -> ExperimentResult:
    """Sweep τ and report tail / overall AUC."""
    return sweep_garcia_hyperparameter(
        experiment_id="fig8",
        title="Fig. 8: sensitivity of the contrastive temperature tau",
        parameter_name="tau",
        values=values,
        make_config=lambda s, value: s.garcia_config(temperature=float(value)),
        settings=settings,
        dataset=dataset,
        track_steps=False,
    )
