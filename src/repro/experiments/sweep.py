"""Shared hyper-parameter sweep helper for the sensitivity figures (Fig. 5–8).

Each sensitivity experiment trains GARCIA on one industrial dataset for a
grid of values of a single hyper-parameter, tracking tail and overall AUC on
the validation split after every epoch (the "training steps" axis of Fig. 5
and Fig. 6) and reporting the final test AUC (the bar charts of Fig. 7 and
Fig. 8).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.eval.evaluator import Evaluator
from repro.experiments.common import ExperimentResult, ExperimentSettings, build_model, scenario_for, train_model
from repro.models.garcia.config import GarciaConfig


def sweep_garcia_hyperparameter(
    experiment_id: str,
    title: str,
    parameter_name: str,
    values: Sequence[float],
    make_config: Callable[[ExperimentSettings, float], GarciaConfig],
    settings: Optional[ExperimentSettings] = None,
    dataset: str = "Sep. A",
    track_steps: bool = True,
) -> ExperimentResult:
    """Train GARCIA once per value of one hyper-parameter and collect AUC.

    Parameters
    ----------
    parameter_name:
        Column / series label of the swept hyper-parameter.
    values:
        Grid of values to sweep.
    make_config:
        Builds the :class:`GarciaConfig` for one grid value.
    track_steps:
        When true, per-epoch validation AUC series are recorded under
        ``series["<param>=<value>/tail_auc"]`` (the step curves of Fig. 5/6).
    """
    settings = settings if settings is not None else ExperimentSettings()
    scenario = scenario_for(dataset, settings)
    evaluator = Evaluator()
    result = ExperimentResult(experiment_id=experiment_id, title=title)
    for value in values:
        config = make_config(settings, value)
        model = build_model("GARCIA", scenario, settings, garcia_config=config)
        history = train_model(model, scenario, settings, track_validation=track_steps)
        report = evaluator.evaluate(
            model, scenario.splits.test, scenario.head_tail,
            dataset_name=dataset, model_name=f"{parameter_name}={value}",
        )
        result.rows.append(
            {
                "dataset": dataset,
                parameter_name: value,
                "tail_auc": report.tail.auc,
                "overall_auc": report.overall.auc,
            }
        )
        if track_steps:
            label = f"{parameter_name}={value}"
            result.series[f"{label}/tail_auc"] = history.metric("tail_auc")
            result.series[f"{label}/overall_auc"] = history.metric("overall_auc")
    return result
