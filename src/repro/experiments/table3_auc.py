"""Table III — AUC comparison of all models on every dataset.

For each of the six datasets the paper reports head / tail / overall AUC of
Wide&Deep, LightGCN, KGAT, SGL, SimGCL and GARCIA, plus GARCIA's improvement
over the best baseline.  The shapes to reproduce: GNN models beat Wide&Deep,
GARCIA is best overall, and its largest margins appear on the tail slice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    ALL_MODEL_NAMES,
    ExperimentResult,
    ExperimentSettings,
    all_dataset_names,
    scenario_for,
    train_and_evaluate,
)


def run(
    settings: Optional[ExperimentSettings] = None,
    datasets: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Train and evaluate every (dataset, model) pair and tabulate AUC."""
    settings = settings if settings is not None else ExperimentSettings()
    dataset_names = list(datasets) if datasets is not None else all_dataset_names()
    model_names = list(models) if models is not None else list(ALL_MODEL_NAMES)
    result = ExperimentResult(
        experiment_id="table3",
        title="Table III: AUC on head / tail / overall slices",
    )
    for dataset_name in dataset_names:
        scenario = scenario_for(dataset_name, settings)
        per_model: Dict[str, Dict[str, float]] = {}
        for model_name in model_names:
            _, report = train_and_evaluate(model_name, scenario, settings)
            per_model[model_name] = {
                "head": report.head.auc,
                "tail": report.tail.auc,
                "overall": report.overall.auc,
            }
            result.rows.append(
                {
                    "dataset": dataset_name,
                    "model": model_name,
                    "head_auc": report.head.auc,
                    "tail_auc": report.tail.auc,
                    "overall_auc": report.overall.auc,
                }
            )
        result.rows.extend(_improvement_rows(dataset_name, per_model))
    return result


def _improvement_rows(dataset_name: str, per_model: Dict[str, Dict[str, float]]) -> List[Dict[str, object]]:
    """GARCIA's relative improvement over the best baseline per slice (the
    "(v.s. best)" row of Table III)."""
    if "GARCIA" not in per_model or len(per_model) < 2:
        return []
    rows = []
    improvements: Dict[str, object] = {"dataset": dataset_name, "model": "GARCIA vs best baseline (%)"}
    for slice_name in ("head", "tail", "overall"):
        baseline_values = [
            metrics[slice_name] for name, metrics in per_model.items() if name != "GARCIA"
        ]
        best_baseline = max(baseline_values)
        garcia_value = per_model["GARCIA"][slice_name]
        improvements[f"{slice_name}_auc"] = round(
            100.0 * (garcia_value - best_baseline) / best_baseline, 2
        )
    rows.append(improvements)
    return rows
