"""Fig. 4 — ablation of the multi-granularity contrastive learning module.

Variants compared on the industrial datasets (head / tail / overall AUC):

* ``GARCIA w.o. ALL``  — no contrastive pre-training at all,
* ``GARCIA w.o. IG&SE`` — only KTCL active,
* ``GARCIA w.o. IG``   — KTCL + SECL,
* ``GARCIA w.o. SE``   — KTCL + IGCL,
* ``GARCIA``           — the full model.

The paper's finding: removing everything hurts the most, and every individual
granularity contributes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.data.industrial import INDUSTRIAL_DATASETS
from repro.experiments.common import ExperimentResult, ExperimentSettings, scenario_for, train_and_evaluate
from repro.models.garcia.config import GarciaConfig


def variant_configs(settings: ExperimentSettings) -> List[Tuple[str, GarciaConfig]]:
    """The five ablation variants of Fig. 4, in plotting order."""
    base = settings.garcia_config()
    return [
        ("GARCIA w.o. ALL", base.without("all")),
        ("GARCIA w.o. IG&SE", base.without("ig", "se")),
        ("GARCIA w.o. IG", base.without("ig")),
        ("GARCIA w.o. SE", base.without("se")),
        ("GARCIA", base),
    ]


def run(settings: Optional[ExperimentSettings] = None,
        datasets: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Head / tail / overall AUC of every contrastive-granularity ablation."""
    settings = settings if settings is not None else ExperimentSettings()
    dataset_names = list(datasets) if datasets is not None else list(INDUSTRIAL_DATASETS)
    result = ExperimentResult(
        experiment_id="fig4",
        title="Fig. 4: multi-granularity contrastive learning ablation",
    )
    for dataset_name in dataset_names:
        scenario = scenario_for(dataset_name, settings)
        for variant_name, config in variant_configs(settings):
            _, report = train_and_evaluate("GARCIA", scenario, settings, garcia_config=config)
            result.rows.append(
                {
                    "dataset": dataset_name,
                    "variant": variant_name,
                    "tail_auc": report.tail.auc,
                    "head_auc": report.head.auc,
                    "overall_auc": report.overall.auc,
                }
            )
    return result
