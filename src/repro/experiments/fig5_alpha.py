"""Fig. 5 — sensitivity of the SECL weight α.

The paper sweeps α ∈ {0.0, 0.1, 0.2, 0.3, 0.4, 0.5} and plots tail / overall
AUC against training steps on Sep. A.  Findings to reproduce: α = 0 (no SECL)
is the worst and very large α degrades performance, with the optimum around
0.1–0.3.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ExperimentSettings
from repro.experiments.sweep import sweep_garcia_hyperparameter

DEFAULT_VALUES = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


def run(settings: Optional[ExperimentSettings] = None,
        values: Sequence[float] = DEFAULT_VALUES,
        dataset: str = "Sep. A") -> ExperimentResult:
    """Sweep α and report tail / overall AUC (plus per-epoch step curves)."""
    return sweep_garcia_hyperparameter(
        experiment_id="fig5",
        title="Fig. 5: sensitivity of the SECL balance factor alpha",
        parameter_name="alpha",
        values=values,
        make_config=lambda s, value: s.garcia_config(alpha=float(value)),
        settings=settings,
        dataset=dataset,
    )
