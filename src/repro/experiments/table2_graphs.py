"""Table II — service-search graph and intention-tree statistics.

The paper reports node and edge counts of the head and tail graph views plus
the size of the intention forest for every dataset.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ExperimentSettings, all_dataset_names, scenario_for


def run(settings: Optional[ExperimentSettings] = None,
        datasets: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compute Table II rows for the selected datasets (default: all six)."""
    settings = settings if settings is not None else ExperimentSettings()
    names = list(datasets) if datasets is not None else all_dataset_names()
    result = ExperimentResult(
        experiment_id="table2",
        title="Table II: service-search graph and intention-tree statistics",
    )
    for name in names:
        scenario = scenario_for(name, settings)
        stats = scenario.graph.statistics(
            intention_nodes=scenario.forest.num_intentions,
            intention_edges=scenario.forest.num_edges,
        )
        result.rows.append(stats.as_row())
    return result
