"""Fig. 3 — ablation of the adaptive (dual head/tail) encoding.

GARCIA-Share replaces the two individual GNN encoders with a single shared
encoder over the full graph.  The paper finds GARCIA ≥ GARCIA-Share, with a
clear margin on two of the three industrial windows, on both the tail slice
and overall.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.data.industrial import INDUSTRIAL_DATASETS
from repro.experiments.common import ExperimentResult, ExperimentSettings, scenario_for, train_and_evaluate


def run(settings: Optional[ExperimentSettings] = None,
        datasets: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compare GARCIA against GARCIA-Share on tail and overall AUC."""
    settings = settings if settings is not None else ExperimentSettings()
    dataset_names = list(datasets) if datasets is not None else list(INDUSTRIAL_DATASETS)
    result = ExperimentResult(
        experiment_id="fig3",
        title="Fig. 3: adaptive encoding ablation (GARCIA vs GARCIA-Share)",
    )
    for dataset_name in dataset_names:
        scenario = scenario_for(dataset_name, settings)
        for variant, config in (
            ("GARCIA-Share", settings.garcia_config(share_encoder=True)),
            ("GARCIA", settings.garcia_config(share_encoder=False)),
        ):
            _, report = train_and_evaluate("GARCIA", scenario, settings, garcia_config=config)
            result.rows.append(
                {
                    "dataset": dataset_name,
                    "variant": variant,
                    "tail_auc": report.tail.auc,
                    "overall_auc": report.overall.auc,
                }
            )
    return result
