"""Shared plumbing for the experiment drivers.

Every table / figure experiment follows the same skeleton: prepare one or
more scenarios, build and train one or more models, evaluate on the test
split, and format the outcome as rows.  The helpers here centralise that
skeleton so the individual drivers stay focused on what the paper varies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.data.amazon import AMAZON_DATASETS, amazon_config
from repro.data.industrial import INDUSTRIAL_DATASETS, industrial_config
from repro.data.synthetic import SyntheticConfig
from repro.eval.evaluator import EvaluationReport, Evaluator
from repro.models import GARCIA, KGAT, SGL, LightGCN, SimGCL, WideAndDeep
from repro.models.base import RankingModel
from repro.models.garcia.config import GarciaConfig
from repro.models.garcia.model import build_garcia
from repro.pipeline import Scenario, prepare_scenario
from repro.training.finetuner import train_garcia
from repro.training.history import TrainingHistory
from repro.training.trainer import Trainer, TrainerConfig

#: Model names in the order Table III reports them.
BASELINE_NAMES: Tuple[str, ...] = ("Wide&Deep", "LightGCN", "KGAT", "SGL", "SimGCL")
ALL_MODEL_NAMES: Tuple[str, ...] = BASELINE_NAMES + ("GARCIA",)


@dataclass
class ExperimentSettings:
    """Scale and optimisation knobs shared by every experiment driver.

    The defaults target the ``tiny`` scale so each benchmark finishes in
    seconds; pass ``scale="small"`` (and more epochs) for results closer to
    the published shapes.
    """

    scale: str = "tiny"
    embedding_dim: int = 16
    num_gnn_layers: int = 2
    pretrain_epochs: int = 2
    finetune_epochs: int = 4
    learning_rate: float = 5e-3
    batch_size: int = 256
    seed: int = 0
    eval_every: int = 0
    garcia: GarciaConfig = field(default_factory=GarciaConfig)

    def garcia_config(self, **overrides) -> GarciaConfig:
        """GARCIA config aligned with the experiment scale plus overrides."""
        return replace(
            self.garcia,
            embedding_dim=self.embedding_dim,
            num_gnn_layers=self.num_gnn_layers,
            seed=self.seed,
            **overrides,
        )

    def trainer_config(self, num_epochs: Optional[int] = None, eval_every: Optional[int] = None) -> TrainerConfig:
        return TrainerConfig(
            num_epochs=self.finetune_epochs if num_epochs is None else num_epochs,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            seed=self.seed,
            eval_every=self.eval_every if eval_every is None else eval_every,
        )


@dataclass
class ExperimentResult:
    """Uniform result container: rows for tables, named series for figures."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)
    notes: str = ""


# --------------------------------------------------------------------- #
# Scenario construction
# --------------------------------------------------------------------- #
def all_dataset_names(include_amazon: bool = True) -> List[str]:
    """The six evaluation datasets of the paper (three industrial, three public)."""
    names = list(INDUSTRIAL_DATASETS)
    if include_amazon:
        names.extend(AMAZON_DATASETS)
    return names


def dataset_config(name: str, scale: str) -> SyntheticConfig:
    """Resolve a dataset name to its synthetic configuration."""
    if name in INDUSTRIAL_DATASETS:
        return industrial_config(name, scale=scale)
    if name in AMAZON_DATASETS:
        return amazon_config(name, scale=scale)
    raise ValueError(f"unknown dataset {name!r}")


def scenario_for(name: str, settings: ExperimentSettings) -> Scenario:
    """Prepare the full scenario (data, splits, graph, forest) for one dataset."""
    return prepare_scenario(dataset_config(name, settings.scale))


# --------------------------------------------------------------------- #
# Model construction and training
# --------------------------------------------------------------------- #
def build_model(name: str, scenario: Scenario, settings: ExperimentSettings,
                garcia_config: Optional[GarciaConfig] = None) -> RankingModel:
    """Instantiate a model by its Table III name."""
    dim = settings.embedding_dim
    seed = settings.seed
    if name == "Wide&Deep":
        return WideAndDeep(scenario.graph, embedding_dim=dim, seed=seed)
    if name == "LightGCN":
        return LightGCN(scenario.graph, embedding_dim=dim, num_layers=settings.num_gnn_layers, seed=seed)
    if name == "KGAT":
        return KGAT(scenario.graph, embedding_dim=dim, num_layers=settings.num_gnn_layers, seed=seed)
    if name == "SGL":
        return SGL(scenario.graph, embedding_dim=dim, num_layers=settings.num_gnn_layers, seed=seed)
    if name == "SimGCL":
        return SimGCL(scenario.graph, embedding_dim=dim, num_layers=settings.num_gnn_layers, seed=seed)
    if name == "GARCIA":
        config = garcia_config if garcia_config is not None else settings.garcia_config()
        return build_garcia(scenario.dataset, scenario.graph, scenario.forest, scenario.head_tail, config)
    raise ValueError(f"unknown model {name!r}; expected one of {ALL_MODEL_NAMES}")


def train_model(
    model: RankingModel,
    scenario: Scenario,
    settings: ExperimentSettings,
    track_validation: bool = False,
) -> TrainingHistory:
    """Train a model with the settings' schedule (pre-train + fine-tune for GARCIA)."""
    validation = scenario.splits.validation if track_validation else None
    head_tail = scenario.head_tail if track_validation else None
    eval_every = 1 if track_validation else 0
    if isinstance(model, GARCIA):
        result = train_garcia(
            model,
            scenario.splits.train,
            validation_interactions=validation,
            head_tail=head_tail,
            pretrain_config=settings.trainer_config(num_epochs=settings.pretrain_epochs, eval_every=0),
            finetune_config=settings.trainer_config(eval_every=eval_every),
        )
        return result.finetune_history
    trainer = Trainer(model, config=settings.trainer_config(eval_every=eval_every))
    return trainer.fit(scenario.splits.train, validation, head_tail)


def train_and_evaluate(
    name: str,
    scenario: Scenario,
    settings: ExperimentSettings,
    garcia_config: Optional[GarciaConfig] = None,
) -> Tuple[RankingModel, EvaluationReport]:
    """Build, train and evaluate one model on one scenario's test split."""
    model = build_model(name, scenario, settings, garcia_config=garcia_config)
    train_model(model, scenario, settings)
    evaluator = Evaluator()
    report = evaluator.evaluate(
        model, scenario.splits.test, scenario.head_tail,
        dataset_name=scenario.name, model_name=model.name,
    )
    return model, report
