"""Fig. 11 — case study: ranked lists for tail queries, baseline vs GARCIA.

The paper shows the top-5 services returned for two representative long-tail
queries by the deployed baseline and by GARCIA, annotating each service with
its MAU and authoritative rating; GARCIA's lists contain markedly
higher-quality services.  The reproduction picks the tail queries with the
most test exposure, ranks them with both deployed pipelines and reports the
per-slot MAU / rating together with the mean quality of each list.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.experiments.common import ExperimentResult, ExperimentSettings, build_model, scenario_for, train_model
from repro.serving.pipeline import deploy_model


def _representative_tail_queries(scenario, num_queries: int) -> List[int]:
    """Tail queries with the highest traffic (still far below the head)."""
    frequencies = scenario.dataset.query_frequencies()
    tail_ids = scenario.head_tail.tail_array()
    order = tail_ids[np.argsort(-frequencies[tail_ids], kind="stable")]
    return [int(query_id) for query_id in order[:num_queries]]


def run(
    settings: Optional[ExperimentSettings] = None,
    dataset: str = "Sep. A",
    baseline_model: str = "KGAT",
    num_case_queries: int = 2,
    top_k: int = 5,
) -> ExperimentResult:
    """Produce the per-slot ranking comparison of Fig. 11."""
    settings = settings if settings is not None else ExperimentSettings()
    scenario = scenario_for(dataset, settings)

    baseline = build_model(baseline_model, scenario, settings)
    train_model(baseline, scenario, settings)
    garcia = build_model("GARCIA", scenario, settings)
    train_model(garcia, scenario, settings)

    baseline_pipeline = deploy_model(baseline, scenario.dataset, top_k=top_k)
    garcia_pipeline = deploy_model(garcia, scenario.dataset, top_k=top_k)

    result = ExperimentResult(
        experiment_id="fig11",
        title="Fig. 11: case study — top-5 services for representative tail queries",
    )
    for query_id in _representative_tail_queries(scenario, num_case_queries):
        query = scenario.dataset.query_by_id(query_id)
        for system_name, pipeline in (("BASELINE", baseline_pipeline), ("GARCIA", garcia_pipeline)):
            ranked = pipeline.rank_with_metadata(query_id, top_k)
            for entry in ranked:
                result.rows.append(
                    {
                        "query": query.text,
                        "query_id": query_id,
                        "system": system_name,
                        "rank": entry.rank,
                        "service": entry.name,
                        "mau": entry.mau,
                        "rating": entry.rating,
                    }
                )
            mean_quality = float(
                np.mean([scenario.dataset.service_by_id(e.service_id).quality_score() for e in ranked])
            ) if ranked else float("nan")
            result.series[f"query{query_id}/{system_name}/mean_quality"] = [mean_quality]
    return result
