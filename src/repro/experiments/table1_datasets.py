"""Table I — dataset statistics.

For every dataset the paper reports the head/tail query shares, the head/tail
search-PV shares (industrial datasets only) and the chronological split
sizes.  This driver regenerates those statistics for the synthetic stand-ins.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ExperimentSettings, all_dataset_names, scenario_for


def run(settings: Optional[ExperimentSettings] = None,
        datasets: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compute Table I rows for the selected datasets (default: all six)."""
    settings = settings if settings is not None else ExperimentSettings()
    names = list(datasets) if datasets is not None else all_dataset_names()
    result = ExperimentResult(
        experiment_id="table1",
        title="Table I: dataset statistics (head/tail query and search-PV shares, split sizes)",
    )
    for name in names:
        scenario = scenario_for(name, settings)
        stats = scenario.dataset.statistics(
            head_query_ids=scenario.head_tail.head_array(),
            splits=scenario.splits.sizes,
        )
        result.rows.append(stats.as_row())
    return result
