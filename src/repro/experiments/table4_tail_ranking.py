"""Table IV — GAUC and NDCG@10 on tail queries (industrial datasets).

The paper reports, for every model and industrial dataset, the tail-query
GAUC and NDCG@10 together with the relative improvement over LightGCN (the
reference row).  The reproduction target is the ordering: GARCIA > KGAT ≈
SGL ≈ SimGCL > LightGCN > Wide&Deep.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.data.industrial import INDUSTRIAL_DATASETS
from repro.experiments.common import (
    ALL_MODEL_NAMES,
    ExperimentResult,
    ExperimentSettings,
    scenario_for,
    train_and_evaluate,
)

REFERENCE_MODEL = "LightGCN"


def run(
    settings: Optional[ExperimentSettings] = None,
    datasets: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Tail-query GAUC / NDCG@10 with improvement ratios over LightGCN."""
    settings = settings if settings is not None else ExperimentSettings()
    dataset_names = list(datasets) if datasets is not None else list(INDUSTRIAL_DATASETS)
    model_names = list(models) if models is not None else list(ALL_MODEL_NAMES)
    if REFERENCE_MODEL not in model_names:
        model_names = [REFERENCE_MODEL] + model_names
    result = ExperimentResult(
        experiment_id="table4",
        title="Table IV: tail-query GAUC and NDCG@10 (improvement vs LightGCN)",
    )
    for dataset_name in dataset_names:
        scenario = scenario_for(dataset_name, settings)
        tail_metrics: Dict[str, Dict[str, float]] = {}
        for model_name in model_names:
            _, report = train_and_evaluate(model_name, scenario, settings)
            tail_metrics[model_name] = {"gauc": report.tail.gauc, "ndcg": report.tail.ndcg}
        reference = tail_metrics[REFERENCE_MODEL]
        for model_name in model_names:
            metrics = tail_metrics[model_name]
            result.rows.append(
                {
                    "dataset": dataset_name,
                    "model": model_name,
                    "tail_gauc": metrics["gauc"],
                    "gauc_vs_lightgcn_pct": _relative(metrics["gauc"], reference["gauc"]),
                    "tail_ndcg10": metrics["ndcg"],
                    "ndcg_vs_lightgcn_pct": _relative(metrics["ndcg"], reference["ndcg"]),
                }
            )
    return result


def _relative(value: float, reference: float) -> float:
    if reference == 0 or reference != reference:  # zero or NaN
        return float("nan")
    return round(100.0 * (value - reference) / reference, 2)
