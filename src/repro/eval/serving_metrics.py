"""Serving-side evaluation: ANN recall, latency percentiles, load-test and
memory-footprint reports.

The offline metrics in :mod:`repro.eval.metrics` grade ranking *quality*
(AUC, NDCG, CTR); this module grades the serving *system* — how faithfully,
how fast, and (since the quantized-table subsystem,
:mod:`repro.serving.quant`) how *small* the gateway answers.  It is shared
by the throughput and quantization benches, the gateway's own recall probe
and the online-serving example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np


def recall_at_k(approx_ids: np.ndarray, exact_ids: np.ndarray, k: int) -> float:
    """Mean per-query overlap between approximate and exact top-k id sets.

    Both arguments are ``(num_queries, >=k)`` id matrices; ``-1`` entries
    (padding for rows with fewer than k reachable candidates) are ignored.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    approx_ids = np.asarray(approx_ids)
    exact_ids = np.asarray(exact_ids)
    if approx_ids.ndim == 1:
        approx_ids = approx_ids[None, :]
    if exact_ids.ndim == 1:
        exact_ids = exact_ids[None, :]
    if approx_ids.shape[0] != exact_ids.shape[0]:
        raise ValueError("approx and exact id matrices must have the same number of rows")
    overlaps = []
    for approx_row, exact_row in zip(approx_ids, exact_ids):
        exact_set = set(int(i) for i in exact_row[:k] if i >= 0)
        approx_set = set(int(i) for i in approx_row[:k] if i >= 0)
        overlaps.append(len(exact_set & approx_set) / k)
    return float(np.mean(overlaps)) if overlaps else float("nan")


def latency_percentiles(latencies_s: Sequence[float],
                        percentiles: Sequence[float] = (50, 95, 99)) -> Dict[str, float]:
    """``{"p50_ms": ..., ...}`` of a latency sample, in milliseconds.

    Thin alias over the shared exact-percentile helper
    (:func:`repro.serving.obs.metrics.sample_percentiles_ms`) so the eval
    layer, the load bench and the gateway agree on one definition.
    """
    # Imported lazily: the serving gateway imports recall_at_k from this
    # module, so a module-level import would be circular.
    from repro.serving.obs.metrics import sample_percentiles_ms

    return sample_percentiles_ms(latencies_s, percentiles)


@dataclass
class LoadTestSummary:
    """Headline numbers of one load-test run through one retrieval mode."""

    mode: str
    requests: int
    elapsed_s: float
    qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    recall_at_k: float
    cache_hit_rate: float = 0.0
    mean_batch_size: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """One table/JSON row (extras appended after the fixed columns)."""
        row: Dict[str, object] = {
            "mode": self.mode,
            "requests": self.requests,
            "elapsed_s": self.elapsed_s,
            "qps": self.qps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "recall_at_k": self.recall_at_k,
            "cache_hit_rate": self.cache_hit_rate,
            "mean_batch_size": self.mean_batch_size,
        }
        row.update(self.extras)
        return row


def summarize_load_test(mode: str, latencies_s: Sequence[float], elapsed_s: float,
                        recall: float, cache_hit_rate: float = 0.0,
                        mean_batch_size: float = 0.0,
                        extras: Optional[Mapping[str, float]] = None) -> LoadTestSummary:
    """Condense raw per-request latencies + run metadata into a summary."""
    if elapsed_s <= 0:
        raise ValueError("elapsed_s must be positive")
    tail = latency_percentiles(latencies_s)
    return LoadTestSummary(
        mode=mode,
        requests=len(latencies_s),
        elapsed_s=float(elapsed_s),
        qps=len(latencies_s) / float(elapsed_s),
        p50_ms=tail["p50_ms"],
        p95_ms=tail["p95_ms"],
        p99_ms=tail["p99_ms"],
        recall_at_k=float(recall),
        cache_hit_rate=float(cache_hit_rate),
        mean_batch_size=float(mean_batch_size),
        extras=dict(extras or {}),
    )


def summarize_gateway(mode: str, gateway,
                      elapsed_s: Optional[float] = None) -> LoadTestSummary:
    """Build a :class:`LoadTestSummary` straight from a gateway's telemetry.

    ``elapsed_s`` overrides the telemetry's first-to-last-request span with
    an externally measured wall-clock duration (what the load benches do).

    The telemetry keeps histograms, not raw latency lists, so the summary
    is assembled from :meth:`GatewayTelemetry.summary` — percentiles are
    bucket-interpolated within the documented relative-error bound.
    """
    stats = gateway.telemetry.summary()
    requests = int(stats["requests"])
    elapsed = gateway.telemetry.elapsed_s if elapsed_s is None else float(elapsed_s)
    if elapsed <= 0:
        raise ValueError("elapsed_s must be positive")
    return LoadTestSummary(
        mode=mode,
        requests=requests,
        elapsed_s=elapsed,
        qps=requests / elapsed,
        p50_ms=stats["p50_ms"],
        p95_ms=stats["p95_ms"],
        p99_ms=stats["p99_ms"],
        recall_at_k=stats["recall_at_k"],
        cache_hit_rate=stats["cache_hit_rate"],
        mean_batch_size=stats["mean_batch_size"],
        extras={"backend_queries": stats["backend_queries"],
                "store_version": float(gateway.store.version)},
    )


def load_test_rows(summaries: Sequence[LoadTestSummary]) -> List[Dict[str, object]]:
    """Rows for :func:`repro.eval.reporting.format_float_table` / JSON dumps."""
    return [summary.as_row() for summary in summaries]


# --------------------------------------------------------------------- #
# Memory footprint / compression reporting
# --------------------------------------------------------------------- #
def memory_footprint(table) -> int:
    """Resident bytes of a service table or retrieval index.

    Accepts anything with an ``nbytes`` attribute — a plain numpy table, a
    quantized table (:class:`~repro.serving.quant.scalar.Int8Table` /
    :class:`~repro.serving.quant.pq.PQTable`) or a built
    :class:`~repro.serving.gateway.index.RetrievalIndex`.
    """
    nbytes = getattr(table, "nbytes", None)
    if nbytes is None:
        raise TypeError(f"{type(table).__name__} has no nbytes")
    return int(nbytes)


def compression_report(baseline_table, variants: Mapping[str, object],
                       exact_ids: Optional[np.ndarray] = None,
                       variant_ids: Optional[Mapping[str, np.ndarray]] = None,
                       k: int = 10) -> List[Dict[str, object]]:
    """Memory-vs-recall rows for compressed variants of one service table.

    ``baseline_table`` is the uncompressed reference (typically the fp
    snapshot's ``services`` array); ``variants`` maps a label to the
    compressed table or index.  When ``exact_ids`` (the exact top-k matrix)
    and per-variant ``variant_ids`` are supplied, each row also reports
    recall@k, making the memory/quality trade-off one table.
    """
    baseline_bytes = memory_footprint(baseline_table)
    if baseline_bytes <= 0:
        raise ValueError("baseline table must occupy at least one byte")
    rows: List[Dict[str, object]] = [{
        "table": "baseline",
        "bytes": baseline_bytes,
        "compression_x": 1.0,
        "recall_at_k": 1.0 if exact_ids is not None else float("nan"),
    }]
    for label, table in variants.items():
        nbytes = memory_footprint(table)
        recall = float("nan")
        if exact_ids is not None and variant_ids and label in variant_ids:
            recall = recall_at_k(variant_ids[label], exact_ids, k)
        rows.append({
            "table": label,
            "bytes": nbytes,
            "compression_x": baseline_bytes / nbytes,
            "recall_at_k": recall,
        })
    return rows
