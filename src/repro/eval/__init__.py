"""Evaluation: ranking metrics, per-slice evaluators and the online A/B simulator."""

from repro.eval.metrics import auc, gauc, ndcg_at_k, ctr, hit_rate_at_k
from repro.eval.evaluator import SliceMetrics, EvaluationReport, Evaluator
from repro.eval.ab_test import ABTestConfig, ABTestResult, OnlineABTest
from repro.eval.reporting import format_table, format_float_table

__all__ = [
    "auc",
    "gauc",
    "ndcg_at_k",
    "ctr",
    "hit_rate_at_k",
    "SliceMetrics",
    "EvaluationReport",
    "Evaluator",
    "ABTestConfig",
    "ABTestResult",
    "OnlineABTest",
    "format_table",
    "format_float_table",
]
