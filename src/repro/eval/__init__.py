"""Evaluation: ranking metrics, per-slice evaluators, the online A/B simulator
and serving-side load-test metrics (ANN recall, latency percentiles, QPS)."""

from repro.eval.ab_test import ABTestConfig, ABTestResult, OnlineABTest
from repro.eval.evaluator import EvaluationReport, Evaluator, SliceMetrics
from repro.eval.metrics import auc, ctr, gauc, hit_rate_at_k, ndcg_at_k
from repro.eval.reporting import format_float_table, format_table
from repro.eval.serving_metrics import (
    LoadTestSummary,
    compression_report,
    latency_percentiles,
    load_test_rows,
    memory_footprint,
    recall_at_k,
    summarize_gateway,
    summarize_load_test,
)

__all__ = [
    "auc",
    "gauc",
    "ndcg_at_k",
    "ctr",
    "hit_rate_at_k",
    "SliceMetrics",
    "EvaluationReport",
    "Evaluator",
    "ABTestConfig",
    "ABTestResult",
    "OnlineABTest",
    "format_table",
    "format_float_table",
    "LoadTestSummary",
    "compression_report",
    "latency_percentiles",
    "load_test_rows",
    "memory_footprint",
    "recall_at_k",
    "summarize_gateway",
    "summarize_load_test",
]
