"""Simulated online A/B (bucket) testing.

The paper deploys GARCIA in the Alipay service-search scenario and runs a
seven-day bucket test against the production baseline, reporting the relative
improvement of CTR and Valid CTR per day (Fig. 10).  This module reproduces
the *measurement*: a population of simulated users issues queries according
to the dataset's traffic distribution, each bucket's ranker returns a top-K
list, and the ground-truth :class:`~repro.data.synthetic.ClickOracle` decides
clicks and in-service conversions.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.data.schema import ServiceSearchDataset
from repro.data.synthetic import ClickOracle


@dataclass
class ABTestConfig:
    """Parameters of the simulated bucket test."""

    num_days: int = 7
    sessions_per_day: int = 3000
    top_k: int = 5
    #: Position-bias discounts applied to the click probability of each slot.
    position_bias: Sequence[float] = (1.0, 0.75, 0.55, 0.4, 0.3)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_days <= 0 or self.sessions_per_day <= 0 or self.top_k <= 0:
            raise ValueError("num_days, sessions_per_day and top_k must be positive")
        if len(self.position_bias) < self.top_k:
            raise ValueError("position_bias must cover every slot of the top-K list")


def date_label(start_date: str, offset: int) -> str:
    """``YYYY/MM/DD`` label ``offset`` days after ``start_date``.

    Real calendar arithmetic, so a test window crossing a month (or year)
    boundary still labels every day with a date that exists.
    """
    year, month, day = (int(part) for part in start_date.split("/"))
    date = datetime.date(year, month, day) + datetime.timedelta(days=offset)
    return f"{date.year:04d}/{date.month:02d}/{date.day:02d}"


@dataclass
class BucketDailyMetrics:
    """One bucket's raw counters for one day."""

    impressions: int = 0
    clicks: int = 0
    conversions: int = 0

    @property
    def ctr(self) -> float:
        return self.clicks / self.impressions if self.impressions else float("nan")

    @property
    def valid_ctr(self) -> float:
        return self.conversions / self.impressions if self.impressions else float("nan")


def simulate_impressions(
    oracle: ClickOracle,
    query_id: int,
    ranked: Sequence[int],
    position_bias: Sequence[float],
    rng: np.random.Generator,
    metrics: BucketDailyMetrics,
) -> None:
    """Score one session's top-K list against the click oracle.

    One impression per shown slot; the oracle's click probability is
    discounted by the slot's position bias, and a conversion requires a
    click first.  The counters accumulate into ``metrics`` — shared by the
    offline replay (:class:`OnlineABTest`) and the gateway-backed
    experiment (:class:`repro.serving.abtest.OnlineABExperiment`), so the
    two backends cannot drift in how a session becomes clicks.
    """
    shown = np.asarray(ranked, dtype=np.int64)
    if shown.size == 0:
        return
    bias = np.asarray(position_bias[: shown.size], dtype=np.float64)
    query_column = np.full(shown.size, query_id)
    clicks_p = oracle.click_probability(query_column, shown) * bias
    clicked = rng.random(shown.size) < clicks_p
    conversions_p = oracle.conversion_probability(query_column, shown)
    converted = clicked & (rng.random(shown.size) < conversions_p)
    metrics.impressions += int(shown.size)
    metrics.clicks += int(clicked.sum())
    metrics.conversions += int(converted.sum())


@dataclass
class ABTestResult:
    """Per-day metrics of both buckets plus relative improvements (Fig. 10)."""

    days: List[str]
    baseline: List[BucketDailyMetrics]
    treatment: List[BucketDailyMetrics]

    def ctr_improvement(self) -> List[float]:
        """Relative CTR improvement (%) of the treatment bucket per day."""
        return [
            100.0 * (t.ctr - b.ctr) / b.ctr if b.ctr else float("nan")
            for b, t in zip(self.baseline, self.treatment)
        ]

    def valid_ctr_improvement(self) -> List[float]:
        """Relative Valid-CTR improvement (%) per day."""
        return [
            100.0 * (t.valid_ctr - b.valid_ctr) / b.valid_ctr if b.valid_ctr else float("nan")
            for b, t in zip(self.baseline, self.treatment)
        ]

    def absolute_ctr_gain(self) -> float:
        """Absolute CTR improvement in percentage points, aggregated over days."""
        base_clicks = sum(b.clicks for b in self.baseline)
        base_impressions = sum(b.impressions for b in self.baseline)
        treat_clicks = sum(t.clicks for t in self.treatment)
        treat_impressions = sum(t.impressions for t in self.treatment)
        return 100.0 * (treat_clicks / treat_impressions - base_clicks / base_impressions)

    def absolute_valid_ctr_gain(self) -> float:
        """Absolute Valid-CTR improvement in percentage points."""
        base = sum(b.conversions for b in self.baseline) / sum(b.impressions for b in self.baseline)
        treat = sum(t.conversions for t in self.treatment) / sum(t.impressions for t in self.treatment)
        return 100.0 * (treat - base)

    def as_rows(self) -> List[Dict[str, object]]:
        rows = []
        for day, ctr_gain, valid_gain in zip(self.days, self.ctr_improvement(), self.valid_ctr_improvement()):
            rows.append(
                {
                    "day": day,
                    "ctr_improvement_pct": round(ctr_gain, 3),
                    "valid_ctr_improvement_pct": round(valid_gain, 3),
                }
            )
        return rows


class OnlineABTest:
    """Replay simulated traffic against two rankers and compare buckets.

    A *ranker* is anything exposing ``rank(query_id, k) -> sequence of service
    ids`` — in practice the serving pipeline of
    :mod:`repro.serving` wrapping either GARCIA or a baseline.
    """

    def __init__(self, dataset: ServiceSearchDataset, oracle: ClickOracle,
                 config: ABTestConfig = ABTestConfig()) -> None:
        self.dataset = dataset
        self.oracle = oracle
        self.config = config
        frequencies = dataset.query_frequencies().astype(np.float64)
        total = frequencies.sum()
        if total <= 0:
            raise ValueError("dataset has no query traffic to replay")
        self._traffic = frequencies / total

    def run(self, baseline_ranker, treatment_ranker, start_date: str = "2022/10/01") -> ABTestResult:
        """Run the bucket test and return per-day metrics for both buckets."""
        rng = np.random.default_rng(self.config.seed)
        days = [date_label(start_date, offset) for offset in range(self.config.num_days)]
        baseline_days: List[BucketDailyMetrics] = []
        treatment_days: List[BucketDailyMetrics] = []
        for _ in range(self.config.num_days):
            query_sample = rng.choice(
                self.dataset.num_queries, size=self.config.sessions_per_day, p=self._traffic
            )
            # Users are split into two buckets; both see the same query mix in
            # expectation but are served by different rankers.
            assignment = rng.random(len(query_sample)) < 0.5
            baseline_days.append(
                self._run_bucket(baseline_ranker, query_sample[assignment], rng)
            )
            treatment_days.append(
                self._run_bucket(treatment_ranker, query_sample[~assignment], rng)
            )
        return ABTestResult(days=days, baseline=baseline_days, treatment=treatment_days)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _run_bucket(self, ranker, query_ids: np.ndarray, rng: np.random.Generator) -> BucketDailyMetrics:
        metrics = BucketDailyMetrics()
        top_k = self.config.top_k
        for query_id in query_ids:
            ranked = np.asarray(ranker.rank(int(query_id), top_k), dtype=np.int64)
            simulate_impressions(self.oracle, int(query_id), ranked[:top_k],
                                 self.config.position_bias, rng, metrics)
        return metrics
