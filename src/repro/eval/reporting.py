"""Plain-text table formatting for benchmark output.

The benchmark harness prints the same rows/series the paper reports; these
helpers render lists of dictionaries as aligned monospace tables so the
benches stay free of formatting clutter.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, object]], title: Optional[str] = None) -> str:
    """Render ``rows`` (list of dicts sharing keys) as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_format_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(cell.ljust(width) for cell, width in zip(line, widths)) for line in rendered
    )
    pieces = []
    if title:
        pieces.append(title)
    pieces.extend([header, separator, body])
    return "\n".join(pieces)


def format_float_table(
    rows: Sequence[Mapping[str, object]],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Like :func:`format_table` but floats are rounded to ``precision``."""
    rounded: List[Dict[str, object]] = []
    for row in rows:
        converted: Dict[str, object] = {}
        for key, value in row.items():
            if isinstance(value, float):
                converted[key] = round(value, precision)
            else:
                converted[key] = value
        rounded.append(converted)
    return format_table(rounded, title=title)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
