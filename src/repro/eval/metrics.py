"""Ranking metrics: AUC, GAUC, NDCG@K, CTR and hit rate.

The three offline metrics reported in the paper are AUC, GAUC (AUC computed
per query and averaged with per-query sample weights) and NDCG@K.  The online
experiments use CTR and Valid CTR, both simple ratios over impressions.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np


def _validate_binary(labels: np.ndarray) -> None:
    unique = np.unique(labels)
    if not np.all(np.isin(unique, (0, 1))):
        raise ValueError(f"labels must be binary 0/1, got values {unique}")


def auc(labels: Sequence[float], scores: Sequence[float]) -> float:
    """Area under the ROC curve via the Mann-Whitney rank statistic.

    Ties in scores receive the average rank, which matches the standard
    trapezoidal ROC computation.  Returns ``nan`` when only one class is
    present (AUC is undefined there).
    """
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    _validate_binary(labels)
    num_positive = int(labels.sum())
    num_negative = len(labels) - num_positive
    if num_positive == 0 or num_negative == 0:
        return float("nan")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=np.float64)
    sorted_scores = scores[order]
    # Average ranks over tied groups.
    rank_values = np.arange(1, len(scores) + 1, dtype=np.float64)
    unique_scores, inverse, counts = np.unique(sorted_scores, return_inverse=True, return_counts=True)
    cumulative = np.cumsum(counts)
    start = cumulative - counts + 1
    averaged = (start + cumulative) / 2.0
    ranks[order] = averaged[inverse]
    positive_rank_sum = ranks[labels == 1].sum()
    statistic = positive_rank_sum - num_positive * (num_positive + 1) / 2.0
    return float(statistic / (num_positive * num_negative))


def gauc(
    labels: Sequence[float],
    scores: Sequence[float],
    group_ids: Sequence[int],
    weights: Optional[Sequence[float]] = None,
) -> float:
    """Group AUC: impression-weighted mean of the per-query AUC.

    Queries whose impressions contain a single class are skipped, as is
    standard.  ``weights`` default to the number of impressions per group.
    """
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    group_ids = np.asarray(group_ids, dtype=np.int64)
    if not (len(labels) == len(scores) == len(group_ids)):
        raise ValueError("labels, scores and group_ids must have the same length")
    custom_weights: Optional[Dict[int, float]] = None
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if len(weights) != len(labels):
            raise ValueError("weights must align with labels")
    total_weight = 0.0
    weighted_sum = 0.0
    for group in np.unique(group_ids):
        mask = group_ids == group
        group_auc = auc(labels[mask], scores[mask])
        if np.isnan(group_auc):
            continue
        weight = float(weights[mask].sum()) if weights is not None else float(mask.sum())
        weighted_sum += weight * group_auc
        total_weight += weight
    if total_weight == 0.0:
        return float("nan")
    return float(weighted_sum / total_weight)


def dcg_at_k(relevances: Sequence[float], k: int) -> float:
    """Discounted cumulative gain of a relevance list truncated at ``k``."""
    relevances = np.asarray(relevances, dtype=np.float64)[:k]
    if relevances.size == 0:
        return 0.0
    discounts = 1.0 / np.log2(np.arange(2, relevances.size + 2))
    return float((relevances * discounts).sum())


def ndcg_at_k(
    labels: Sequence[float],
    scores: Sequence[float],
    group_ids: Sequence[int],
    k: int = 10,
) -> float:
    """Mean NDCG@K over queries (groups) with at least one relevant item."""
    if k <= 0:
        raise ValueError("k must be positive")
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    group_ids = np.asarray(group_ids, dtype=np.int64)
    values = []
    for group in np.unique(group_ids):
        mask = group_ids == group
        group_labels = labels[mask]
        if group_labels.sum() == 0:
            continue
        group_scores = scores[mask]
        order = np.argsort(-group_scores, kind="mergesort")
        ranked = group_labels[order]
        ideal = np.sort(group_labels)[::-1]
        ideal_dcg = dcg_at_k(ideal, k)
        if ideal_dcg == 0.0:
            continue
        values.append(dcg_at_k(ranked, k) / ideal_dcg)
    if not values:
        return float("nan")
    return float(np.mean(values))


def ctr(clicks: Sequence[float], impressions: Optional[int] = None) -> float:
    """Click-through rate: clicks per impression."""
    clicks = np.asarray(clicks, dtype=np.float64)
    denominator = len(clicks) if impressions is None else impressions
    if denominator == 0:
        return float("nan")
    return float(clicks.sum() / denominator)


def hit_rate_at_k(
    labels: Sequence[float],
    scores: Sequence[float],
    group_ids: Sequence[int],
    k: int = 10,
) -> float:
    """Fraction of queries for which a relevant item appears in the top K."""
    if k <= 0:
        raise ValueError("k must be positive")
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    group_ids = np.asarray(group_ids, dtype=np.int64)
    hits = []
    for group in np.unique(group_ids):
        mask = group_ids == group
        group_labels = labels[mask]
        if group_labels.sum() == 0:
            continue
        order = np.argsort(-scores[mask], kind="mergesort")
        hits.append(1.0 if group_labels[order][:k].sum() > 0 else 0.0)
    if not hits:
        return float("nan")
    return float(np.mean(hits))
