"""Per-slice evaluation of ranking models.

The paper reports every metric on three query slices: head, tail and overall.
:class:`Evaluator` scores a trained model on a set of interactions and
produces an :class:`EvaluationReport` holding a :class:`SliceMetrics` per
slice — exactly the layout of Table III / Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.data.loaders import interactions_to_arrays
from repro.data.schema import Interaction
from repro.data.splits import HeadTailSplit
from repro.eval.metrics import auc, gauc, ndcg_at_k

SLICES = ("head", "tail", "overall")


@dataclass
class SliceMetrics:
    """Metrics of a single query slice."""

    auc: float
    gauc: float
    ndcg: float
    num_interactions: int
    num_queries: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "auc": self.auc,
            "gauc": self.gauc,
            "ndcg": self.ndcg,
            "num_interactions": self.num_interactions,
            "num_queries": self.num_queries,
        }


@dataclass
class EvaluationReport:
    """Head / tail / overall metrics of one model on one dataset."""

    model_name: str
    dataset_name: str
    slices: Dict[str, SliceMetrics] = field(default_factory=dict)

    @property
    def head(self) -> SliceMetrics:
        return self.slices["head"]

    @property
    def tail(self) -> SliceMetrics:
        return self.slices["tail"]

    @property
    def overall(self) -> SliceMetrics:
        return self.slices["overall"]

    def as_row(self) -> Dict[str, float]:
        """Flatten to one Table III style row (AUC per slice)."""
        return {
            "model": self.model_name,
            "head_auc": round(self.head.auc, 4),
            "tail_auc": round(self.tail.auc, 4),
            "overall_auc": round(self.overall.auc, 4),
        }


class Evaluator:
    """Score a model on interactions and report per-slice ranking quality."""

    def __init__(self, ndcg_k: int = 10, batch_size: int = 4096) -> None:
        if ndcg_k <= 0:
            raise ValueError("ndcg_k must be positive")
        self.ndcg_k = ndcg_k
        self.batch_size = batch_size

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        model,
        interactions: Sequence[Interaction],
        head_tail: HeadTailSplit,
        dataset_name: str = "",
        model_name: Optional[str] = None,
    ) -> EvaluationReport:
        """Evaluate ``model`` (anything with ``predict(query_ids, service_ids)``)."""
        batch = interactions_to_arrays(list(interactions))
        if len(batch) == 0:
            raise ValueError("cannot evaluate on an empty interaction list")
        scores = self.score(model, batch.query_ids, batch.service_ids)
        labels = batch.labels
        is_head = np.array([head_tail.is_head(int(q)) for q in batch.query_ids], dtype=bool)

        report = EvaluationReport(
            model_name=model_name if model_name is not None else getattr(model, "name", type(model).__name__),
            dataset_name=dataset_name,
        )
        masks = {"head": is_head, "tail": ~is_head, "overall": np.ones(len(labels), dtype=bool)}
        for slice_name, mask in masks.items():
            report.slices[slice_name] = self._slice_metrics(
                labels[mask], scores[mask], batch.query_ids[mask]
            )
        return report

    def score(self, model, query_ids: np.ndarray, service_ids: np.ndarray) -> np.ndarray:
        """Predict click probabilities in batches (no gradient tracking)."""
        pieces = []
        for start in range(0, len(query_ids), self.batch_size):
            stop = start + self.batch_size
            pieces.append(np.asarray(model.predict(query_ids[start:stop], service_ids[start:stop])))
        return np.concatenate(pieces) if pieces else np.zeros(0)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _slice_metrics(self, labels: np.ndarray, scores: np.ndarray, group_ids: np.ndarray) -> SliceMetrics:
        if len(labels) == 0:
            return SliceMetrics(auc=float("nan"), gauc=float("nan"), ndcg=float("nan"),
                                num_interactions=0, num_queries=0)
        return SliceMetrics(
            auc=auc(labels, scores),
            gauc=gauc(labels, scores, group_ids),
            ndcg=ndcg_at_k(labels, scores, group_ids, k=self.ndcg_k),
            num_interactions=int(len(labels)),
            num_queries=int(len(np.unique(group_ids))),
        )
