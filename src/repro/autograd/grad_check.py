"""Numerical gradient checking utilities.

Used throughout the test-suite to verify that every analytic gradient in the
autograd engine (and therefore every model gradient built on top of it)
matches a central-difference approximation.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    epsilon: float = 1e-6,
) -> Tuple[np.ndarray, ...]:
    """Central-difference gradient of scalar ``fn`` w.r.t. every input tensor."""
    gradients = []
    for tensor in inputs:
        grad = np.zeros_like(tensor.data)
        flat = tensor.data.reshape(-1)
        flat_grad = grad.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + epsilon
            plus = float(fn(inputs).data)
            flat[i] = original - epsilon
            minus = float(fn(inputs).data)
            flat[i] = original
            flat_grad[i] = (plus - minus) / (2.0 * epsilon)
        gradients.append(grad)
    return tuple(gradients)


def gradient_check(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    epsilon: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Compare analytic and numerical gradients of a scalar-valued function.

    Parameters
    ----------
    fn:
        Callable taking the list of input tensors and returning a scalar
        :class:`Tensor`.  It must rebuild the computation on every call.
    inputs:
        Tensors with ``requires_grad=True`` whose gradients are checked.

    Returns
    -------
    bool
        ``True`` if every analytic gradient is close to the numerical one.

    Raises
    ------
    AssertionError
        With a diagnostic message when a gradient mismatch is found.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = fn(inputs)
    output.backward()
    analytic = [np.zeros_like(t.data) if t.grad is None else t.grad for t in inputs]
    numeric = numerical_gradient(fn, inputs, epsilon=epsilon)
    for index, (a, n) in enumerate(zip(analytic, numeric)):
        if not np.allclose(a, n, atol=atol, rtol=rtol):
            max_err = float(np.max(np.abs(a - n)))
            raise AssertionError(
                f"gradient mismatch for input {index}: max abs error {max_err:.3e}\n"
                f"analytic:\n{a}\nnumeric:\n{n}"
            )
    return True
