"""Reverse-mode automatic differentiation on top of NumPy.

This package is the deep-learning substrate of the GARCIA reproduction.  The
original paper trains its models on an in-house parameter-server system built
on a mainstream framework; since no such framework is available offline, the
reproduction ships a small but complete autograd engine that supports every
operation GARCIA and its baselines need:

* dense linear algebra (matmul, transpose, reshape, concatenation, indexing),
* element-wise math (add, mul, exp, log, power, clip),
* reductions (sum, mean, max) with full broadcasting support,
* neural-network non-linearities (relu, tanh, sigmoid, softmax, log-softmax),
* similarity / normalisation primitives (L2 normalise, cosine similarity),
* gradient checking utilities used by the test-suite.

The public entry point is :class:`repro.autograd.Tensor`.  Operations either
exist as methods on the tensor (``a @ b``, ``a.sum()``) or as free functions in
:mod:`repro.autograd.functional`.
"""

from repro.autograd import functional
from repro.autograd.grad_check import gradient_check, numerical_gradient
from repro.autograd.tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "gradient_check",
    "numerical_gradient",
]
