"""Core :class:`Tensor` class implementing reverse-mode autodiff.

The design follows the classic define-by-run tape approach: every operation
records its parent tensors and a closure computing the local vector-Jacobian
product.  Calling :meth:`Tensor.backward` performs a topological sort of the
recorded graph and accumulates gradients into every tensor created with
``requires_grad=True``.

Only float64 data is used internally.  This keeps gradient checks tight and is
fast enough for the laptop-scale experiments in this reproduction.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value.astype(np.float64, copy=False)
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor that records operations for backpropagation.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    parents:
        Tensors this tensor was computed from (internal).
    backward_fn:
        Closure mapping the upstream gradient to a tuple of gradients w.r.t.
        each parent (internal).
    name:
        Optional label used in debugging output.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Optional[Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple[Tensor, ...] = tuple(parents) if self.requires_grad or parents else ()
        self._backward_fn = backward_fn
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ensure(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]],
    ) -> "Tensor":
        requires_grad = is_grad_enabled() and any(p.requires_grad for p in parents)
        if not requires_grad:
            return Tensor(data)
        return Tensor(data, requires_grad=True, parents=parents, backward_fn=backward_fn)

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ``1.0`` for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        ordering = self._topological_order()
        grads: dict = {id(self): grad}
        for node in ordering:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and (node._backward_fn is None or not node._parents):
                node.grad = node_grad if node.grad is None else node.grad + node_grad
            if node._backward_fn is None or not node._parents:
                continue
            parent_grads = node._backward_fn(node_grad)
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None or not parent.requires_grad:
                    continue
                existing = grads.get(id(parent))
                grads[id(parent)] = parent_grad if existing is None else existing + parent_grad

    def _topological_order(self) -> List["Tensor"]:
        ordering: List[Tensor] = []
        visited = set()

        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                ordering.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        ordering.reverse()
        return ordering

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data + other.data

        def backward_fn(upstream: np.ndarray):
            return (
                _unbroadcast(upstream, self.shape),
                _unbroadcast(upstream, other.shape),
            )

        return self._make(out_data, (self, other), backward_fn)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data - other.data

        def backward_fn(upstream: np.ndarray):
            return (
                _unbroadcast(upstream, self.shape),
                _unbroadcast(-upstream, other.shape),
            )

        return self._make(out_data, (self, other), backward_fn)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data * other.data

        def backward_fn(upstream: np.ndarray):
            return (
                _unbroadcast(upstream * other.data, self.shape),
                _unbroadcast(upstream * self.data, other.shape),
            )

        return self._make(out_data, (self, other), backward_fn)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data / other.data

        def backward_fn(upstream: np.ndarray):
            return (
                _unbroadcast(upstream / other.data, self.shape),
                _unbroadcast(-upstream * self.data / (other.data ** 2), other.shape),
            )

        return self._make(out_data, (self, other), backward_fn)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward_fn(upstream: np.ndarray):
            return (-upstream,)

        return self._make(out_data, (self,), backward_fn)

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)
        out_data = self.data ** exponent

        def backward_fn(upstream: np.ndarray):
            return (upstream * exponent * self.data ** (exponent - 1.0),)

        return self._make(out_data, (self,), backward_fn)

    # ------------------------------------------------------------------ #
    # Linear algebra / shape ops
    # ------------------------------------------------------------------ #
    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data @ other.data

        def backward_fn(upstream: np.ndarray):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                grad_a = upstream * b
                grad_b = upstream * a
            elif a.ndim == 1:
                grad_a = upstream @ b.T
                grad_b = np.outer(a, upstream)
            elif b.ndim == 1:
                grad_a = np.outer(upstream, b)
                grad_b = a.T @ upstream
            else:
                grad_a = upstream @ np.swapaxes(b, -1, -2)
                grad_b = np.swapaxes(a, -1, -2) @ upstream
                grad_a = _unbroadcast(grad_a, a.shape)
                grad_b = _unbroadcast(grad_b, b.shape)
            return grad_a, grad_b

        return self._make(out_data, (self, other), backward_fn)

    def matmul(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self.__matmul__(other)

    def transpose(self, *axes: int) -> "Tensor":
        axes_arg: Optional[Tuple[int, ...]] = tuple(axes) if axes else None
        out_data = np.transpose(self.data, axes_arg)

        def backward_fn(upstream: np.ndarray):
            if axes_arg is None:
                return (np.transpose(upstream),)
            inverse = np.argsort(axes_arg)
            return (np.transpose(upstream, inverse),)

        return self._make(out_data, (self,), backward_fn)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.shape
        out_data = self.data.reshape(shape)

        def backward_fn(upstream: np.ndarray):
            return (upstream.reshape(original_shape),)

        return self._make(out_data, (self,), backward_fn)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        original_shape = self.shape

        def backward_fn(upstream: np.ndarray):
            grad = np.zeros(original_shape, dtype=np.float64)
            np.add.at(grad, index, upstream)
            return (grad,)

        return self._make(out_data, (self,), backward_fn)

    def index_select(self, indices: ArrayLike, axis: int = 0) -> "Tensor":
        """Gather rows (or slices along ``axis``) given integer ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        out_data = np.take(self.data, indices, axis=axis)
        original_shape = self.shape

        def backward_fn(upstream: np.ndarray):
            grad = np.zeros(original_shape, dtype=np.float64)
            if axis == 0:
                np.add.at(grad, indices, upstream)
            else:
                moved_grad = np.moveaxis(grad, axis, 0)
                moved_up = np.moveaxis(upstream, axis, 0)
                np.add.at(moved_grad, indices, moved_up)
            return (grad,)

        return self._make(out_data, (self,), backward_fn)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        original_shape = self.shape

        def backward_fn(upstream: np.ndarray):
            grad = upstream
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            return (np.broadcast_to(grad, original_shape).copy(),)

        return self._make(out_data, (self,), backward_fn)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        original_shape = self.shape
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([original_shape[a] for a in axes]))

        def backward_fn(upstream: np.ndarray):
            grad = upstream
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            return (np.broadcast_to(grad, original_shape).copy() / count,)

        return self._make(out_data, (self,), backward_fn)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward_fn(upstream: np.ndarray):
            if axis is None:
                mask = (self.data == self.data.max()).astype(np.float64)
                mask /= mask.sum()
                return (mask * upstream,)
            expanded = out_data if keepdims else np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            grad = upstream if keepdims else np.expand_dims(upstream, axis=axis)
            return (mask * grad,)

        return self._make(out_data, (self,), backward_fn)

    # ------------------------------------------------------------------ #
    # Elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward_fn(upstream: np.ndarray):
            return (upstream * out_data,)

        return self._make(out_data, (self,), backward_fn)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward_fn(upstream: np.ndarray):
            return (upstream / self.data,)

        return self._make(out_data, (self,), backward_fn)

    def sqrt(self) -> "Tensor":
        return self.__pow__(0.5)

    def clip(self, min_value: Optional[float] = None, max_value: Optional[float] = None) -> "Tensor":
        out_data = np.clip(self.data, min_value, max_value)

        def backward_fn(upstream: np.ndarray):
            mask = np.ones_like(self.data)
            if min_value is not None:
                mask = mask * (self.data >= min_value)
            if max_value is not None:
                mask = mask * (self.data <= max_value)
            return (upstream * mask,)

        return self._make(out_data, (self,), backward_fn)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward_fn(upstream: np.ndarray):
            return (upstream * (self.data > 0.0),)

        return self._make(out_data, (self,), backward_fn)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward_fn(upstream: np.ndarray):
            return (upstream * (1.0 - out_data ** 2),)

        return self._make(out_data, (self,), backward_fn)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward_fn(upstream: np.ndarray):
            return (upstream * out_data * (1.0 - out_data),)

        return self._make(out_data, (self,), backward_fn)

    # ------------------------------------------------------------------ #
    # Static constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(
        shape: Union[int, Tuple[int, ...]],
        scale: float = 1.0,
        requires_grad: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> "Tensor":
        generator = rng if rng is not None else np.random.default_rng()
        return Tensor(generator.normal(0.0, scale, size=shape), requires_grad=requires_grad)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._ensure(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward_fn(upstream: np.ndarray):
            pieces = np.split(upstream, len(tensors), axis=axis)
            return tuple(np.squeeze(piece, axis=axis) for piece in pieces)

        return Tensor._make(out_data, tensors, backward_fn)

    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._ensure(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        boundaries = np.cumsum(sizes)[:-1]

        def backward_fn(upstream: np.ndarray):
            pieces = np.split(upstream, boundaries, axis=axis)
            return tuple(pieces)

        return Tensor._make(out_data, tensors, backward_fn)
