"""Functional operations built from :class:`~repro.autograd.Tensor` primitives.

These are the higher-level differentiable building blocks that GARCIA and the
baselines use repeatedly: softmax families, L2 normalisation, cosine
similarity matrices and the two loss primitives the paper relies on (binary
cross entropy for fine-tuning, InfoNCE for every contrastive granularity).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.autograd.tensor import ArrayLike, Tensor

EPSILON = 1e-12


def _ensure(value: Union[Tensor, ArrayLike]) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return _ensure(x).relu()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return _ensure(x).tanh()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return _ensure(x).sigmoid()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    x = _ensure(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    x = _ensure(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def l2_normalize(x: Tensor, axis: int = -1) -> Tensor:
    """Normalise ``x`` to unit L2 norm along ``axis``."""
    x = _ensure(x)
    norm = ((x * x).sum(axis=axis, keepdims=True) + EPSILON) ** 0.5
    return x / norm


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Cosine similarity between matching rows of ``a`` and ``b``."""
    a_norm = l2_normalize(_ensure(a), axis=axis)
    b_norm = l2_normalize(_ensure(b), axis=axis)
    return (a_norm * b_norm).sum(axis=axis)


def cosine_similarity_matrix(a: Tensor, b: Tensor) -> Tensor:
    """All-pairs cosine similarity: ``out[i, j] = cos(a_i, b_j)``."""
    a_norm = l2_normalize(_ensure(a), axis=-1)
    b_norm = l2_normalize(_ensure(b), axis=-1)
    return a_norm @ b_norm.transpose()


def binary_cross_entropy(predictions: Tensor, targets: Union[Tensor, ArrayLike]) -> Tensor:
    """Mean binary cross entropy between probabilities and 0/1 targets.

    This is the fine-tuning objective of GARCIA (Eq. 13 in the paper).
    """
    predictions = _ensure(predictions).clip(EPSILON, 1.0 - EPSILON)
    targets = _ensure(targets)
    losses = -(targets * predictions.log() + (1.0 - targets) * (1.0 - predictions).log())
    return losses.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: Union[Tensor, ArrayLike]) -> Tensor:
    """Mean BCE computed from raw logits (numerically stable formulation).

    Uses ``max(x, 0) - x * y + log(1 + exp(-|x|))`` which never exponentiates
    a large positive number.
    """
    logits = _ensure(logits)
    targets = _ensure(targets)
    abs_logits = logits.relu() + (-logits).relu()
    losses = logits.relu() - logits * targets + ((-abs_logits).exp() + 1.0).log()
    return losses.mean()


def info_nce(
    anchors: Tensor,
    positives: Tensor,
    negatives: Optional[Tensor] = None,
    temperature: float = 0.1,
) -> Tensor:
    """InfoNCE loss with cosine-similarity scores.

    ``anchors`` and ``positives`` are aligned ``(n, d)`` matrices: row ``i`` of
    ``positives`` is the positive sample for row ``i`` of ``anchors``.  If
    ``negatives`` is omitted the loss uses the standard in-batch strategy: all
    other rows of ``positives`` serve as negatives for each anchor.  If
    ``negatives`` is provided (``(m, d)``), the candidate set for every anchor
    is its own positive plus every row of ``negatives``.

    This single primitive implements Eq. 4, 5, 7 and 9 of the paper, which all
    share the ``-log softmax(cos/τ)`` structure and differ only in how the
    anchor / positive / negative sets are constructed.
    """
    anchors = l2_normalize(_ensure(anchors), axis=-1)
    positives = l2_normalize(_ensure(positives), axis=-1)

    if negatives is None:
        logits = (anchors @ positives.transpose()) / temperature
        log_probs = log_softmax(logits, axis=-1)
        n = anchors.shape[0]
        diagonal = log_probs[np.arange(n), np.arange(n)]
        return -diagonal.mean()

    negatives = l2_normalize(_ensure(negatives), axis=-1)
    positive_logits = (anchors * positives).sum(axis=-1, keepdims=True) / temperature
    negative_logits = (anchors @ negatives.transpose()) / temperature
    logits = Tensor.concat([positive_logits, negative_logits], axis=1)
    log_probs = log_softmax(logits, axis=-1)
    return -log_probs[:, 0].mean()


def mse(predictions: Tensor, targets: Union[Tensor, ArrayLike]) -> Tensor:
    """Mean squared error (used by a few auxiliary tests / sanity checks)."""
    predictions = _ensure(predictions)
    targets = _ensure(targets)
    diff = predictions - targets
    return (diff * diff).mean()


def dropout(x: Tensor, rate: float, rng: Optional[np.random.Generator] = None, training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``rate`` is 0."""
    if not training or rate <= 0.0:
        return _ensure(x)
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    generator = rng if rng is not None else np.random.default_rng()
    x = _ensure(x)
    mask = (generator.random(x.shape) >= rate).astype(np.float64) / (1.0 - rate)
    return x * Tensor(mask)
