"""End-to-end scenario preparation.

A *scenario* bundles everything the models and experiments need for one
dataset: the generated data, its chronological splits, the head/tail query
partition, the service-search graph, the intention forest and the ground-truth
click oracle used by the online A/B simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.data.schema import ServiceSearchDataset
from repro.data.splits import DataSplits, HeadTailSplit, chronological_split, head_tail_split
from repro.data.synthetic import ClickOracle, SyntheticConfig, SyntheticDataGenerator
from repro.graph.builder import GraphBuildConfig, GraphBuilder
from repro.graph.intention_tree import IntentionForest
from repro.graph.search_graph import ServiceSearchGraph


@dataclass
class Scenario:
    """One fully-prepared service-search scenario."""

    dataset: ServiceSearchDataset
    splits: DataSplits
    head_tail: HeadTailSplit
    graph: ServiceSearchGraph
    forest: IntentionForest
    oracle: ClickOracle

    @property
    def name(self) -> str:
        return self.dataset.name


def prepare_scenario(
    config: SyntheticConfig,
    validation_fraction: float = 0.1,
    test_fraction: float = 0.1,
    head_fraction: Optional[float] = None,
    graph_config: Optional[GraphBuildConfig] = None,
) -> Scenario:
    """Generate a dataset and derive splits, graph and intention forest.

    Parameters
    ----------
    config:
        Synthetic dataset configuration (see :mod:`repro.data.industrial` and
        :mod:`repro.data.amazon` for the paper's dataset presets).
    validation_fraction, test_fraction:
        Chronological split sizes.
    head_fraction:
        Fraction of queries treated as head; defaults to the generator's own
        ``head_fraction`` so the data-generation bias and the modelling split
        agree.
    graph_config:
        Optional overrides for the graph construction conditions.
    """
    generator = SyntheticDataGenerator(config)
    dataset = generator.generate()
    splits = chronological_split(
        dataset, validation_fraction=validation_fraction, test_fraction=test_fraction
    )
    fraction = head_fraction if head_fraction is not None else config.head_fraction
    head_tail = head_tail_split(dataset, head_fraction=fraction)
    builder = GraphBuilder(graph_config)
    graph = builder.build(dataset, splits.train, head_tail)
    forest = IntentionForest.from_dataset(dataset)
    return Scenario(
        dataset=dataset,
        splits=splits,
        head_tail=head_tail,
        graph=graph,
        forest=forest,
        oracle=generator.oracle,
    )
