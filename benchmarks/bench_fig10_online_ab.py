"""Benchmark: regenerate Fig. 10 (online A/B test, GARCIA vs deployed baseline).

Paper shape to reproduce: GARCIA's bucket shows a positive relative CTR and
Valid-CTR improvement on every day of the week-long test (+0.79 pp CTR and
+0.60 pp Valid CTR aggregated in the paper).
"""

import numpy as np

from benchmarks.conftest import report_result
from repro.experiments import fig10_online_ab


def test_fig10_online_ab_test(benchmark, bench_settings):
    result = benchmark.pedantic(
        lambda: fig10_online_ab.run(
            bench_settings, baseline_model="KGAT", num_days=7, sessions_per_day=500, top_k=5
        ),
        rounds=1,
        iterations=1,
    )
    report_result(result)
    assert len(result.rows) == 7
    improvements = result.series["ctr_improvement_pct"]
    assert all(np.isfinite(value) for value in improvements)
    assert all(np.isfinite(value) for value in result.series["valid_ctr_improvement_pct"])
    # At tiny bench scale the day-level sign fluctuates with the training
    # schedule and seed (see EXPERIMENTS.md); the structural check here is
    # that both buckets received traffic and the improvement series is sane.
    assert all(abs(value) < 100.0 for value in improvements)
