"""Benchmark: regenerate Fig. 10 (online A/B test, GARCIA vs deployed baseline).

Paper shape to reproduce: GARCIA's bucket shows a positive relative CTR and
Valid-CTR improvement on every day of the week-long test (+0.79 pp CTR and
+0.60 pp Valid CTR aggregated in the paper).

Runnable two ways with identical semantics: under pytest-benchmark (the
tracked full-scale path) or standalone with the uniform bench flags::

    python -m benchmarks.bench_fig10_online_ab [--smoke] [--seed N] [--out P]

The standalone path is what the CI ``bench-smoke`` job could drive; its
gates are structural (seven finite improvement rows at full scale, three in
``--smoke``) because at tiny training scale the day-level sign fluctuates
with the schedule and seed (see EXPERIMENTS.md).  For the bucket test
replayed *through the serving stack* — with per-bucket latency and cost in
the same run — see ``benchmarks/bench_gateway_ab.py``.
"""

import numpy as np

from benchmarks.bench_args import parse_bench_args, require, write_json
from repro.eval.reporting import format_float_table
from repro.experiments import fig10_online_ab
from repro.experiments.common import ExperimentSettings

#: Full scale: the pytest-benchmark workload (and the standalone default).
FULL = dict(num_days=7, sessions_per_day=500, top_k=5,
            pretrain_epochs=2, finetune_epochs=4)
#: Smoke scale: a per-PR gate — fewer days, lighter training.
SMOKE = dict(num_days=3, sessions_per_day=200, top_k=5,
             pretrain_epochs=1, finetune_epochs=2)


def run_experiment(params: dict, seed: int = 0, settings=None):
    settings = settings if settings is not None else ExperimentSettings(
        scale="tiny",
        seed=seed,
        pretrain_epochs=params["pretrain_epochs"],
        finetune_epochs=params["finetune_epochs"],
    )
    return fig10_online_ab.run(
        settings,
        baseline_model="KGAT",
        num_days=params["num_days"],
        sessions_per_day=params["sessions_per_day"],
        top_k=params["top_k"],
    )


def test_fig10_online_ab_test(benchmark, bench_settings):
    from benchmarks.conftest import report_result

    result = benchmark.pedantic(
        lambda: run_experiment(FULL, settings=bench_settings),
        rounds=1,
        iterations=1,
    )
    report_result(result)
    assert len(result.rows) == 7
    improvements = result.series["ctr_improvement_pct"]
    assert all(np.isfinite(value) for value in improvements)
    assert all(np.isfinite(value) for value in result.series["valid_ctr_improvement_pct"])
    # At tiny bench scale the day-level sign fluctuates with the training
    # schedule and seed (see EXPERIMENTS.md); the structural check here is
    # that both buckets received traffic and the improvement series is sane.
    assert all(abs(value) < 100.0 for value in improvements)


def main(argv=None):
    args = parse_bench_args("fig10_online_ab", __doc__, argv)
    params = SMOKE if args.smoke else FULL
    result = run_experiment(params, seed=args.seed)
    label = "smoke" if args.smoke else "full"
    print(format_float_table(
        result.rows,
        title=f"{result.title} ({label}: {params['sessions_per_day']} "
              f"sessions/day x {params['num_days']} days)",
    ))
    if result.notes:
        print(f"notes: {result.notes}")
    payload = {
        "workload": dict(params),
        "seed": args.seed,
        "smoke": args.smoke,
        "rows": result.rows,
        "series": result.series,
        "notes": result.notes,
    }
    write_json(args.out, payload)
    print(f"wrote {args.out}")

    improvements = result.series["ctr_improvement_pct"]
    valid = result.series["valid_ctr_improvement_pct"]
    require(len(result.rows) == params["num_days"],
            f"expected {params['num_days']} daily rows, got {len(result.rows)}")
    require(all(np.isfinite(value) for value in improvements + valid),
            "improvement series must be finite (both buckets saw traffic)")
    require(all(abs(value) < 100.0 for value in improvements),
            "daily CTR improvement out of the sane range for this scale")
    print("bench gates passed")


if __name__ == "__main__":
    main()
