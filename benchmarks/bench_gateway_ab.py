"""Benchmark: the gateway-backed online A/B test at serving scale.

The paper's Fig. 10 evidence is a week-long bucket test on live traffic.
This bench replays that test *through the serving stack*
(:mod:`repro.serving.abtest`): both buckets are trained models deployed
behind their own gateway arm (control: the baseline served by an exact
scan; treatment: GARCIA served through the IVF index), sessions are hashed
deterministically into a 90/10 control/treatment split, and a
day-partitioned Zipf/Poisson stream flows open-loop through
``search_async`` with every request tagged by its bucket.  One run reports
quality (daily CTR / Valid-CTR improvement) and serving cost (per-bucket
QPS, p50/p95/p99, deadline misses, shed sessions) from the same traffic.

Full scale: 5 000 sessions/day for 7 days (35 000 routed sessions), the
tracked ``benchmarks/results/gateway_ab.json`` workload.

Runnable standalone with the uniform bench flags::

    python -m benchmarks.bench_gateway_ab [--smoke] [--seed N] [--out P]

``--smoke`` is the CI gate: fewer days/sessions, the same structural
floors — both buckets must receive traffic, the per-bucket telemetry must
sum to the gateway totals, bucket assignment must be reproducible from the
seed, and the CTR improvement series must be finite.
"""

from __future__ import annotations

import hashlib

import numpy as np

from benchmarks.bench_args import parse_bench_args, require, write_json
from repro.eval.reporting import format_float_table
from repro.experiments.common import ExperimentSettings, build_model, scenario_for, train_model
from repro.serving.abtest import (
    ABExperimentConfig,
    BucketRouter,
    OnlineABExperiment,
    close_arms,
)
from repro.serving.gateway import deploy_gateway

#: Full scale: the tracked results/gateway_ab.json workload (Fig. 10 shape:
#: one week of bucketed traffic, a 90/10 split like a production holdback).
FULL = dict(
    dataset="Sep. A",
    baseline_model="KGAT",
    num_days=7,
    sessions_per_day=5_000,
    top_k=5,
    treatment_fraction=0.1,
    rate_qps=4_000.0,
    pretrain_epochs=2,
    finetune_epochs=4,
)
#: Smoke scale: small enough for a per-PR CI gate, large enough that both
#: buckets of a 90/10 split see hundreds of sessions.
SMOKE = dict(
    dataset="Sep. A",
    baseline_model="KGAT",
    num_days=3,
    sessions_per_day=600,
    top_k=5,
    treatment_fraction=0.1,
    rate_qps=2_000.0,
    pretrain_epochs=1,
    finetune_epochs=2,
)


def assignment_digest(router: BucketRouter, num_sessions: int) -> str:
    """Stable digest of the whole run's bucket assignment (rerun check)."""
    indices = router.assign_indices(np.arange(num_sessions, dtype=np.int64))
    return hashlib.sha256(indices.astype(np.uint8).tobytes()).hexdigest()


def build_router(params: dict, seed: int) -> tuple:
    """Train both buckets' models and deploy them behind gateway arms."""
    settings = ExperimentSettings(
        scale="tiny",
        seed=seed,
        pretrain_epochs=params["pretrain_epochs"],
        finetune_epochs=params["finetune_epochs"],
    )
    scenario = scenario_for(params["dataset"], settings)
    baseline = build_model(params["baseline_model"], scenario, settings)
    train_model(baseline, scenario, settings)
    garcia = build_model("GARCIA", scenario, settings)
    train_model(garcia, scenario, settings)
    fraction = params["treatment_fraction"]
    arms = {}
    try:
        arms["control"] = deploy_gateway(baseline, index="exact",
                                         top_k=params["top_k"], cache_capacity=0)
        arms["treatment"] = deploy_gateway(garcia, index="ivf",
                                           top_k=params["top_k"], cache_capacity=0)
        router = BucketRouter(
            {"control": 1.0 - fraction, "treatment": fraction},
            arms=arms,
            salt=seed,
        )
    except BaseException:
        for gateway in arms.values():
            gateway.close()
        raise
    return scenario, router


def run_bench(params: dict, seed: int) -> dict:
    # Validate the experiment parameters before any gateway is deployed.
    config = ABExperimentConfig(
        num_days=params["num_days"],
        sessions_per_day=params["sessions_per_day"],
        top_k=params["top_k"],
        rate_qps=params["rate_qps"],
        seed=seed,
    )
    scenario, router = build_router(params, seed)
    try:
        experiment = OnlineABExperiment(scenario.dataset, scenario.oracle,
                                        router, config)
        report = experiment.run()
        # Gateway-level totals, gathered before the arms close (the
        # per-bucket sums are gated against these).
        totals = {"requests": 0.0, "deadline_misses": 0.0,
                  "overload_rejections": 0.0, "cancelled_requests": 0.0}
        for gateway in router.unique_arms():
            summary = gateway.summary()
            for key in totals:
                totals[key] += summary[key]
        num_sessions = params["num_days"] * params["sessions_per_day"]
        digest = assignment_digest(router, num_sessions)
        rerun_digest = assignment_digest(
            BucketRouter(dict(router.splits), salt=seed), num_sessions
        )
    finally:
        close_arms(router)
    payload = report.as_payload()
    payload["workload"] = dict(params)
    payload["seed"] = seed
    payload["gateway_totals"] = totals
    payload["assignment_sha256"] = digest
    payload["assignment_rerun_sha256"] = rerun_digest
    return payload


def main(argv=None):
    args = parse_bench_args("gateway_ab", __doc__, argv)
    params = SMOKE if args.smoke else FULL
    payload = run_bench(params, seed=args.seed)
    label = "smoke" if args.smoke else "full"
    print(format_float_table(
        payload["joint_rows"],
        title=(f"Gateway A/B ({label}): {params['sessions_per_day']} sessions/day "
               f"x {params['num_days']} days, "
               f"{1 - params['treatment_fraction']:.0%}/"
               f"{params['treatment_fraction']:.0%} split"),
    ))
    print("\n" + format_float_table(
        payload["cost_rows"], title="Per-bucket serving cost (one run)"))
    summary = payload["summary"]
    print(f"\nAggregated absolute gains: CTR {summary['absolute_ctr_gain_pp']:+.3f} pp, "
          f"Valid CTR {summary['absolute_valid_ctr_gain_pp']:+.3f} pp; "
          f"{int(summary['sessions_shed_total'])} of "
          f"{int(summary['sessions_total'])} sessions shed")
    payload["smoke"] = args.smoke
    write_json(args.out, payload)
    print(f"wrote {args.out}")

    # Structural gates (both scales): the experiment is only meaningful if
    # the split actually routed traffic to both buckets, the per-bucket
    # telemetry decomposes the gateway totals exactly, the hash-based
    # assignment reproduces from the seed, and the quality series is finite.
    sessions = payload["sessions"]
    require(all(sessions[bucket] > 0 for bucket in payload["buckets"]),
            f"every bucket must receive traffic (got {sessions})")
    cost = {row["bucket"]: row for row in payload["cost_rows"]}
    totals = payload["gateway_totals"]
    bucket_requests = sum(row.get("requests", 0.0) for row in cost.values())
    require(bucket_requests == totals["requests"],
            f"per-bucket telemetry must sum to gateway totals "
            f"({bucket_requests} vs {totals['requests']})")
    bucket_shed = sum(row.get("deadline_misses", 0.0)
                      + row.get("overload_rejections", 0.0)
                      for row in cost.values())
    require(bucket_shed == totals["deadline_misses"] + totals["overload_rejections"],
            "per-bucket shed counters must sum to gateway totals")
    require(payload["assignment_sha256"] == payload["assignment_rerun_sha256"],
            "bucket assignment must be identical across reruns at one seed")
    improvements = payload["ctr_improvement_pct"] + payload["valid_ctr_improvement_pct"]
    require(all(np.isfinite(value) for value in improvements),
            f"CTR improvement series must be finite (got {improvements})")
    require(all(np.isfinite(cost[bucket].get("p99_ms", float("nan")))
                and cost[bucket].get("qps", 0.0) > 0
                for bucket in payload["buckets"]),
            "every bucket must report finite p99 and positive QPS")
    print("bench gates passed")


if __name__ == "__main__":
    main()
