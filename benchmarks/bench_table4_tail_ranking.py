"""Benchmark: regenerate Table IV (tail-query GAUC and NDCG@10, industrial data).

Paper shape to reproduce: every graph model improves over Wide&Deep on the
tail slice, and GARCIA posts the largest improvement ratio over LightGCN.
"""

import numpy as np

from benchmarks.conftest import report_result
from repro.experiments import table4_tail_ranking


def test_table4_tail_gauc_ndcg(benchmark, bench_settings):
    result = benchmark.pedantic(
        lambda: table4_tail_ranking.run(bench_settings), rounds=1, iterations=1
    )
    report_result(result)
    assert len(result.rows) == 3 * 6  # three industrial windows × six models
    for row in result.rows:
        if row["model"] == "LightGCN":
            assert row["gauc_vs_lightgcn_pct"] == 0.0
        assert np.isfinite(row["tail_gauc"]) or np.isnan(row["tail_gauc"])
