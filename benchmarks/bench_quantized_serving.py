"""Benchmark: quantized service tables vs fp serving at a 12k catalogue.

The ROADMAP's memory argument: at production catalogue sizes the *resident
table size* — not scoring compute — caps how many services one shard can
hold, so the quantized subsystem (:mod:`repro.serving.quant`) must cut
memory 4-16x without giving up the latency win the gateway already banked.
This bench pushes the same Zipf request stream through

* the exact fp scan and the fp IVF index (the PR-1 baselines),
* the int8 exact scan — both the end-to-end integer scoring path
  (``scoring="int"``, the default) and the float-folded path it replaced
  (``int8_float``), so the integer win is measured, not assumed,
* the IVF-PQ index (balanced coarse cells + PQ residual codes + int8
  refinement) at three compression levels (``num_subspaces`` 4 / 8 / 16),
  and
* IVF-PQ with the OPQ learned rotation (``ivfpq_m8_opq``): same byte
  budget as ``ivfpq_m8``, rotated codebooks, a deeper shortlist
  (``refine_factor=12``) trimmed back adaptively by the ADC-margin shrink,

reporting QPS, p50/p99 latency, recall@10 and shortlist-shrink counts per
mode, plus a service-table compression report (bytes + compression vs the
seed's float64 and the store's float32 snapshots, recall@10 of a pure
table scan).

Expected shape: int8 holds recall@10 >= 0.95 at 4x (8x vs float64) less
table memory and the integer path at least matches the float-folded QPS;
IVF-PQ matches or beats fp IVF QPS while its shippable codes are an order
of magnitude smaller than the fp table; the OPQ mode beats the plain m8
recall at IVF-level QPS.  Results are printed as tables and persisted to
``benchmarks/results/quantized_serving.json``.

Runnable standalone with the uniform bench flags::

    python -m benchmarks.bench_quantized_serving [--smoke] [--seed N] [--out P]

``--smoke`` is the CI perf gate: reduced catalogue, one IVF-PQ compression
level (plus its OPQ variant), hard recall floors (int8 >= 0.95, IVF-PQ >=
0.85, OPQ >= plain m8), the deterministic compression-ratio and
shortlist-parity gates, and one wall-clock ordering (integer int8 path >=
1.0x the float-folded path, with one retry to ride out noisy neighbours).
"""

import json

import numpy as np

from benchmarks.bench_args import RESULTS_DIR, parse_bench_args, require, write_json
from benchmarks.serving_load import drive, make_workload
from repro.eval.reporting import format_float_table
from repro.eval.serving_metrics import (
    compression_report,
    load_test_rows,
    recall_at_k,
    summarize_gateway,
)
from repro.serving.gateway import ExactIndex, ServingGateway, VersionedEmbeddingStore
from repro.serving.quant import quantize_int8, quantize_pq

FULL = dict(num_queries=2_000, num_services=12_000, dim=48,
            num_requests=4_096, batch_size=64, top_k=10)
SMOKE = dict(num_queries=500, num_services=4_000, dim=48,
             num_requests=1_024, batch_size=64, top_k=10)

MODES = {
    "exact": dict(index="exact", index_params=None),
    "ivf": dict(index="ivf", index_params=None),
    "int8": dict(index="int8", index_params=None),
    "int8_float": dict(index="int8", index_params=dict(scoring="float")),
    "ivfpq_m4": dict(index="ivfpq", index_params=dict(num_subspaces=4)),
    "ivfpq_m8": dict(index="ivfpq", index_params=dict(num_subspaces=8)),
    "ivfpq_m8_opq": dict(index="ivfpq",
                         index_params=dict(num_subspaces=8, rotation="opq",
                                           refine_factor=12)),
    "ivfpq_m16": dict(index="ivfpq", index_params=dict(num_subspaces=16)),
}
#: The smoke gate drops the m4/m16 sweep: one compression level bounds the
#: CI minutes while the m8 floor still guards the PQ pipeline end to end.
#: ``int8_float`` and ``ivfpq_m8_opq`` stay in so the integer-vs-float and
#: OPQ-vs-plain gates run in CI (and so smoke/full payloads share keys).
SMOKE_MODES = ("exact", "ivf", "int8", "int8_float", "ivfpq_m8",
               "ivfpq_m8_opq")


def run_load_test(params=None, seed=0, modes=None):
    params = params or FULL
    queries, services, stream = make_workload(params, seed)
    batch_size, top_k = params["batch_size"], params["top_k"]
    summaries = []
    for mode in modes or MODES:
        config = MODES[mode]
        store = VersionedEmbeddingStore(queries, services, num_shards=4)
        gateway = ServingGateway(
            store, index=config["index"], index_params=config["index_params"],
            top_k=top_k, max_batch_size=batch_size, cache_capacity=0,
        )
        elapsed = drive(gateway, stream, batch_size)
        gateway.recall_probe(k=top_k,
                             num_queries=min(512, params["num_queries"]),
                             seed=seed + 2)
        index_bytes = gateway._index_for(store.snapshot()).nbytes
        summaries.append(summarize_gateway(
            mode, gateway, elapsed_s=elapsed,
        ))
        summaries[-1].extras["index_mbytes"] = index_bytes / 2 ** 20
        summaries[-1].extras["shortlist_kept"] = float(
            gateway.telemetry.shortlist_kept)
        summaries[-1].extras["shortlist_candidates"] = float(
            gateway.telemetry.shortlist_candidates)
    return summaries


def shortlist_parity_check(params, seed, mode="ivfpq_m8_opq", num_queries=256):
    """True iff the shipped shrink margin never drops a true top-k candidate.

    Searches one IVF-PQ index twice over the same queries — once with the
    ADC-margin shortlist shrink at its shipped default, once with the shrink
    disabled — and demands identical top-k *sets* per query.  Deterministic
    (no wall clock), so it gates in smoke.
    """
    from repro.serving.quant.ivfpq import IVFPQIndex

    queries, services, _ = make_workload(params, seed)
    config = dict(MODES[mode]["index_params"])
    index = IVFPQIndex(**config).build(services)
    probe, top_k = queries[:num_queries], params["top_k"]
    shrunk_ids, _ = index.search(probe, top_k)
    index.take_shortlist_stats()
    index.shrink_margin = None
    full_ids, _ = index.search(probe, top_k)
    return bool(recall_at_k(shrunk_ids, full_ids, top_k) == 1.0)


def adc_recall_by_init(queries, services, top_k=10, num_subspaces=8):
    """Raw (un-refined) ADC scan recall per codebook init, same code budget.

    The ROADMAP's "smarter PQ codebooks" yardstick: recall of a pure ADC
    full-table scan with the PR-2 uniform-random init vs the kmeans++
    D²-weighted seeding, everything else identical.
    """
    probe = queries[:512]
    exact_ids, _ = ExactIndex().build(services).search(probe, top_k)
    recalls = {}
    for init in ("random", "kmeans++"):
        table = quantize_pq(services, num_subspaces=num_subspaces, init=init)
        ids = np.argsort(-table.scores(probe), axis=1)[:, :top_k]
        recalls[init] = recall_at_k(ids, exact_ids, top_k)
    return recalls


def table_compression_rows(queries, services, top_k=10, subspaces=(4, 8, 16)):
    """Service-table memory vs recall of a pure (gateway-free) table scan."""
    probe = queries[:512]
    exact_ids, _ = ExactIndex().build(services).search(probe, top_k)
    int8_table = quantize_int8(services)
    pq_tables = {
        f"pq_m{m}": quantize_pq(services, num_subspaces=m) for m in subspaces
    }
    variant_ids = {
        "int8": np.argsort(-int8_table.scores(probe), axis=1)[:, :top_k],
    }
    for label, table in pq_tables.items():
        variant_ids[label] = np.argsort(-table.scores(probe), axis=1)[:, :top_k]
    variants = {"float32": services.astype(np.float32), "int8": int8_table}
    variants.update(pq_tables)
    return compression_report(
        services.astype(np.float64), variants,
        exact_ids=exact_ids, variant_ids=variant_ids, k=top_k,
    )


def build_payload(params, rows, table_rows, by_mode, by_table, seed, smoke,
                  adc_by_init=None, shortlist_parity=None):
    payload = {
        "workload": dict(params, distribution="zipf(1.1)"),
        "seed": seed,
        "smoke": smoke,
        "results": rows,
        "service_table_compression": table_rows,
        "int8_compression_vs_float64": by_table["int8"]["compression_x"],
        "int8_compression_vs_float32": (by_table["float32"]["bytes"]
                                        / by_table["int8"]["bytes"]),
    }
    if "ivf" in by_mode and "ivfpq_m8" in by_mode:
        payload["qps_ratio_ivfpq_m8_vs_ivf"] = (by_mode["ivfpq_m8"].qps
                                                / by_mode["ivf"].qps)
    if "int8" in by_mode and "int8_float" in by_mode:
        payload["qps_ratio_int8_int_vs_float"] = (by_mode["int8"].qps
                                                  / by_mode["int8_float"].qps)
    if "ivfpq_m8_opq" in by_mode and "ivfpq_m8" in by_mode:
        opq = by_mode["ivfpq_m8_opq"]
        payload["recall_delta_opq_vs_m8"] = (opq.recall_at_k
                                             - by_mode["ivfpq_m8"].recall_at_k)
        payload["qps_ratio_opq_vs_m8"] = opq.qps / by_mode["ivfpq_m8"].qps
        candidates = opq.extras.get("shortlist_candidates", 0.0)
        payload["opq_shortlist_keep_frac"] = (
            opq.extras["shortlist_kept"] / candidates if candidates else 1.0)
    if shortlist_parity is not None:
        payload["shortlist_shrink_parity_ok"] = bool(shortlist_parity)
    if adc_by_init is not None:
        payload["pq_m8_raw_adc_recall_by_init"] = adc_by_init
    return payload


def _qps_orderings_hold(by_mode):
    """The three wall-clock contracts the full bench asserts."""
    return (by_mode["ivfpq_m8"].qps >= by_mode["ivf"].qps
            and by_mode["int8"].qps >= by_mode["int8_float"].qps
            and by_mode["ivfpq_m8_opq"].qps >= by_mode["ivf"].qps)


def test_quantized_serving(benchmark):
    summaries = benchmark.pedantic(run_load_test, rounds=1, iterations=1)
    by_mode = {summary.mode: summary for summary in summaries}
    if not _qps_orderings_hold(by_mode):
        # Wall-clock orderings can lose to a noisy neighbour; one retry
        # separates a loaded machine from a real regression.
        summaries = run_load_test()
        by_mode = {summary.mode: summary for summary in summaries}
    rows = load_test_rows(summaries)
    print("\n" + format_float_table(
        rows, title=f"Quantized serving: {FULL['num_requests']} Zipf requests, "
                    f"{FULL['num_services']} services, dim {FULL['dim']}, "
                    f"K={FULL['top_k']}"
    ))

    queries, services, _ = make_workload(FULL, seed=0)
    table_rows = table_compression_rows(queries, services, top_k=FULL["top_k"])
    print("\n" + format_float_table(
        table_rows, title="Service-table compression (baseline float64, "
                          "full-table scan recall@10)"
    ))
    by_table = {row["table"]: row for row in table_rows}

    adc_by_init = adc_recall_by_init(queries, services, top_k=FULL["top_k"])
    print(f"\nRaw ADC recall@{FULL['top_k']} by codebook init: {adc_by_init}")
    parity = shortlist_parity_check(FULL, seed=0)

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = build_payload(FULL, rows, table_rows, by_mode, by_table,
                            seed=0, smoke=False, adc_by_init=adc_by_init,
                            shortlist_parity=parity)
    (RESULTS_DIR / "quantized_serving.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # The ROADMAP's memory contract: int8 cuts the service table >= 4x while
    # holding recall@10 >= 0.95; PQ compresses another 3-12x on top.
    assert by_table["int8"]["compression_x"] >= 4.0
    assert by_table["int8"]["recall_at_k"] >= 0.95
    assert by_mode["int8"].recall_at_k >= 0.95
    assert by_table["pq_m8"]["compression_x"] >= 16.0
    # The latency contract: scanning byte codes must not cost the ANN win —
    # IVF-PQ at least matches the fp IVF index on the same stream, and the
    # end-to-end integer int8 path at least matches the float-folded scan.
    assert by_mode["ivfpq_m8"].qps >= by_mode["ivf"].qps
    assert by_mode["int8"].qps >= by_mode["int8_float"].qps
    assert by_mode["ivfpq_m8"].recall_at_k >= 0.9
    assert by_mode["ivfpq_m16"].recall_at_k >= by_mode["ivfpq_m4"].recall_at_k
    # The OPQ contract: learned rotation + deeper (shrink-trimmed) shortlist
    # beats the PR-4 m8 baseline recall (0.957) at IVF-level QPS, and the
    # shrink never drops a true top-k candidate.
    assert by_mode["ivfpq_m8_opq"].recall_at_k > 0.957
    assert by_mode["ivfpq_m8_opq"].recall_at_k >= by_mode["ivfpq_m8"].recall_at_k
    assert by_mode["ivfpq_m8_opq"].qps >= by_mode["ivf"].qps
    assert parity


def main(argv=None):
    args = parse_bench_args("quantized_serving", __doc__, argv)
    params = SMOKE if args.smoke else FULL
    modes = SMOKE_MODES if args.smoke else tuple(MODES)
    subspaces = (8,) if args.smoke else (4, 8, 16)
    summaries = run_load_test(params, seed=args.seed, modes=modes)
    by_mode = {summary.mode: summary for summary in summaries}
    if by_mode["int8"].qps < by_mode["int8_float"].qps:
        # The only wall-clock gate in smoke; one retry separates a noisy
        # CI neighbour from a real integer-path regression.
        summaries = run_load_test(params, seed=args.seed, modes=modes)
        by_mode = {summary.mode: summary for summary in summaries}
    rows = load_test_rows(summaries)
    label = "smoke" if args.smoke else "full"
    print(format_float_table(
        rows, title=f"Quantized serving ({label}): "
                    f"{params['num_requests']} Zipf requests, "
                    f"{params['num_services']} services, K={params['top_k']}"
    ))
    queries, services, _ = make_workload(params, seed=args.seed)
    table_rows = table_compression_rows(queries, services,
                                        top_k=params["top_k"],
                                        subspaces=subspaces)
    print("\n" + format_float_table(
        table_rows, title="Service-table compression (baseline float64)"
    ))
    by_table = {row["table"]: row for row in table_rows}
    adc_by_init = adc_recall_by_init(queries, services, top_k=params["top_k"])
    print(f"\nRaw ADC recall@{params['top_k']} by codebook init: {adc_by_init}")
    parity = shortlist_parity_check(params, seed=args.seed)
    write_json(args.out, build_payload(params, rows, table_rows, by_mode,
                                       by_table, seed=args.seed,
                                       smoke=args.smoke,
                                       adc_by_init=adc_by_init,
                                       shortlist_parity=parity))
    print(f"wrote {args.out}")

    require(adc_by_init["kmeans++"] >= adc_by_init["random"] - 0.01,
            "kmeans++ init must not regress raw ADC recall vs random init "
            f"({adc_by_init['kmeans++']:.3f} vs {adc_by_init['random']:.3f})")
    require(by_table["int8"]["compression_x"] >= 4.0,
            "int8 must compress the fp64 table >= 4x")
    require(by_mode["int8"].recall_at_k >= 0.95,
            f"int8 recall {by_mode['int8'].recall_at_k:.3f} < 0.95")
    require(by_table["pq_m8"]["compression_x"] >= 16.0,
            "pq_m8 must compress the fp64 table >= 16x")
    require(by_mode["ivfpq_m8"].recall_at_k >= 0.85,
            f"IVF-PQ recall {by_mode['ivfpq_m8'].recall_at_k:.3f} < 0.85")
    require(by_mode["ivfpq_m8_opq"].recall_at_k
            >= by_mode["ivfpq_m8"].recall_at_k,
            "OPQ rotation must not regress IVF-PQ recall "
            f"({by_mode['ivfpq_m8_opq'].recall_at_k:.3f} vs "
            f"{by_mode['ivfpq_m8'].recall_at_k:.3f})")
    require(by_mode["int8"].qps >= by_mode["int8_float"].qps,
            "integer int8 scoring must at least match the float-folded path "
            f"({by_mode['int8'].qps:.0f} vs {by_mode['int8_float'].qps:.0f} "
            "qps after one retry)")
    require(parity, "shortlist shrink at the shipped margin dropped a true "
                    "top-k candidate")
    print("bench gates passed")


if __name__ == "__main__":
    main()
