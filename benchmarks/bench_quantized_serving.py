"""Benchmark: quantized service tables vs fp serving at a 12k catalogue.

The ROADMAP's memory argument: at production catalogue sizes the *resident
table size* — not scoring compute — caps how many services one shard can
hold, so the quantized subsystem (:mod:`repro.serving.quant`) must cut
memory 4-16x without giving up the latency win the gateway already banked.
This bench pushes the same Zipf request stream through

* the exact fp scan and the fp IVF index (the PR-1 baselines),
* the int8 exact scan (symmetric per-dimension scales), and
* the IVF-PQ index (balanced coarse cells + PQ residual codes + int8
  refinement) at three compression levels (``num_subspaces`` 4 / 8 / 16),

reporting QPS, p50/p99 latency and recall@10 per mode, plus a service-table
compression report (bytes + compression vs the seed's float64 and the
store's float32 snapshots, recall@10 of a pure table scan).

Expected shape: int8 holds recall@10 >= 0.95 at 4x (8x vs float64) less
table memory; IVF-PQ matches or beats fp IVF QPS while its shippable codes
are an order of magnitude smaller than the fp table.  Results are printed
as tables and persisted to ``benchmarks/results/quantized_serving.json``.

Runnable standalone with the uniform bench flags::

    python -m benchmarks.bench_quantized_serving [--smoke] [--seed N] [--out P]

``--smoke`` is the CI perf gate: reduced catalogue, one IVF-PQ compression
level, hard recall floors (int8 >= 0.95, IVF-PQ >= 0.85) and the
deterministic compression-ratio gates — no wall-clock ordering asserts.
"""

import json

import numpy as np

from benchmarks.bench_args import RESULTS_DIR, parse_bench_args, require, write_json
from benchmarks.serving_load import drive, make_workload
from repro.eval.reporting import format_float_table
from repro.eval.serving_metrics import (
    compression_report,
    load_test_rows,
    recall_at_k,
    summarize_gateway,
)
from repro.serving.gateway import ExactIndex, ServingGateway, VersionedEmbeddingStore
from repro.serving.quant import quantize_int8, quantize_pq

FULL = dict(num_queries=2_000, num_services=12_000, dim=48,
            num_requests=4_096, batch_size=64, top_k=10)
SMOKE = dict(num_queries=500, num_services=4_000, dim=48,
             num_requests=1_024, batch_size=64, top_k=10)

MODES = {
    "exact": dict(index="exact", index_params=None),
    "ivf": dict(index="ivf", index_params=None),
    "int8": dict(index="int8", index_params=None),
    "ivfpq_m4": dict(index="ivfpq", index_params=dict(num_subspaces=4)),
    "ivfpq_m8": dict(index="ivfpq", index_params=dict(num_subspaces=8)),
    "ivfpq_m16": dict(index="ivfpq", index_params=dict(num_subspaces=16)),
}
#: The smoke gate drops the m4/m16 sweep: one compression level bounds the
#: CI minutes while the m8 floor still guards the PQ pipeline end to end.
SMOKE_MODES = ("exact", "ivf", "int8", "ivfpq_m8")


def run_load_test(params=None, seed=0, modes=None):
    params = params or FULL
    queries, services, stream = make_workload(params, seed)
    batch_size, top_k = params["batch_size"], params["top_k"]
    summaries = []
    for mode in modes or MODES:
        config = MODES[mode]
        store = VersionedEmbeddingStore(queries, services, num_shards=4)
        gateway = ServingGateway(
            store, index=config["index"], index_params=config["index_params"],
            top_k=top_k, max_batch_size=batch_size, cache_capacity=0,
        )
        elapsed = drive(gateway, stream, batch_size)
        gateway.recall_probe(k=top_k,
                             num_queries=min(512, params["num_queries"]),
                             seed=seed + 2)
        index_bytes = gateway._index_for(store.snapshot()).nbytes
        summaries.append(summarize_gateway(
            mode, gateway, elapsed_s=elapsed,
        ))
        summaries[-1].extras["index_mbytes"] = index_bytes / 2 ** 20
    return summaries


def adc_recall_by_init(queries, services, top_k=10, num_subspaces=8):
    """Raw (un-refined) ADC scan recall per codebook init, same code budget.

    The ROADMAP's "smarter PQ codebooks" yardstick: recall of a pure ADC
    full-table scan with the PR-2 uniform-random init vs the kmeans++
    D²-weighted seeding, everything else identical.
    """
    probe = queries[:512]
    exact_ids, _ = ExactIndex().build(services).search(probe, top_k)
    recalls = {}
    for init in ("random", "kmeans++"):
        table = quantize_pq(services, num_subspaces=num_subspaces, init=init)
        ids = np.argsort(-table.scores(probe), axis=1)[:, :top_k]
        recalls[init] = recall_at_k(ids, exact_ids, top_k)
    return recalls


def table_compression_rows(queries, services, top_k=10, subspaces=(4, 8, 16)):
    """Service-table memory vs recall of a pure (gateway-free) table scan."""
    probe = queries[:512]
    exact_ids, _ = ExactIndex().build(services).search(probe, top_k)
    int8_table = quantize_int8(services)
    pq_tables = {
        f"pq_m{m}": quantize_pq(services, num_subspaces=m) for m in subspaces
    }
    variant_ids = {
        "int8": np.argsort(-int8_table.scores(probe), axis=1)[:, :top_k],
    }
    for label, table in pq_tables.items():
        variant_ids[label] = np.argsort(-table.scores(probe), axis=1)[:, :top_k]
    variants = {"float32": services.astype(np.float32), "int8": int8_table}
    variants.update(pq_tables)
    return compression_report(
        services.astype(np.float64), variants,
        exact_ids=exact_ids, variant_ids=variant_ids, k=top_k,
    )


def build_payload(params, rows, table_rows, by_mode, by_table, seed, smoke,
                  adc_by_init=None):
    payload = {
        "workload": dict(params, distribution="zipf(1.1)"),
        "seed": seed,
        "smoke": smoke,
        "results": rows,
        "service_table_compression": table_rows,
        "int8_compression_vs_float64": by_table["int8"]["compression_x"],
        "int8_compression_vs_float32": (by_table["float32"]["bytes"]
                                        / by_table["int8"]["bytes"]),
    }
    if "ivf" in by_mode and "ivfpq_m8" in by_mode:
        payload["qps_ratio_ivfpq_m8_vs_ivf"] = (by_mode["ivfpq_m8"].qps
                                                / by_mode["ivf"].qps)
    if adc_by_init is not None:
        payload["pq_m8_raw_adc_recall_by_init"] = adc_by_init
    return payload


def test_quantized_serving(benchmark):
    summaries = benchmark.pedantic(run_load_test, rounds=1, iterations=1)
    by_mode = {summary.mode: summary for summary in summaries}
    if by_mode["ivfpq_m8"].qps < by_mode["ivf"].qps:
        # Wall-clock orderings can lose to a noisy neighbour; one retry
        # separates a loaded machine from a real regression.
        summaries = run_load_test()
        by_mode = {summary.mode: summary for summary in summaries}
    rows = load_test_rows(summaries)
    print("\n" + format_float_table(
        rows, title=f"Quantized serving: {FULL['num_requests']} Zipf requests, "
                    f"{FULL['num_services']} services, dim {FULL['dim']}, "
                    f"K={FULL['top_k']}"
    ))

    queries, services, _ = make_workload(FULL, seed=0)
    table_rows = table_compression_rows(queries, services, top_k=FULL["top_k"])
    print("\n" + format_float_table(
        table_rows, title="Service-table compression (baseline float64, "
                          "full-table scan recall@10)"
    ))
    by_table = {row["table"]: row for row in table_rows}

    adc_by_init = adc_recall_by_init(queries, services, top_k=FULL["top_k"])
    print(f"\nRaw ADC recall@{FULL['top_k']} by codebook init: {adc_by_init}")

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = build_payload(FULL, rows, table_rows, by_mode, by_table,
                            seed=0, smoke=False, adc_by_init=adc_by_init)
    (RESULTS_DIR / "quantized_serving.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # The ROADMAP's memory contract: int8 cuts the service table >= 4x while
    # holding recall@10 >= 0.95; PQ compresses another 3-12x on top.
    assert by_table["int8"]["compression_x"] >= 4.0
    assert by_table["int8"]["recall_at_k"] >= 0.95
    assert by_mode["int8"].recall_at_k >= 0.95
    assert by_table["pq_m8"]["compression_x"] >= 16.0
    # The latency contract: scanning byte codes must not cost the ANN win —
    # IVF-PQ at least matches the fp IVF index on the same stream.
    assert by_mode["ivfpq_m8"].qps >= by_mode["ivf"].qps
    assert by_mode["ivfpq_m8"].recall_at_k >= 0.9
    assert by_mode["ivfpq_m16"].recall_at_k >= by_mode["ivfpq_m4"].recall_at_k


def main(argv=None):
    args = parse_bench_args("quantized_serving", __doc__, argv)
    params = SMOKE if args.smoke else FULL
    modes = SMOKE_MODES if args.smoke else tuple(MODES)
    subspaces = (8,) if args.smoke else (4, 8, 16)
    summaries = run_load_test(params, seed=args.seed, modes=modes)
    by_mode = {summary.mode: summary for summary in summaries}
    rows = load_test_rows(summaries)
    label = "smoke" if args.smoke else "full"
    print(format_float_table(
        rows, title=f"Quantized serving ({label}): "
                    f"{params['num_requests']} Zipf requests, "
                    f"{params['num_services']} services, K={params['top_k']}"
    ))
    queries, services, _ = make_workload(params, seed=args.seed)
    table_rows = table_compression_rows(queries, services,
                                        top_k=params["top_k"],
                                        subspaces=subspaces)
    print("\n" + format_float_table(
        table_rows, title="Service-table compression (baseline float64)"
    ))
    by_table = {row["table"]: row for row in table_rows}
    adc_by_init = adc_recall_by_init(queries, services, top_k=params["top_k"])
    print(f"\nRaw ADC recall@{params['top_k']} by codebook init: {adc_by_init}")
    write_json(args.out, build_payload(params, rows, table_rows, by_mode,
                                       by_table, seed=args.seed,
                                       smoke=args.smoke,
                                       adc_by_init=adc_by_init))
    print(f"wrote {args.out}")

    require(adc_by_init["kmeans++"] >= adc_by_init["random"] - 0.01,
            "kmeans++ init must not regress raw ADC recall vs random init "
            f"({adc_by_init['kmeans++']:.3f} vs {adc_by_init['random']:.3f})")
    require(by_table["int8"]["compression_x"] >= 4.0,
            "int8 must compress the fp64 table >= 4x")
    require(by_mode["int8"].recall_at_k >= 0.95,
            f"int8 recall {by_mode['int8'].recall_at_k:.3f} < 0.95")
    require(by_table["pq_m8"]["compression_x"] >= 16.0,
            "pq_m8 must compress the fp64 table >= 16x")
    require(by_mode["ivfpq_m8"].recall_at_k >= 0.85,
            f"IVF-PQ recall {by_mode['ivfpq_m8'].recall_at_k:.3f} < 0.85")
    print("bench gates passed")


if __name__ == "__main__":
    main()
