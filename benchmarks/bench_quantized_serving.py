"""Benchmark: quantized service tables vs fp serving at a 12k catalogue.

The ROADMAP's memory argument: at production catalogue sizes the *resident
table size* — not scoring compute — caps how many services one shard can
hold, so the quantized subsystem (:mod:`repro.serving.quant`) must cut
memory 4-16x without giving up the latency win the gateway already banked.
This bench pushes the same Zipf request stream through

* the exact fp scan and the fp IVF index (the PR-1 baselines),
* the int8 exact scan (symmetric per-dimension scales), and
* the IVF-PQ index (balanced coarse cells + PQ residual codes + int8
  refinement) at three compression levels (``num_subspaces`` 4 / 8 / 16),

reporting QPS, p50/p99 latency and recall@10 per mode, plus a service-table
compression report (bytes + compression vs the seed's float64 and the
store's float32 snapshots, recall@10 of a pure table scan).

Expected shape: int8 holds recall@10 >= 0.95 at 4x (8x vs float64) less
table memory; IVF-PQ matches or beats fp IVF QPS while its shippable codes
are an order of magnitude smaller than the fp table.  Results are printed
as tables and persisted to ``benchmarks/results/quantized_serving.json``.
"""

import json
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR
from repro.eval.reporting import format_float_table
from repro.eval.serving_metrics import (
    compression_report,
    load_test_rows,
    recall_at_k,
    summarize_gateway,
)
from repro.serving.gateway import (
    ExactIndex,
    ServingGateway,
    VersionedEmbeddingStore,
    clustered_embeddings,
    zipf_query_ids,
)
from repro.serving.quant import quantize_int8, quantize_pq

NUM_QUERIES = 2_000
NUM_SERVICES = 12_000
DIM = 48
NUM_REQUESTS = 4_096
BATCH_SIZE = 64
TOP_K = 10

MODES = {
    "exact": dict(index="exact", index_params=None),
    "ivf": dict(index="ivf", index_params=None),
    "int8": dict(index="int8", index_params=None),
    "ivfpq_m4": dict(index="ivfpq", index_params=dict(num_subspaces=4)),
    "ivfpq_m8": dict(index="ivfpq", index_params=dict(num_subspaces=8)),
    "ivfpq_m16": dict(index="ivfpq", index_params=dict(num_subspaces=16)),
}


def run_load_test():
    queries, services = clustered_embeddings(
        NUM_QUERIES, NUM_SERVICES, DIM, num_clusters=16, spread=0.2, seed=0
    )
    stream = zipf_query_ids(NUM_QUERIES, NUM_REQUESTS, exponent=1.1, seed=1)
    summaries = []
    for mode, config in MODES.items():
        store = VersionedEmbeddingStore(queries, services, num_shards=4)
        gateway = ServingGateway(
            store, index=config["index"], index_params=config["index_params"],
            top_k=TOP_K, max_batch_size=BATCH_SIZE, cache_capacity=0,
        )
        started = time.perf_counter()
        for offset in range(0, len(stream), BATCH_SIZE):
            handles = [gateway.submit(int(query_id)) for query_id in
                       stream[offset:offset + BATCH_SIZE]]
            gateway.flush()
            for handle in handles:
                handle.result(0)
        elapsed = time.perf_counter() - started
        gateway.recall_probe(k=TOP_K, num_queries=512, seed=2)
        index_bytes = gateway._index_for(store.snapshot()).nbytes
        summaries.append(summarize_gateway(
            mode, gateway, elapsed_s=elapsed,
        ))
        summaries[-1].extras["index_mbytes"] = index_bytes / 2 ** 20
    return summaries


def table_compression_rows(queries, services):
    """Service-table memory vs recall of a pure (gateway-free) table scan."""
    probe = queries[:512]
    exact_ids, _ = ExactIndex().build(services).search(probe, TOP_K)
    int8_table = quantize_int8(services)
    pq_tables = {
        f"pq_m{m}": quantize_pq(services, num_subspaces=m) for m in (4, 8, 16)
    }
    variant_ids = {
        "int8": np.argsort(-int8_table.scores(probe), axis=1)[:, :TOP_K],
    }
    for label, table in pq_tables.items():
        variant_ids[label] = np.argsort(-table.scores(probe), axis=1)[:, :TOP_K]
    variants = {"float32": services.astype(np.float32), "int8": int8_table}
    variants.update(pq_tables)
    return compression_report(
        services.astype(np.float64), variants,
        exact_ids=exact_ids, variant_ids=variant_ids, k=TOP_K,
    )


def test_quantized_serving(benchmark):
    summaries = benchmark.pedantic(run_load_test, rounds=1, iterations=1)
    by_mode = {summary.mode: summary for summary in summaries}
    if by_mode["ivfpq_m8"].qps < by_mode["ivf"].qps:
        # Wall-clock orderings can lose to a noisy neighbour; one retry
        # separates a loaded machine from a real regression.
        summaries = run_load_test()
        by_mode = {summary.mode: summary for summary in summaries}
    rows = load_test_rows(summaries)
    print("\n" + format_float_table(
        rows, title=f"Quantized serving: {NUM_REQUESTS} Zipf requests, "
                    f"{NUM_SERVICES} services, dim {DIM}, K={TOP_K}"
    ))

    queries, services = clustered_embeddings(
        NUM_QUERIES, NUM_SERVICES, DIM, num_clusters=16, spread=0.2, seed=0
    )
    table_rows = table_compression_rows(queries, services)
    print("\n" + format_float_table(
        table_rows, title="Service-table compression (baseline float64, "
                          "full-table scan recall@10)"
    ))
    by_table = {row["table"]: row for row in table_rows}

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "workload": {
            "num_queries": NUM_QUERIES,
            "num_services": NUM_SERVICES,
            "dim": DIM,
            "num_requests": NUM_REQUESTS,
            "batch_size": BATCH_SIZE,
            "top_k": TOP_K,
            "distribution": "zipf(1.1)",
        },
        "results": rows,
        "service_table_compression": table_rows,
        "qps_ratio_ivfpq_m8_vs_ivf": by_mode["ivfpq_m8"].qps / by_mode["ivf"].qps,
        "int8_compression_vs_float64": by_table["int8"]["compression_x"],
        "int8_compression_vs_float32": (by_table["float32"]["bytes"]
                                        / by_table["int8"]["bytes"]),
    }
    (RESULTS_DIR / "quantized_serving.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # The ROADMAP's memory contract: int8 cuts the service table >= 4x while
    # holding recall@10 >= 0.95; PQ compresses another 3-12x on top.
    assert by_table["int8"]["compression_x"] >= 4.0
    assert by_table["int8"]["recall_at_k"] >= 0.95
    assert by_mode["int8"].recall_at_k >= 0.95
    assert by_table["pq_m8"]["compression_x"] >= 16.0
    # The latency contract: scanning byte codes must not cost the ANN win —
    # IVF-PQ at least matches the fp IVF index on the same stream.
    assert by_mode["ivfpq_m8"].qps >= by_mode["ivf"].qps
    assert by_mode["ivfpq_m8"].recall_at_k >= 0.9
    assert by_mode["ivfpq_m16"].recall_at_k >= by_mode["ivfpq_m4"].recall_at_k
