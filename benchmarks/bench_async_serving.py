"""Benchmark: the asyncio-native request path vs the thread-per-wait path.

The ROADMAP's concurrency argument: the PR-1 thread path parks one OS
thread per in-flight request, so a single process tops out at a few hundred
concurrent requests before context switching eats the micro-batching win.
The asyncio front-end holds each in-flight request as a future on one event
loop, which moves the ceiling by an order of magnitude on the same
hardware and the same micro-batch deadlines.

Three measured regimes, same Zipf stream and the same IVF gateway
configuration:

* ``thread`` — the PR-1 drive: N producer threads, each blocking on its
  request, the background scheduler thread flushing deadlines.  N is the
  thread path's practical concurrency ceiling.
* ``async_equal`` — the asyncio path holding exactly N requests in flight
  (apples-to-apples: same concurrency, no thread fan-out).  The CI gate:
  sustained QPS must be >= 1.0x the thread path here.
* ``async_high`` — the asyncio path holding 4-16x more requests in flight
  than the thread ceiling (1k-5k at full scale), with a request deadline;
  the gate is >= 2x the thread path's max in-flight without a
  deadline-miss blowup.

A fourth, open-loop run drives Poisson arrivals at 1.25x the measured
async capacity through a bounded admission queue (reject policy) with a
tight deadline — the regime where the new overload/deadline/queue-depth
telemetry is observable.  A final pair of closed-loop runs measures
observability overhead: telemetry fully off vs per-request tracing plus
histogram telemetry, gated at >= 0.9x QPS and recorded as
``obs_overhead_qps_ratio``.  Results are printed as a table and persisted
to ``benchmarks/results/async_serving.json``.

Runnable standalone with the uniform bench flags::

    python -m benchmarks.bench_async_serving [--smoke] [--seed N] [--out P]
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np

from benchmarks.bench_args import parse_bench_args, require, write_json
from benchmarks.serving_load import (
    drive_concurrent,
    drive_open_loop,
    load_report,
    make_workload,
)
from repro.eval.reporting import format_float_table
from repro.serving.gateway import ServingGateway, VersionedEmbeddingStore

#: Full scale: the tracked results/async_serving.json workload.
FULL = dict(
    num_queries=2_000,
    num_services=12_000,
    dim=48,
    num_requests=8_192,
    batch_size=64,
    top_k=10,
    thread_concurrency=256,
    async_concurrencies=(1_024, 4_096),
    deadline_s=10.0,
)
#: Smoke scale: small enough for a per-PR CI gate, large enough that the
#: concurrency ratios are meaningful.
SMOKE = dict(
    num_queries=500,
    num_services=4_000,
    dim=48,
    num_requests=2_048,
    batch_size=64,
    top_k=10,
    thread_concurrency=64,
    async_concurrencies=(256,),
    deadline_s=10.0,
)


def make_gateway(queries, services, params, **overrides):
    store = VersionedEmbeddingStore(queries, services, num_shards=4)
    kwargs = dict(
        index="ivf",
        top_k=params["top_k"],
        max_batch_size=params["batch_size"],
        cache_capacity=0,
    )
    kwargs.update(overrides)
    return ServingGateway(store, **kwargs)


def run_thread_path(gateway, stream, concurrency: int) -> dict:
    """The PR-1 regime: one blocked producer thread per in-flight request."""
    gateway.scheduler.start()
    chunks = np.array_split(np.asarray(stream), concurrency)
    latencies_s: list = []
    errors: list = []
    lock = threading.Lock()

    def producer(chunk) -> None:
        mine = []
        try:
            for query_id in chunk:
                started = time.perf_counter()
                gateway.submit(int(query_id)).result(timeout=120.0)
                mine.append(time.perf_counter() - started)
        except BaseException as error:  # pragma: no cover - fail loudly
            errors.append(error)
        with lock:
            latencies_s.extend(mine)

    threads = [threading.Thread(target=producer, args=(chunk,)) for chunk in chunks]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    gateway.scheduler.stop()
    if errors:
        raise errors[0]
    report = load_report(
        latencies_s,
        elapsed,
        attempted=len(stream),
        completed=len(stream),
        max_in_flight=concurrency,  # one blocked thread per request
    )
    return {"mode": "thread", "concurrency": concurrency, **report}


def run_async_path(
    queries, services, params, stream, concurrency: int, mode=None, **overrides
) -> dict:
    """The asyncio regime: ``concurrency`` futures held on one event loop."""
    gateway = make_gateway(
        queries,
        services,
        params,
        max_queue=2 * concurrency,
        overload="wait",
        cpu_executor="thread",
        loop_confined=True,
        **overrides,
    )
    try:
        report = asyncio.run(
            drive_concurrent(
                gateway, stream, concurrency, deadline_s=params["deadline_s"]
            )
        )
        summary = gateway.summary()
    finally:
        gateway.close()
    return {
        "mode": mode if mode is not None else f"async_c{concurrency}",
        "concurrency": concurrency,
        **report,
        "queue_depth_max": summary["queue_depth_max"],
        "loop_lag_max_ms": summary["loop_lag_max_ms"],
    }


def run_open_loop(
    queries, services, params, stream, rate_qps: float, seed: int
) -> dict:
    """Poisson arrivals above capacity against a bounded, rejecting queue."""
    gateway = make_gateway(
        queries,
        services,
        params,
        max_queue=1_024,
        overload="reject",
        cpu_executor="thread",
        loop_confined=True,
    )
    try:
        report = asyncio.run(
            drive_open_loop(gateway, stream, rate_qps, deadline_s=0.25, seed=seed)
        )
        summary = gateway.summary()
    finally:
        gateway.close()
    return {
        "mode": "open_loop",
        "concurrency": float("nan"),
        **report,
        "queue_depth_max": summary["queue_depth_max"],
        "overload_rejections": summary["overload_rejections"],
    }


def run_bench(params, seed: int) -> dict:
    queries, services, stream = make_workload(params, seed)
    thread_gateway = make_gateway(queries, services, params)
    try:
        thread_report = run_thread_path(
            thread_gateway, stream, params["thread_concurrency"]
        )
    finally:
        thread_gateway.close()
    rows = [thread_report]
    equal = run_async_path(
        queries, services, params, stream, params["thread_concurrency"]
    )
    equal["mode"] = "async_equal"
    rows.append(equal)
    for concurrency in params["async_concurrencies"]:
        rows.append(run_async_path(queries, services, params, stream, concurrency))
    rows.append(
        run_open_loop(
            queries,
            services,
            params,
            stream,
            rate_qps=1.25 * equal["sustained_qps"],
            seed=seed + 3,
        )
    )
    # Observability overhead: the same closed-loop drive with telemetry
    # fully disabled vs tracing + histogram telemetry on every request.
    # Each config takes its best of three runs — sub-second drives are
    # noisy and noise only ever lowers QPS, so the max estimates capacity.
    def best_of(mode, **overrides):
        runs = [
            run_async_path(
                queries,
                services,
                params,
                stream,
                params["thread_concurrency"],
                mode=mode,
                **overrides,
            )
            for _ in range(3)
        ]
        return max(runs, key=lambda row: row["sustained_qps"])

    obs_off = best_of("obs_off", telemetry_enabled=False)
    obs_on = best_of("obs_on", tracing=True, trace_sample_every=16)
    rows.extend([obs_off, obs_on])
    return {
        "workload": dict(params, distribution="zipf(1.1)"),
        "seed": seed,
        "results": rows,
        "qps_ratio_async_equal_vs_thread": (
            equal["sustained_qps"] / thread_report["sustained_qps"]
        ),
        "obs_overhead_qps_ratio": (
            obs_on["sustained_qps"] / obs_off["sustained_qps"]
        ),
    }


def main(argv=None):
    args = parse_bench_args("async_serving", __doc__, argv)
    params = SMOKE if args.smoke else FULL
    payload = run_bench(params, seed=args.seed)
    rows = payload["results"]
    by_mode = {row["mode"]: row for row in rows}
    ratio = payload["qps_ratio_async_equal_vs_thread"]
    obs_ratio = payload["obs_overhead_qps_ratio"]
    if args.smoke and (ratio < 1.0 or obs_ratio < 0.9):
        # Wall-clock orderings can lose to a noisy neighbour; one retry
        # separates a loaded CI runner from a real regression.
        payload = run_bench(params, seed=args.seed)
        rows = payload["results"]
        by_mode = {row["mode"]: row for row in rows}
        ratio = payload["qps_ratio_async_equal_vs_thread"]
        obs_ratio = payload["obs_overhead_qps_ratio"]
    label = "smoke" if args.smoke else "full"
    print(
        format_float_table(
            rows,
            title=(
                f"Async vs thread request path ({label}): "
                f"{params['num_requests']} Zipf requests, "
                f"{params['num_services']} services, "
                f"batch {params['batch_size']}"
            ),
        )
    )
    payload["smoke"] = args.smoke
    write_json(args.out, payload)
    print(f"wrote {args.out}")

    # The refactor's contract: the loop front-end gives up no throughput at
    # the thread path's own concurrency and holds far more work in flight
    # at the same micro-batch deadlines without shedding it to deadline
    # misses.
    highest = max(
        (row for row in rows if row["mode"].startswith("async_c")),
        key=lambda row: row["concurrency"],
    )
    require(
        ratio >= 1.0,
        f"async path must sustain >= 1.0x thread-path QPS at equal "
        f"concurrency (got {ratio:.3f}x)",
    )
    require(
        highest["max_in_flight"] >= 2 * params["thread_concurrency"],
        f"async path must hold >= 2x the thread path's in-flight ceiling "
        f"(held {highest['max_in_flight']}, "
        f"thread ceiling {params['thread_concurrency']})",
    )
    require(
        highest["deadline_missed"] <= 0.01 * params["num_requests"],
        f"deadline misses blew up at high concurrency "
        f"({highest['deadline_missed']} of {params['num_requests']})",
    )
    require(
        obs_ratio >= 0.9,
        f"tracing + histogram telemetry must keep >= 0.9x the "
        f"telemetry-off QPS (got {obs_ratio:.3f}x)",
    )
    print("bench gates passed")


if __name__ == "__main__":
    main()
