"""Benchmark: durable snapshot warm start vs cold re-quantize boot.

The durability argument from the ROADMAP: a replica that re-quantizes a
12k-service catalogue on every restart (int8 scales + PQ codebook
training) pays tens of seconds of CPU before it can answer its first
request, while the chunked snapshot format
(:mod:`repro.serving.snapshot`) mmaps the already-quantized tables
read-only and boots in milliseconds.  This bench measures, at the same
catalogue scale as the quantized bench:

* **cold boot** — ``VersionedEmbeddingStore`` construction with
  ``("int8", "pq")`` quantization plus a gateway and one ranked batch;
* **snapshot write** — publishing that store version to a chunk
  directory (content-addressed, checksummed);
* **warm boot** — ``VersionedEmbeddingStore.restore`` from the manifest
  plus a gateway and the same ranked batch.

Three deterministic gates ride along the wall-clock one:

* warm start serves **bit-identical** ranked results (ids and scores) to
  the cold store it was persisted from;
* mmap-served recall@10 equals in-memory recall@10 (same probe set);
* a **delta publish** that changes only the query table rewrites only the
  query chunks — every service-side chunk (fp, int8, PQ) is shared.

Results are persisted to ``benchmarks/results/snapshot_store.json``.
Runnable standalone with the uniform bench flags::

    python -m benchmarks.bench_snapshot_store [--smoke] [--seed N] [--out P]

``--smoke`` is the CI gate: reduced catalogue, same gates, including the
hard ``warm-start >= 10x faster than cold boot`` floor.
"""

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from benchmarks.bench_args import RESULTS_DIR, parse_bench_args, require, write_json
from benchmarks.serving_load import make_workload
from repro.eval.reporting import format_float_table
from repro.eval.serving_metrics import recall_at_k
from repro.serving.gateway import ExactIndex, ServingGateway, VersionedEmbeddingStore
from repro.serving.snapshot import open_snapshot, write_snapshot

FULL = dict(num_queries=2_000, num_services=12_000, dim=48,
            num_requests=1, top_k=10, num_probe=512)
SMOKE = dict(num_queries=500, num_services=4_000, dim=48,
             num_requests=1, top_k=10, num_probe=256)

QUANTIZATION = ("int8", "pq")
QUANT_PARAMS = {"pq": {"num_subspaces": 8}}
NUM_SHARDS = 4
WARM_SPEEDUP_FLOOR = 10.0


def _boot_and_rank(store, params, probe_ids):
    """Gateway over ``store`` + one ranked batch (the first-request cost)."""
    gateway = ServingGateway(store, index="int8", top_k=params["top_k"],
                             cache_capacity=0)
    try:
        return [gateway.rank(query_id, params["top_k"])
                for query_id in probe_ids]
    finally:
        gateway.close()


def run_snapshot_bench(params=None, seed=0, root=None):
    """Time cold boot, snapshot write and warm boot; verify the parity gates."""
    params = params or FULL
    queries, services, _ = make_workload(params, seed)
    probe_ids = list(range(min(32, params["num_queries"])))

    with tempfile.TemporaryDirectory() as scratch:
        root = Path(root) if root is not None else Path(scratch) / "snap"

        started = time.perf_counter()
        store = VersionedEmbeddingStore(
            queries, services, num_shards=NUM_SHARDS,
            quantization=QUANTIZATION, quantization_params=QUANT_PARAMS,
        )
        cold_results = _boot_and_rank(store, params, probe_ids)
        cold_boot_s = time.perf_counter() - started

        started = time.perf_counter()
        report = write_snapshot(store.snapshot(), root)
        write_s = time.perf_counter() - started

        started = time.perf_counter()
        warm_store = VersionedEmbeddingStore.restore(str(root))
        warm_results = _boot_and_rank(warm_store, params, probe_ids)
        warm_boot_s = time.perf_counter() - started

        # Parity gates: bit-identical ranked lists and identical recall
        # whether the int8 tables came from memory or from the mmap.
        bit_identical = warm_results == cold_results
        probe = queries[: params["num_probe"]].astype(np.float32)
        exact_ids, _ = ExactIndex().build(
            store.snapshot().services).search(probe, params["top_k"])
        top_memory = np.argsort(
            -store.snapshot().quantized["int8"].scores(probe),
            axis=1)[:, : params["top_k"]]
        top_mmap = np.argsort(
            -warm_store.snapshot().quantized["int8"].scores(probe),
            axis=1)[:, : params["top_k"]]
        recall_memory = recall_at_k(top_memory, exact_ids, params["top_k"])
        recall_mmap = recall_at_k(top_mmap, exact_ids, params["top_k"])

        # Delta publish: shift only the query table; every service-side
        # chunk (fp services, int8 codes/scales, PQ codes/codebooks) must
        # be shared with version 0.
        manifest = open_snapshot(root).manifest
        query_chunks = len(manifest["sections"]["fp"]["arrays"]["queries"])
        store.publish(queries + 0.25, services)
        delta = write_snapshot(store.snapshot(), root)

        rows = [
            {"phase": "cold_boot", "seconds": cold_boot_s},
            {"phase": "snapshot_write", "seconds": write_s},
            {"phase": "warm_boot", "seconds": warm_boot_s},
        ]
        gates = {
            "warm_speedup_x": cold_boot_s / warm_boot_s,
            "bit_identical_rank": float(bit_identical),
            "recall_memory": recall_memory,
            "recall_mmap": recall_mmap,
            "delta_chunks_written": delta.chunks_written,
            "delta_chunks_expected": query_chunks,
            "delta_chunks_shared": delta.chunks_shared,
            "snapshot_mbytes": report.bytes_written / 2 ** 20,
        }
        return rows, gates


def check_gates(gates):
    require(bool(gates["bit_identical_rank"]),
            "warm-started gateway must serve bit-identical ranked results")
    require(gates["recall_mmap"] == gates["recall_memory"],
            f"mmap-served recall {gates['recall_mmap']:.4f} != in-memory "
            f"recall {gates['recall_memory']:.4f}")
    require(gates["delta_chunks_written"] == gates["delta_chunks_expected"],
            f"delta publish wrote {gates['delta_chunks_written']} chunks, "
            f"expected only the {gates['delta_chunks_expected']} query chunks")
    require(gates["delta_chunks_shared"] > 0,
            "delta publish must share the unchanged service-side chunks")
    require(gates["warm_speedup_x"] >= WARM_SPEEDUP_FLOOR,
            f"warm start {gates['warm_speedup_x']:.1f}x faster than cold "
            f"boot, floor is {WARM_SPEEDUP_FLOOR:.0f}x")


def build_payload(params, rows, gates, seed, smoke):
    return {
        "workload": dict(params, quantization=list(QUANTIZATION),
                         num_shards=NUM_SHARDS),
        "seed": seed,
        "smoke": smoke,
        "results": rows,
        "gates": gates,
        "warm_speedup_x": gates["warm_speedup_x"],
    }


def test_snapshot_store(benchmark):
    rows, gates = benchmark.pedantic(run_snapshot_bench, rounds=1,
                                     iterations=1)
    print("\n" + format_float_table(
        rows, title=f"Snapshot warm start: {FULL['num_services']} services, "
                    f"dim {FULL['dim']}, int8+pq, "
                    f"warm speedup {gates['warm_speedup_x']:.1f}x"
    ))
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = build_payload(FULL, rows, gates, seed=0, smoke=False)
    (RESULTS_DIR / "snapshot_store.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert gates["bit_identical_rank"]
    assert gates["recall_mmap"] == gates["recall_memory"]
    assert gates["delta_chunks_written"] == gates["delta_chunks_expected"]
    assert gates["warm_speedup_x"] >= WARM_SPEEDUP_FLOOR


def main(argv=None):
    args = parse_bench_args("snapshot_store", __doc__, argv)
    params = SMOKE if args.smoke else FULL
    rows, gates = run_snapshot_bench(params, seed=args.seed)
    label = "smoke" if args.smoke else "full"
    print(format_float_table(
        rows, title=f"Snapshot warm start ({label}): "
                    f"{params['num_services']} services, dim {params['dim']}, "
                    f"int8+pq, warm speedup {gates['warm_speedup_x']:.1f}x"
    ))
    print(f"gates: {json.dumps(gates, indent=2)}")
    write_json(args.out, build_payload(params, rows, gates,
                                       seed=args.seed, smoke=args.smoke))
    print(f"wrote {args.out}")
    check_gates(gates)
    print("bench gates passed")


if __name__ == "__main__":
    main()
