"""Shared CLI for the serving benchmarks (and their CI smoke gate).

Every serving bench is runnable two ways with identical semantics:

* under pytest-benchmark (``python -m pytest benchmarks/bench_<name>.py``),
  the full-scale mode the results/ JSONs are tracked at;
* as a script (``python -m benchmarks.bench_<name> [--smoke] [--seed N]
  [--out PATH]``), which is what the CI ``bench-smoke`` job drives.

The flags are uniform across benches — one parser builder here instead of
per-bench argparse drift — and ``--smoke`` switches to a reduced workload
(smaller catalogue, fewer requests) whose recall/ratio floors still gate
regressions at pull-request latency.

This module deliberately has no pytest dependency so the script entry points
stay importable in minimal environments; ``benchmarks/conftest.py`` imports
:data:`RESULTS_DIR` from here to keep a single source of truth.
"""

from __future__ import annotations

import argparse
import json
import pathlib
from typing import Optional, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def parse_bench_args(
    name: str,
    description: str,
    argv: Optional[Sequence[str]] = None,
) -> argparse.Namespace:
    """Parse the uniform bench flags: ``--seed``, ``--out``, ``--smoke``.

    ``name`` is the bench's result stem — the default ``--out`` is
    ``benchmarks/results/<name>.json`` (the file the full-scale run tracks;
    CI smoke runs upload whatever ``--out`` they wrote as an artifact).
    """
    parser = argparse.ArgumentParser(
        description=description,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="workload seed (embeddings, request stream and probes derive from it)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=RESULTS_DIR / f"{name}.json",
        help="JSON output path (default: %(default)s)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced workload + hard recall/ratio floors (the CI perf gate)",
    )
    return parser.parse_args(argv)


def write_json(path: pathlib.Path, payload: dict) -> None:
    """Persist one bench payload, creating the results directory on demand."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def require(condition: bool, message: str) -> None:
    """Assert-like gate that survives ``python -O``: exit non-zero on failure."""
    if not condition:
        raise SystemExit(f"BENCH GATE FAILED: {message}")
