"""Shared workload construction + drive loops for the serving benches.

All serving benches (throughput, quantized, sharded, async) push the same
kind of Zipf-skewed request stream through a gateway; keeping the workload
builder and the drive protocols here means a change to the driving
happens in exactly one place.  Like :mod:`benchmarks.bench_args` this
module is pytest-free so the script entry points work in minimal
environments.

Three drive protocols:

* :func:`drive` — the PR-1 closed loop: submit one micro-batch, flush,
  wait, repeat.  Offered load adapts to service rate, so it measures peak
  batch throughput but can never observe queueing.
* :func:`drive_concurrent` — the async closed loop at high fan-out: up to
  ``concurrency`` requests are held in flight on one event loop (the
  regime the thread-per-wait scheduler could not reach), each new request
  admitted the moment a slot frees.
* :func:`drive_open_loop` — the async *open* loop: arrivals follow a
  seeded Poisson process at ``rate_qps`` and are submitted regardless of
  completions, exactly like independent user traffic.  Offered load no
  longer adapts to the server, so overload actually builds queues — which
  is what the admission-control, deadline and backpressure metrics need
  in order to mean anything.
* :func:`drive_flash_crowd` — the open loop under a flash crowd: a
  windowed slice of the stream arrives at ``spike_factor`` times the
  base rate (gaps from the shared
  :func:`repro.serving.gateway.workload.flash_crowd_gaps`, the same
  shape the A/B tier replays).  This is the storm driver the fleet
  bench uses: sustained overload that a single replica must shed and a
  fleet must absorb.
"""

from __future__ import annotations

import asyncio
import time

from repro.serving.gateway import (
    DeadlineExceededError,
    OverloadError,
    clustered_embeddings,
    flash_crowd_gaps,
    poisson_gaps,
    zipf_query_ids,
)
from repro.serving.obs.metrics import sample_percentiles_ms


def make_workload(params: dict, seed: int):
    """Seeded ``(queries, services, request stream)`` for one bench scale.

    ``params`` carries ``num_queries`` / ``num_services`` / ``dim`` /
    ``num_requests``; derived seeds keep the embeddings and the stream
    independent but reproducible from one ``--seed``.
    """
    queries, services = clustered_embeddings(
        params["num_queries"],
        params["num_services"],
        params["dim"],
        num_clusters=16,
        spread=0.2,
        seed=seed,
    )
    stream = zipf_query_ids(
        params["num_queries"],
        params["num_requests"],
        exponent=1.1,
        seed=seed + 1,
    )
    return queries, services, stream


def drive(gateway, stream, batch_size: int) -> float:
    """Push the whole stream through in micro-batches; returns wall seconds."""
    started = time.perf_counter()
    for offset in range(0, len(stream), batch_size):
        handles = [
            gateway.submit(int(query_id))
            for query_id in stream[offset : offset + batch_size]
        ]
        gateway.flush()
        for handle in handles:
            handle.result(0)
    return time.perf_counter() - started


def load_report(
    latencies_s,
    elapsed_s: float,
    attempted: int,
    completed: int,
    rejected: int = 0,
    deadline_missed: int = 0,
    max_in_flight: int = 0,
) -> dict:
    """One drive run's report row (shared by the async and thread drivers,
    so percentile math and column names cannot drift between the modes a
    bench compares).  Percentiles come from the shared helper in
    :mod:`repro.serving.obs.metrics` — the same definition the eval layer
    uses."""
    tail = sample_percentiles_ms(latencies_s, percentiles=(50, 99))
    return {
        "requests": attempted,
        "completed": completed,
        "rejected_overload": rejected,
        "deadline_missed": deadline_missed,
        "max_in_flight": max_in_flight,
        "elapsed_s": elapsed_s,
        "sustained_qps": completed / elapsed_s if elapsed_s > 0 else 0.0,
        "p50_ms": tail["p50_ms"],
        "p99_ms": tail["p99_ms"],
    }


class _AsyncLoadState:
    """Shared counters for one async drive run."""

    def __init__(self) -> None:
        self.in_flight = 0
        self.max_in_flight = 0
        self.completed = 0
        self.rejected = 0
        self.deadline_missed = 0
        self.latencies_s: list = []

    def enter(self) -> float:
        self.in_flight += 1
        if self.in_flight > self.max_in_flight:
            self.max_in_flight = self.in_flight
        return time.perf_counter()

    def leave_ok(self, started: float) -> None:
        self.completed += 1
        self.latencies_s.append(time.perf_counter() - started)
        self.in_flight -= 1

    def report(self, elapsed_s: float, attempted: int) -> dict:
        return load_report(
            self.latencies_s,
            elapsed_s,
            attempted,
            self.completed,
            rejected=self.rejected,
            deadline_missed=self.deadline_missed,
            max_in_flight=self.max_in_flight,
        )


async def _one_request(
    gateway, query_id: int, deadline_s, state: _AsyncLoadState, session_id=None
):
    # session_id is only passed when given: the single-gateway API has no
    # session concept, the fleet router keys rendezvous routing on it.
    kwargs = {} if session_id is None else {"session_id": int(session_id)}
    started = state.enter()
    try:
        await gateway.search_async(int(query_id), deadline_s=deadline_s, **kwargs)
    except OverloadError:
        state.rejected += 1
        state.in_flight -= 1
    except DeadlineExceededError:
        state.deadline_missed += 1
        state.in_flight -= 1
    else:
        state.leave_ok(started)


async def drive_concurrent(
    gateway, stream, concurrency: int, deadline_s=None, session_ids=None
) -> dict:
    """Hold up to ``concurrency`` requests in flight on the current loop.

    Returns a report dict with sustained QPS, latency percentiles, the
    in-flight high-water mark and the shed-request counters.  Pass
    ``session_ids`` (one per request) when ``gateway`` is a fleet router —
    distinct sessions are what rendezvous routing spreads over replicas.
    """
    state = _AsyncLoadState()
    semaphore = asyncio.Semaphore(concurrency)
    sessions = [None] * len(stream) if session_ids is None else list(session_ids)

    async def bounded(query_id, session_id) -> None:
        async with semaphore:
            await _one_request(gateway, query_id, deadline_s, state, session_id)

    started = time.perf_counter()
    tasks = [
        asyncio.ensure_future(bounded(query_id, session_id))
        for query_id, session_id in zip(stream, sessions)
    ]
    await asyncio.gather(*tasks)
    # Timestamp before the drain: the thread path's report excludes its
    # scheduler stop too, so the modes' sustained_qps stay comparable.
    elapsed = time.perf_counter() - started
    await gateway.stop_async()
    return state.report(elapsed, len(stream))


async def _drive_arrivals(gateway, stream, gaps, deadline_s, session_ids=None) -> dict:
    """Submit the stream at the given inter-arrival gaps (open loop)."""
    state = _AsyncLoadState()
    loop = asyncio.get_running_loop()
    sessions = [None] * len(stream) if session_ids is None else list(session_ids)
    started = time.perf_counter()
    next_at = loop.time()
    tasks = []
    for gap, query_id, session_id in zip(gaps, stream, sessions):
        next_at += float(gap)
        delay = next_at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(
            asyncio.ensure_future(
                _one_request(gateway, query_id, deadline_s, state, session_id)
            )
        )
    await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - started
    await gateway.stop_async()
    return state.report(elapsed, len(stream))


async def drive_open_loop(
    gateway, stream, rate_qps: float, deadline_s=None, seed: int = 0,
    session_ids=None,
) -> dict:
    """Arrival-rate-driven (open-loop) load: Poisson arrivals at ``rate_qps``.

    Submissions happen at the seeded arrival instants whether or not earlier
    requests completed, so in-flight work genuinely accumulates when the
    gateway falls behind the offered rate — the open-loop property closed
    drive loops cannot reproduce.  Returns the same report shape as
    :func:`drive_concurrent` plus the offered rate.
    """
    gaps = poisson_gaps(len(stream), rate_qps, seed=seed)
    report = await _drive_arrivals(
        gateway, stream, gaps, deadline_s, session_ids=session_ids
    )
    report["offered_qps"] = float(rate_qps)
    return report


async def drive_flash_crowd(
    gateway,
    stream,
    base_qps: float,
    spike_factor: float = 10.0,
    spike_start: float = 0.45,
    spike_width: float = 0.1,
    deadline_s=None,
    seed: int = 0,
    session_ids=None,
) -> dict:
    """Open-loop flash crowd: a 10x (by default) rate spike mid-stream.

    Arrivals outside the spike window follow the Poisson base rate; the
    windowed slice of the stream arrives ``spike_factor`` times faster.
    The report adds the offered base/spike rates so a bench can relate
    shed counters to the overload it actually offered.
    """
    gaps = flash_crowd_gaps(
        len(stream),
        base_qps,
        spike_factor=spike_factor,
        spike_start=spike_start,
        spike_width=spike_width,
        seed=seed,
    )
    report = await _drive_arrivals(
        gateway, stream, gaps, deadline_s, session_ids=session_ids
    )
    report["offered_qps"] = float(base_qps)
    report["spike_qps"] = float(base_qps * spike_factor)
    report["spike_window"] = [float(spike_start), float(spike_start + spike_width)]
    return report
