"""Shared workload construction + drive loop for the serving benches.

All three serving benches (throughput, quantized, sharded) push the same
kind of Zipf-skewed request stream through a gateway in micro-batches;
keeping the workload builder and the drive loop here means a change to the
driving protocol happens in exactly one place.  Like
:mod:`benchmarks.bench_args` this module is pytest-free so the script entry
points work in minimal environments.
"""

from __future__ import annotations

import time

from repro.serving.gateway import clustered_embeddings, zipf_query_ids


def make_workload(params: dict, seed: int):
    """Seeded ``(queries, services, request stream)`` for one bench scale.

    ``params`` carries ``num_queries`` / ``num_services`` / ``dim`` /
    ``num_requests``; derived seeds keep the embeddings and the stream
    independent but reproducible from one ``--seed``.
    """
    queries, services = clustered_embeddings(
        params["num_queries"],
        params["num_services"],
        params["dim"],
        num_clusters=16,
        spread=0.2,
        seed=seed,
    )
    stream = zipf_query_ids(
        params["num_queries"],
        params["num_requests"],
        exponent=1.1,
        seed=seed + 1,
    )
    return queries, services, stream


def drive(gateway, stream, batch_size: int) -> float:
    """Push the whole stream through in micro-batches; returns wall seconds."""
    started = time.perf_counter()
    for offset in range(0, len(stream), batch_size):
        handles = [
            gateway.submit(int(query_id))
            for query_id in stream[offset : offset + batch_size]
        ]
        gateway.flush()
        for handle in handles:
            handle.result(0)
    return time.perf_counter() - started
