"""Shared workload construction + drive loops for the serving benches.

All serving benches (throughput, quantized, sharded, async) push the same
kind of Zipf-skewed request stream through a gateway; keeping the workload
builder and the drive protocols here means a change to the driving
happens in exactly one place.  Like :mod:`benchmarks.bench_args` this
module is pytest-free so the script entry points work in minimal
environments.

Three drive protocols:

* :func:`drive` — the PR-1 closed loop: submit one micro-batch, flush,
  wait, repeat.  Offered load adapts to service rate, so it measures peak
  batch throughput but can never observe queueing.
* :func:`drive_concurrent` — the async closed loop at high fan-out: up to
  ``concurrency`` requests are held in flight on one event loop (the
  regime the thread-per-wait scheduler could not reach), each new request
  admitted the moment a slot frees.
* :func:`drive_open_loop` — the async *open* loop: arrivals follow a
  seeded Poisson process at ``rate_qps`` and are submitted regardless of
  completions, exactly like independent user traffic.  Offered load no
  longer adapts to the server, so overload actually builds queues — which
  is what the admission-control, deadline and backpressure metrics need
  in order to mean anything.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.serving.gateway import (
    DeadlineExceededError,
    OverloadError,
    clustered_embeddings,
    zipf_query_ids,
)
from repro.serving.obs.metrics import sample_percentiles_ms


def make_workload(params: dict, seed: int):
    """Seeded ``(queries, services, request stream)`` for one bench scale.

    ``params`` carries ``num_queries`` / ``num_services`` / ``dim`` /
    ``num_requests``; derived seeds keep the embeddings and the stream
    independent but reproducible from one ``--seed``.
    """
    queries, services = clustered_embeddings(
        params["num_queries"],
        params["num_services"],
        params["dim"],
        num_clusters=16,
        spread=0.2,
        seed=seed,
    )
    stream = zipf_query_ids(
        params["num_queries"],
        params["num_requests"],
        exponent=1.1,
        seed=seed + 1,
    )
    return queries, services, stream


def drive(gateway, stream, batch_size: int) -> float:
    """Push the whole stream through in micro-batches; returns wall seconds."""
    started = time.perf_counter()
    for offset in range(0, len(stream), batch_size):
        handles = [
            gateway.submit(int(query_id))
            for query_id in stream[offset : offset + batch_size]
        ]
        gateway.flush()
        for handle in handles:
            handle.result(0)
    return time.perf_counter() - started


def load_report(
    latencies_s,
    elapsed_s: float,
    attempted: int,
    completed: int,
    rejected: int = 0,
    deadline_missed: int = 0,
    max_in_flight: int = 0,
) -> dict:
    """One drive run's report row (shared by the async and thread drivers,
    so percentile math and column names cannot drift between the modes a
    bench compares).  Percentiles come from the shared helper in
    :mod:`repro.serving.obs.metrics` — the same definition the eval layer
    uses."""
    tail = sample_percentiles_ms(latencies_s, percentiles=(50, 99))
    return {
        "requests": attempted,
        "completed": completed,
        "rejected_overload": rejected,
        "deadline_missed": deadline_missed,
        "max_in_flight": max_in_flight,
        "elapsed_s": elapsed_s,
        "sustained_qps": completed / elapsed_s if elapsed_s > 0 else 0.0,
        "p50_ms": tail["p50_ms"],
        "p99_ms": tail["p99_ms"],
    }


class _AsyncLoadState:
    """Shared counters for one async drive run."""

    def __init__(self) -> None:
        self.in_flight = 0
        self.max_in_flight = 0
        self.completed = 0
        self.rejected = 0
        self.deadline_missed = 0
        self.latencies_s: list = []

    def enter(self) -> float:
        self.in_flight += 1
        if self.in_flight > self.max_in_flight:
            self.max_in_flight = self.in_flight
        return time.perf_counter()

    def leave_ok(self, started: float) -> None:
        self.completed += 1
        self.latencies_s.append(time.perf_counter() - started)
        self.in_flight -= 1

    def report(self, elapsed_s: float, attempted: int) -> dict:
        return load_report(
            self.latencies_s,
            elapsed_s,
            attempted,
            self.completed,
            rejected=self.rejected,
            deadline_missed=self.deadline_missed,
            max_in_flight=self.max_in_flight,
        )


async def _one_request(gateway, query_id: int, deadline_s, state: _AsyncLoadState):
    started = state.enter()
    try:
        await gateway.search_async(int(query_id), deadline_s=deadline_s)
    except OverloadError:
        state.rejected += 1
        state.in_flight -= 1
    except DeadlineExceededError:
        state.deadline_missed += 1
        state.in_flight -= 1
    else:
        state.leave_ok(started)


async def drive_concurrent(gateway, stream, concurrency: int, deadline_s=None) -> dict:
    """Hold up to ``concurrency`` requests in flight on the current loop.

    Returns a report dict with sustained QPS, latency percentiles, the
    in-flight high-water mark and the shed-request counters.
    """
    state = _AsyncLoadState()
    semaphore = asyncio.Semaphore(concurrency)

    async def bounded(query_id) -> None:
        async with semaphore:
            await _one_request(gateway, query_id, deadline_s, state)

    started = time.perf_counter()
    tasks = [asyncio.ensure_future(bounded(query_id)) for query_id in stream]
    await asyncio.gather(*tasks)
    # Timestamp before the drain: the thread path's report excludes its
    # scheduler stop too, so the modes' sustained_qps stay comparable.
    elapsed = time.perf_counter() - started
    await gateway.stop_async()
    return state.report(elapsed, len(stream))


async def drive_open_loop(
    gateway, stream, rate_qps: float, deadline_s=None, seed: int = 0
) -> dict:
    """Arrival-rate-driven (open-loop) load: Poisson arrivals at ``rate_qps``.

    Submissions happen at the seeded arrival instants whether or not earlier
    requests completed, so in-flight work genuinely accumulates when the
    gateway falls behind the offered rate — the open-loop property closed
    drive loops cannot reproduce.  Returns the same report shape as
    :func:`drive_concurrent` plus the offered rate.
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_qps, size=len(stream))
    state = _AsyncLoadState()
    loop = asyncio.get_running_loop()
    started = time.perf_counter()
    next_at = loop.time()
    tasks = []
    for gap, query_id in zip(gaps, stream):
        next_at += float(gap)
        delay = next_at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(
            asyncio.ensure_future(_one_request(gateway, query_id, deadline_s, state))
        )
    await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - started
    await gateway.stop_async()
    report = state.report(elapsed, len(stream))
    report["offered_qps"] = float(rate_qps)
    return report
