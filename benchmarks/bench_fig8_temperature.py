"""Benchmark: regenerate Fig. 8 (sensitivity of the contrastive temperature tau)."""

import numpy as np

from benchmarks.conftest import report_result
from repro.experiments import fig8_temperature


def test_fig8_temperature_sensitivity(benchmark, bench_settings):
    result = benchmark.pedantic(
        lambda: fig8_temperature.run(bench_settings), rounds=1, iterations=1
    )
    report_result(result)
    assert [row["tau"] for row in result.rows] == [0.05, 0.1, 0.3, 0.5, 0.7, 1.0]
    assert all(np.isfinite(row["tail_auc"]) for row in result.rows)
