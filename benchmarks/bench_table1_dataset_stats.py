"""Benchmark: regenerate Table I (dataset statistics).

Paper shape to reproduce: on the industrial windows ~1-1.7 % of queries are
head queries yet they account for ~94 % of search page views; the Amazon
domains have a flatter (but still skewed) distribution.
"""

from benchmarks.conftest import report_result
from repro.experiments import table1_datasets


def test_table1_dataset_statistics(benchmark, bench_settings):
    result = benchmark.pedantic(
        lambda: table1_datasets.run(bench_settings), rounds=1, iterations=1
    )
    text = report_result(result)
    assert len(result.rows) == 6
    # Industrial windows: the head share of page views far exceeds the head
    # share of queries (the long-tail phenomenon the paper builds on).
    for row in result.rows[:3]:
        assert row["pv_head_pct"] > 4 * row["queries_head_pct"]
    assert "Sep. A" in text
