"""Shared configuration and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper by running the
corresponding driver from :mod:`repro.experiments` exactly once (pedantic
mode, a single round) and then printing the rows/series the paper reports.
The printed output is also written to ``benchmarks/results/<id>.txt`` so the
EXPERIMENTS.md paper-vs-measured comparison can reference it.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_args import RESULTS_DIR
from repro.eval.reporting import format_float_table
from repro.experiments.common import ExperimentResult, ExperimentSettings

#: Settings shared by every benchmark: the smallest scale that still shows
#: the paper's qualitative shapes and keeps the whole harness to a few minutes.
BENCH_SETTINGS = ExperimentSettings(
    scale="tiny",
    embedding_dim=16,
    pretrain_epochs=2,
    finetune_epochs=4,
    learning_rate=5e-3,
    batch_size=256,
    seed=0,
)


def report_result(result: ExperimentResult) -> str:
    """Format, print and persist one experiment result; returns the text."""
    lines = [format_float_table(result.rows, title=result.title)]
    if result.notes:
        lines.append(f"notes: {result.notes}")
    for name, series in result.series.items():
        formatted = ", ".join("nan" if value != value else f"{value:.4f}" for value in series)
        lines.append(f"series {name}: [{formatted}]")
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
    return text


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    return BENCH_SETTINGS
