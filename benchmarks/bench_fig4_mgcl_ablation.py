"""Benchmark: regenerate Fig. 4 (multi-granularity contrastive learning ablation).

Paper shape to reproduce: the full GARCIA beats "GARCIA w.o. ALL" (no
contrastive pre-training), and each granularity contributes.
"""

from benchmarks.conftest import report_result
from repro.experiments import fig4_mgcl_ablation


def test_fig4_mgcl_ablation(benchmark, bench_settings):
    result = benchmark.pedantic(
        lambda: fig4_mgcl_ablation.run(bench_settings), rounds=1, iterations=1
    )
    report_result(result)
    assert len(result.rows) == 3 * 5  # three windows × five variants
    datasets = {row["dataset"] for row in result.rows}
    full_better = 0
    for dataset in datasets:
        rows = {row["variant"]: row for row in result.rows if row["dataset"] == dataset}
        if rows["GARCIA"]["overall_auc"] >= rows["GARCIA w.o. ALL"]["overall_auc"] - 0.02:
            full_better += 1
    assert full_better >= 2
