"""Extra ablation benchmark: anchor-pair mining criteria.

Not a figure in the paper, but DESIGN.md calls out the mining criteria
(semantic relevance + shared correlations + exposure) as a design choice
worth ablating: we compare KTCL coverage and the resulting tail AUC when the
shared-correlation requirement is tightened.
"""

import numpy as np

from benchmarks.conftest import report_result
from repro.eval.evaluator import Evaluator
from repro.experiments.common import ExperimentResult, build_model, scenario_for, train_model
from repro.models.garcia.anchor_pairs import coverage, mine_anchor_pairs


def test_anchor_pair_mining_ablation(benchmark, bench_settings):
    def run():
        scenario = scenario_for("Sep. A", bench_settings)
        evaluator = Evaluator()
        result = ExperimentResult(
            experiment_id="ablation_anchor_pairs",
            title="Ablation: anchor-pair mining shared-attribute threshold",
        )
        for min_shared in (0, 1, 2, 3):
            pairs = mine_anchor_pairs(
                scenario.dataset, scenario.head_tail, scenario.forest,
                min_shared_attributes=min_shared,
            )
            config = bench_settings.garcia_config(anchor_min_shared_attributes=max(min_shared, 0))
            model = build_model("GARCIA", scenario, bench_settings, garcia_config=config)
            train_model(model, scenario, bench_settings)
            report = evaluator.evaluate(model, scenario.splits.test, scenario.head_tail)
            result.rows.append(
                {
                    "min_shared_attributes": min_shared,
                    "anchor_coverage": round(coverage(pairs, scenario.head_tail), 4),
                    "tail_auc": report.tail.auc,
                    "overall_auc": report.overall.auc,
                }
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report_result(result)
    coverages = [row["anchor_coverage"] for row in result.rows]
    # Stricter sharing requirements can only reduce coverage.
    assert all(a >= b for a, b in zip(coverages, coverages[1:]))
    assert all(np.isfinite(row["overall_auc"]) for row in result.rows)
