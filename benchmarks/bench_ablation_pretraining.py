"""Extra ablation benchmark: pre-training vs training from scratch.

The paper motivates the pre-training → fine-tuning schema (Sec. IV-C) but
does not plot it separately; this bench compares fine-tuning with and without
the contrastive pre-training stage under the same total epoch budget.
"""

import numpy as np

from benchmarks.conftest import report_result
from repro.eval.evaluator import Evaluator
from repro.experiments.common import ExperimentResult, build_model, scenario_for
from repro.training import TrainerConfig
from repro.training.finetuner import train_garcia


def test_pretraining_ablation(benchmark, bench_settings):
    def run():
        scenario = scenario_for("Sep. A", bench_settings)
        evaluator = Evaluator()
        result = ExperimentResult(
            experiment_id="ablation_pretraining",
            title="Ablation: contrastive pre-training vs fine-tuning from scratch",
        )
        for label, pretrain_epochs in (("no pre-training", 0), ("with pre-training", 2)):
            model = build_model("GARCIA", scenario, bench_settings)
            train_garcia(
                model,
                scenario.splits.train,
                pretrain_config=TrainerConfig(
                    num_epochs=pretrain_epochs,
                    learning_rate=bench_settings.learning_rate,
                    batch_size=bench_settings.batch_size,
                    eval_every=0,
                ),
                finetune_config=bench_settings.trainer_config(),
            )
            report = evaluator.evaluate(model, scenario.splits.test, scenario.head_tail)
            result.rows.append(
                {
                    "schedule": label,
                    "pretrain_epochs": pretrain_epochs,
                    "tail_auc": report.tail.auc,
                    "overall_auc": report.overall.auc,
                }
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report_result(result)
    assert len(result.rows) == 2
    assert all(np.isfinite(row["overall_auc"]) for row in result.rows)
