"""Benchmark: cold vs delta wire replication and hydrate-parity recall.

PR 8's content-addressed chunk store made *local* republish a delta
write; the replication transport (:mod:`repro.serving.snapshot.transport`)
extends the same economics across hosts.  This bench stands up a
:class:`~repro.serving.snapshot.SnapshotServer` over a quantized source
store and measures, at the quantized-bench catalogue scale:

* **cold fetch** — hydrating a completely empty durable dir from the peer
  (every chunk crosses the wire);
* **re-fetch** — an already-hydrated host fetching again (must transfer
  zero chunks and zero bytes);
* **delta fetch** — after a small republish on the source (query table
  shift only), the follow-up fetch moves only the changed chunks.

Deterministic gates ride along the wall-clock numbers:

* a re-fetch transfers **nothing** (content addressing, not heuristics);
* delta-fetch bytes stay **under 50%** of the cold-fetch bytes after the
  small republish;
* the hydrated host's int8 recall@10 **equals** the source store's
  recall@10 over the same probe set (bit-identical tables ⇒ identical
  quality — replication must not cost a single rank).

Results are persisted to ``benchmarks/results/snapshot_replication.json``.
Runnable standalone with the uniform bench flags::

    python -m benchmarks.bench_snapshot_replication [--smoke] [--seed N] [--out P]

``--smoke`` is the CI gate: reduced catalogue, same gates.
"""

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from benchmarks.bench_args import RESULTS_DIR, parse_bench_args, require, write_json
from benchmarks.serving_load import make_workload
from repro.eval.reporting import format_float_table
from repro.eval.serving_metrics import recall_at_k
from repro.serving.gateway import ExactIndex, VersionedEmbeddingStore
from repro.serving.snapshot import SnapshotFetcher, SnapshotServer

FULL = dict(num_queries=2_000, num_services=12_000, dim=48,
            num_requests=1, top_k=10, num_probe=512)
SMOKE = dict(num_queries=500, num_services=4_000, dim=48,
             num_requests=1, top_k=10, num_probe=256)

QUANTIZATION = ("int8", "pq")
QUANT_PARAMS = {"pq": {"num_subspaces": 8}}
NUM_SHARDS = 4
DELTA_BYTES_CEILING = 0.5  # delta fetch < 50% of cold fetch


def _int8_recall(store, probe, exact_ids, top_k):
    top = np.argsort(-store.snapshot().quantized["int8"].scores(probe),
                     axis=1)[:, :top_k]
    return recall_at_k(top, exact_ids, top_k)


def run_replication_bench(params=None, seed=0):
    """Time cold/re/delta fetches over a live server; verify parity gates."""
    params = params or FULL
    queries, services, _ = make_workload(params, seed)

    with tempfile.TemporaryDirectory() as scratch:
        src = Path(scratch) / "src"
        dst = Path(scratch) / "dst"
        src.mkdir()
        dst.mkdir()
        store = VersionedEmbeddingStore(
            queries, services, num_shards=NUM_SHARDS,
            quantization=QUANTIZATION, quantization_params=QUANT_PARAMS,
            durable_dir=str(src),
        )

        with SnapshotServer(src) as server:
            started = time.perf_counter()
            cold = SnapshotFetcher(server.address, dst).fetch()
            cold_fetch_s = time.perf_counter() - started

            started = time.perf_counter()
            refetch = SnapshotFetcher(server.address, dst).fetch()
            refetch_s = time.perf_counter() - started

            # Small republish: only the query table shifts, so only the
            # query chunks should cross the wire on the delta fetch.
            store.publish(queries + 0.25, services)
            started = time.perf_counter()
            delta = SnapshotFetcher(server.address, dst).fetch()
            delta_fetch_s = time.perf_counter() - started

        # Hydrate parity: the replica must score exactly like the source.
        probe = queries[: params["num_probe"]].astype(np.float32)
        exact_ids, _ = ExactIndex().build(
            store.snapshot().services).search(probe, params["top_k"])
        source_recall = _int8_recall(store, probe, exact_ids, params["top_k"])
        hydrated = VersionedEmbeddingStore.restore(str(dst))
        hydrated_recall = _int8_recall(hydrated, probe, exact_ids,
                                       params["top_k"])

        rows = [
            {"phase": "cold_fetch", "seconds": cold_fetch_s,
             "mbytes": cold.bytes_fetched / 2 ** 20,
             "chunks": cold.chunks_fetched},
            {"phase": "refetch", "seconds": refetch_s,
             "mbytes": refetch.bytes_fetched / 2 ** 20,
             "chunks": refetch.chunks_fetched},
            {"phase": "delta_fetch", "seconds": delta_fetch_s,
             "mbytes": delta.bytes_fetched / 2 ** 20,
             "chunks": delta.chunks_fetched},
        ]
        gates = {
            "cold_bytes": cold.bytes_fetched,
            "refetch_chunks": refetch.chunks_fetched,
            "refetch_bytes": refetch.bytes_fetched,
            "delta_bytes": delta.bytes_fetched,
            "delta_over_cold_bytes": delta.bytes_fetched / cold.bytes_fetched,
            "hydrated_version": hydrated.version,
            "source_version": store.version,
            "recall_source": source_recall,
            "recall_hydrated": hydrated_recall,
        }
        return rows, gates


def check_gates(gates):
    require(gates["refetch_chunks"] == 0 and gates["refetch_bytes"] == 0,
            f"an already-hydrated host re-transferred "
            f"{gates['refetch_chunks']} chunks "
            f"({gates['refetch_bytes']} bytes)")
    require(gates["delta_over_cold_bytes"] < DELTA_BYTES_CEILING,
            f"delta fetch moved {gates['delta_over_cold_bytes']:.2%} of the "
            f"cold-fetch bytes, ceiling is {DELTA_BYTES_CEILING:.0%}")
    require(gates["hydrated_version"] == gates["source_version"],
            f"hydrated host serves v{gates['hydrated_version']}, source is "
            f"at v{gates['source_version']}")
    require(gates["recall_hydrated"] == gates["recall_source"],
            f"hydrated recall {gates['recall_hydrated']:.4f} != source "
            f"recall {gates['recall_source']:.4f}")


def build_payload(params, rows, gates, seed, smoke):
    return {
        "workload": dict(params, quantization=list(QUANTIZATION),
                         num_shards=NUM_SHARDS),
        "seed": seed,
        "smoke": smoke,
        "results": rows,
        "gates": gates,
        "delta_over_cold_bytes": gates["delta_over_cold_bytes"],
    }


def test_snapshot_replication(benchmark):
    rows, gates = benchmark.pedantic(run_replication_bench, rounds=1,
                                     iterations=1)
    print("\n" + format_float_table(
        rows, title=f"Snapshot replication: {FULL['num_services']} services, "
                    f"dim {FULL['dim']}, int8+pq, delta/cold bytes "
                    f"{gates['delta_over_cold_bytes']:.2%}"
    ))
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = build_payload(FULL, rows, gates, seed=0, smoke=False)
    (RESULTS_DIR / "snapshot_replication.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert gates["refetch_chunks"] == 0
    assert gates["delta_over_cold_bytes"] < DELTA_BYTES_CEILING
    assert gates["recall_hydrated"] == gates["recall_source"]


def main(argv=None):
    args = parse_bench_args("snapshot_replication", __doc__, argv)
    params = SMOKE if args.smoke else FULL
    rows, gates = run_replication_bench(params, seed=args.seed)
    label = "smoke" if args.smoke else "full"
    print(format_float_table(
        rows, title=f"Snapshot replication ({label}): "
                    f"{params['num_services']} services, dim {params['dim']}, "
                    f"int8+pq, delta/cold bytes "
                    f"{gates['delta_over_cold_bytes']:.2%}"
    ))
    print(f"gates: {json.dumps(gates, indent=2)}")
    write_json(args.out, build_payload(params, rows, gates,
                                       seed=args.seed, smoke=args.smoke))
    print(f"wrote {args.out}")
    check_gates(gates)
    print("bench gates passed")


if __name__ == "__main__":
    main()
