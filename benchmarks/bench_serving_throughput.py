"""Benchmark: serving gateway throughput under a Zipf query load.

The paper's deployment argument (Sec. V-F.1) is that exact scoring is too
slow online, so retrieval must become a (maximum-inner-product) index
lookup.  This bench quantifies that trade-off on our own gateway: the same
Zipf-distributed request stream is pushed through the exact scan, the IVF
coarse-quantizer index and the hyperplane-LSH index at a 10k+ service
catalogue, reporting QPS, p50/p99 latency and recall@10 against the exact
scan.  A fourth run re-enables the LRU+TTL result cache on the IVF gateway
to show what request skew is worth.

Expected shape: IVF beats the exact scan on QPS while holding
recall@10 >= 0.9; caching multiplies throughput again on a Zipf load.
Results are printed as a table and persisted as JSON to
``benchmarks/results/serving_throughput.json``.

Runnable standalone with the uniform bench flags::

    python -m benchmarks.bench_serving_throughput [--smoke] [--seed N] [--out P]

``--smoke`` is the CI perf gate: a reduced catalogue, the same recall
floors (exact == 1.0, IVF >= 0.95), no wall-clock ordering asserts (CI
runners are noisy neighbours by construction).
"""

import json

from benchmarks.bench_args import RESULTS_DIR, parse_bench_args, require, write_json
from benchmarks.serving_load import drive, make_workload
from repro.eval.reporting import format_float_table
from repro.eval.serving_metrics import load_test_rows, summarize_gateway
from repro.serving.gateway import ServingGateway, VersionedEmbeddingStore

#: Full scale: the tracked results/serving_throughput.json workload.
FULL = dict(num_queries=2_000, num_services=12_000, dim=48,
            num_requests=4_096, batch_size=64, top_k=10)
#: Smoke scale: small enough for a per-PR CI gate, large enough that the
#: ANN recall floors are meaningful.
SMOKE = dict(num_queries=500, num_services=4_000, dim=48,
             num_requests=1_024, batch_size=64, top_k=10)

MODES = {
    "exact": dict(index="exact", index_params=None, cache_capacity=0),
    "ivf": dict(index="ivf", index_params=None, cache_capacity=0),
    "lsh": dict(index="lsh", index_params=dict(num_tables=12, num_bits=9),
                cache_capacity=0),
    "ivf+cache": dict(index="ivf", index_params=None, cache_capacity=4_096),
}


def run_load_test(params=None, seed=0):
    params = params or FULL
    queries, services, stream = make_workload(params, seed)
    batch_size, top_k = params["batch_size"], params["top_k"]
    summaries = []
    for mode, config in MODES.items():
        store = VersionedEmbeddingStore(queries, services, num_shards=4)
        gateway = ServingGateway(
            store, index=config["index"], index_params=config["index_params"],
            top_k=top_k, max_batch_size=batch_size,
            cache_capacity=config["cache_capacity"],
        )
        elapsed = drive(gateway, stream, batch_size)
        gateway.recall_probe(k=top_k,
                             num_queries=min(512, params["num_queries"]),
                             seed=seed + 2)
        summaries.append(summarize_gateway(mode, gateway, elapsed_s=elapsed))
    return summaries


def build_payload(params, rows, by_mode, seed, smoke):
    return {
        "workload": dict(params, distribution="zipf(1.1)"),
        "seed": seed,
        "smoke": smoke,
        "results": rows,
        "qps_ratio_ivf_vs_exact": by_mode["ivf"].qps / by_mode["exact"].qps,
    }


def test_serving_throughput(benchmark):
    summaries = benchmark.pedantic(run_load_test, rounds=1, iterations=1)
    by_mode = {summary.mode: summary for summary in summaries}
    if (by_mode["ivf"].qps <= by_mode["exact"].qps
            or by_mode["ivf+cache"].qps <= by_mode["ivf"].qps):
        # Wall-clock orderings can lose to a noisy neighbour; one retry
        # separates a loaded machine from a real regression.
        summaries = run_load_test()
        by_mode = {summary.mode: summary for summary in summaries}
    rows = load_test_rows(summaries)
    text = format_float_table(
        rows, title=f"Gateway load test: {FULL['num_requests']} Zipf requests, "
                    f"{FULL['num_services']} services, dim {FULL['dim']}, "
                    f"K={FULL['top_k']}"
    )
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = build_payload(FULL, rows, by_mode, seed=0, smoke=False)
    (RESULTS_DIR / "serving_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # The paper's latency argument, reproduced: the ANN index outruns the
    # exact scan at 10k+ services without giving up meaningful recall.
    assert by_mode["ivf"].qps > by_mode["exact"].qps
    assert by_mode["ivf"].recall_at_k >= 0.9
    assert by_mode["exact"].recall_at_k == 1.0
    assert by_mode["lsh"].recall_at_k >= 0.8
    # Request skew makes the result cache pay for itself.
    assert by_mode["ivf+cache"].cache_hit_rate > 0.2
    assert by_mode["ivf+cache"].qps > by_mode["ivf"].qps


def main(argv=None):
    args = parse_bench_args("serving_throughput", __doc__, argv)
    params = SMOKE if args.smoke else FULL
    summaries = run_load_test(params, seed=args.seed)
    by_mode = {summary.mode: summary for summary in summaries}
    rows = load_test_rows(summaries)
    label = "smoke" if args.smoke else "full"
    print(format_float_table(
        rows, title=f"Gateway load test ({label}): "
                    f"{params['num_requests']} Zipf requests, "
                    f"{params['num_services']} services, K={params['top_k']}"
    ))
    write_json(args.out, build_payload(params, rows, by_mode,
                                       seed=args.seed, smoke=args.smoke))
    print(f"wrote {args.out}")

    # Recall floors hold at either scale; wall-clock orderings are only
    # asserted at full scale on a quiet machine (the pytest path).
    require(by_mode["exact"].recall_at_k == 1.0, "exact recall must be 1.0")
    require(by_mode["ivf"].recall_at_k >= 0.95,
            f"IVF recall@{params['top_k']} {by_mode['ivf'].recall_at_k:.3f} < 0.95")
    require(by_mode["lsh"].recall_at_k >= 0.8,
            f"LSH recall@{params['top_k']} {by_mode['lsh'].recall_at_k:.3f} < 0.8")
    require(by_mode["ivf+cache"].cache_hit_rate > 0.2,
            "Zipf load must produce cache hits")
    print("bench gates passed")


if __name__ == "__main__":
    main()
