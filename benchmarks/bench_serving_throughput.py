"""Benchmark: serving gateway throughput under a Zipf query load.

The paper's deployment argument (Sec. V-F.1) is that exact scoring is too
slow online, so retrieval must become a (maximum-inner-product) index
lookup.  This bench quantifies that trade-off on our own gateway: the same
Zipf-distributed request stream is pushed through the exact scan, the IVF
coarse-quantizer index and the hyperplane-LSH index at a 10k+ service
catalogue, reporting QPS, p50/p99 latency and recall@10 against the exact
scan.  A fourth run re-enables the LRU+TTL result cache on the IVF gateway
to show what request skew is worth.

Expected shape: IVF beats the exact scan on QPS while holding
recall@10 >= 0.9; caching multiplies throughput again on a Zipf load.
Results are printed as a table and persisted as JSON to
``benchmarks/results/serving_throughput.json``.
"""

import json
import time

from benchmarks.conftest import RESULTS_DIR
from repro.eval.reporting import format_float_table
from repro.eval.serving_metrics import load_test_rows, summarize_gateway
from repro.serving.gateway import (
    ServingGateway,
    VersionedEmbeddingStore,
    clustered_embeddings,
    zipf_query_ids,
)

NUM_QUERIES = 2_000
NUM_SERVICES = 12_000
DIM = 48
NUM_REQUESTS = 4_096
BATCH_SIZE = 64
TOP_K = 10

MODES = {
    "exact": dict(index="exact", index_params=None, cache_capacity=0),
    "ivf": dict(index="ivf", index_params=None, cache_capacity=0),
    "lsh": dict(index="lsh", index_params=dict(num_tables=12, num_bits=9),
                cache_capacity=0),
    "ivf+cache": dict(index="ivf", index_params=None, cache_capacity=4_096),
}


def run_load_test():
    queries, services = clustered_embeddings(
        NUM_QUERIES, NUM_SERVICES, DIM, num_clusters=16, spread=0.2, seed=0
    )
    stream = zipf_query_ids(NUM_QUERIES, NUM_REQUESTS, exponent=1.1, seed=1)
    summaries = []
    for mode, config in MODES.items():
        store = VersionedEmbeddingStore(queries, services, num_shards=4)
        gateway = ServingGateway(
            store, index=config["index"], index_params=config["index_params"],
            top_k=TOP_K, max_batch_size=BATCH_SIZE,
            cache_capacity=config["cache_capacity"],
        )
        started = time.perf_counter()
        for offset in range(0, len(stream), BATCH_SIZE):
            handles = [gateway.submit(int(query_id)) for query_id in
                       stream[offset:offset + BATCH_SIZE]]
            gateway.flush()
            for handle in handles:
                handle.result(0)
        elapsed = time.perf_counter() - started
        gateway.recall_probe(k=TOP_K, num_queries=512, seed=2)
        summaries.append(summarize_gateway(mode, gateway, elapsed_s=elapsed))
    return summaries


def test_serving_throughput(benchmark):
    summaries = benchmark.pedantic(run_load_test, rounds=1, iterations=1)
    by_mode = {summary.mode: summary for summary in summaries}
    if (by_mode["ivf"].qps <= by_mode["exact"].qps
            or by_mode["ivf+cache"].qps <= by_mode["ivf"].qps):
        # Wall-clock orderings can lose to a noisy neighbour; one retry
        # separates a loaded machine from a real regression.
        summaries = run_load_test()
        by_mode = {summary.mode: summary for summary in summaries}
    rows = load_test_rows(summaries)
    text = format_float_table(
        rows, title=f"Gateway load test: {NUM_REQUESTS} Zipf requests, "
                    f"{NUM_SERVICES} services, dim {DIM}, K={TOP_K}"
    )
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "workload": {
            "num_queries": NUM_QUERIES,
            "num_services": NUM_SERVICES,
            "dim": DIM,
            "num_requests": NUM_REQUESTS,
            "batch_size": BATCH_SIZE,
            "top_k": TOP_K,
            "distribution": "zipf(1.1)",
        },
        "results": rows,
        "qps_ratio_ivf_vs_exact": by_mode["ivf"].qps / by_mode["exact"].qps,
    }
    (RESULTS_DIR / "serving_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # The paper's latency argument, reproduced: the ANN index outruns the
    # exact scan at 10k+ services without giving up meaningful recall.
    assert by_mode["ivf"].qps > by_mode["exact"].qps
    assert by_mode["ivf"].recall_at_k >= 0.9
    assert by_mode["exact"].recall_at_k == 1.0
    assert by_mode["lsh"].recall_at_k >= 0.8
    # Request skew makes the result cache pay for itself.
    assert by_mode["ivf+cache"].cache_hit_rate > 0.2
    assert by_mode["ivf+cache"].qps > by_mode["ivf"].qps
