"""Benchmark: regenerate Table III (AUC of all models on all datasets).

Paper shapes to reproduce (not absolute numbers):

* graph models (LightGCN / KGAT / SGL / SimGCL / GARCIA) beat Wide&Deep,
* GARCIA has the best overall AUC on most datasets,
* GARCIA's largest margins over the baselines appear on the tail slice.
"""

import numpy as np

from benchmarks.conftest import report_result
from repro.experiments import table3_auc


def test_table3_auc_all_models(benchmark, bench_settings):
    result = benchmark.pedantic(
        lambda: table3_auc.run(bench_settings), rounds=1, iterations=1
    )
    report_result(result)
    model_rows = [row for row in result.rows if "vs best" not in str(row["model"])]
    assert len(model_rows) == 6 * 6  # six datasets × six models
    assert all(np.isfinite(row["overall_auc"]) for row in model_rows)

    # GNN models beat the non-graph Wide&Deep on overall AUC for a majority
    # of datasets (the paper's first key observation).
    datasets = {row["dataset"] for row in model_rows}
    gnn_wins = 0
    for dataset in datasets:
        rows = {row["model"]: row for row in model_rows if row["dataset"] == dataset}
        best_gnn = max(rows[m]["overall_auc"] for m in ("LightGCN", "KGAT", "GARCIA"))
        if best_gnn > rows["Wide&Deep"]["overall_auc"]:
            gnn_wins += 1
    assert gnn_wins >= len(datasets) // 2
