"""Benchmark: the replicated gateway fleet under scale-out and chaos.

The ROADMAP's replication item: one gateway process is both the throughput
ceiling and a single point of failure.  The fleet tier
(:mod:`repro.serving.fleet`) puts a health-aware rendezvous router in front
of N gateway replicas; this bench measures what that buys and proves what
it promises, in four phases over the shared Zipf workload:

* **scaling** — closed-loop aggregate QPS through 1, 2 and 4 replicas
  (distinct sessions, so rendezvous spreads the stream).  Replicas score
  in released-GIL numpy on thread executors, so the ratio tracks physical
  cores: the payload records ``cpu_count`` and the >= 1.3x two-replica
  gate applies only where a second core exists to pay for it.
* **degraded** — open-loop Poisson traffic with one replica slow-rolled
  4x: the router's health probes must eject or route around it, keeping
  p99 finite and shed bounded while a third of the fleet is limping.
* **chaos kill** — a flash-crowd storm with a seeded mid-storm ``kill``
  of one replica.  Gates: the request ledger conserves (every admitted
  request is answered or explicitly shed — zero lost), the dead replica
  ends the storm ejected, and fleet telemetry counts each answered
  request exactly once (no double counting across failover retries).
* **chaos stall** — the same storm with a mid-storm pipeline freeze
  instead of a death: deadline shedding must keep p99 finite.

Results are persisted to ``benchmarks/results/fleet_serving.json``.

Runnable standalone with the uniform bench flags::

    python -m benchmarks.bench_fleet_serving [--smoke] [--seed N] [--out P]

``--smoke`` is the CI gate: reduced catalogue, replica counts (1, 2), and
the hard gates above at pull-request latency.
"""

from __future__ import annotations

import asyncio
import json
import math
import os

from benchmarks.bench_args import RESULTS_DIR, parse_bench_args, require, write_json
from benchmarks.serving_load import (
    drive_concurrent,
    drive_flash_crowd,
    drive_open_loop,
    make_workload,
)
from repro.eval.reporting import format_float_table
from repro.serving.fleet import ChaosController, ChaosEvent, FleetRouter, HealthPolicy
from repro.serving.gateway import ServingGateway, VersionedEmbeddingStore

#: Full scale: the tracked results/fleet_serving.json workload.
FULL = dict(
    num_queries=2_000,
    num_services=12_000,
    dim=48,
    num_requests=4_096,
    storm_requests=2_048,
    batch_size=32,
    top_k=10,
    concurrency=128,
    replica_counts=(1, 2, 4),
    fleet_size=3,
    base_qps=400.0,
    spike_factor=10.0,
    deadline_s=0.25,
    slow_factor=4.0,
    stall_s=0.3,
)
#: Smoke scale: small enough for a per-PR CI gate, large enough that the
#: storms genuinely overload and the scaling ratio is meaningful.
SMOKE = dict(
    num_queries=500,
    num_services=3_000,
    dim=32,
    num_requests=1_024,
    storm_requests=512,
    batch_size=32,
    top_k=10,
    concurrency=64,
    replica_counts=(1, 2),
    fleet_size=3,
    base_qps=300.0,
    spike_factor=8.0,
    deadline_s=0.25,
    slow_factor=4.0,
    stall_s=0.2,
)

#: Two replicas must pay for themselves where a second core exists.
SCALING_FLOOR = 1.3


def make_fleet(queries, services, num_replicas, params, policy=None,
               **overrides) -> FleetRouter:
    """N gateway replicas over one shared store behind a fleet router."""
    store = VersionedEmbeddingStore(queries, services)
    kwargs = dict(
        index="exact",
        top_k=params["top_k"],
        max_batch_size=params["batch_size"],
        cache_capacity=0,
        cpu_executor="thread",
        loop_confined=True,
    )
    kwargs.update(overrides)
    gateways = {
        f"replica-{i}": ServingGateway(store, **kwargs)
        for i in range(num_replicas)
    }
    return FleetRouter(gateways, policy=policy)


def run_scaling(queries, services, stream, params) -> list:
    """Closed-loop aggregate QPS per replica count (distinct sessions)."""
    rows = []
    # Closed-loop saturation keeps every queue at its admission bound by
    # design; budget the health score above it so uniform saturation is
    # not mistaken for a degraded replica.
    policy = HealthPolicy(queue_budget=float(4 * params["concurrency"]))
    for num_replicas in params["replica_counts"]:
        fleet = make_fleet(
            queries, services, num_replicas, params, policy=policy,
            max_queue=2 * params["concurrency"], overload="wait",
        )
        try:
            report = asyncio.run(drive_concurrent(
                fleet, stream, params["concurrency"], deadline_s=10.0,
                session_ids=range(len(stream)),
            ))
        finally:
            fleet.close()
        rows.append({
            "mode": f"fleet_{num_replicas}",
            "replicas": num_replicas,
            **report,
        })
    return rows


def run_degraded(queries, services, stream, params, seed) -> dict:
    """Open-loop Poisson traffic with one replica slow-rolled 4x."""
    fleet = make_fleet(queries, services, params["fleet_size"], params,
                       max_queue=256, overload="reject")
    try:
        fleet.replica("replica-0").slow(params["slow_factor"])
        report = asyncio.run(drive_open_loop(
            fleet, stream, params["base_qps"],
            deadline_s=params["deadline_s"], seed=seed + 3,
            session_ids=range(len(stream)),
        ))
        summary = fleet.summary()
    finally:
        fleet.close()
    return {
        "mode": "degraded_slow",
        "replicas": params["fleet_size"],
        **report,
        "ejections": summary["ejections"],
        "fallback_routes": summary["fallback_routes"],
    }


def run_storm(queries, services, stream, params, seed, action) -> dict:
    """Flash-crowd storm with a seeded mid-storm fault (kill or stall)."""
    policy = HealthPolicy(probe_interval_s=0.02)
    fleet = make_fleet(queries, services, params["fleet_size"], params,
                       policy=policy, max_queue=256, overload="reject")
    try:
        storm_s = len(stream) / params["base_qps"]
        if action == "kill":
            ChaosController.seeded_storm(fleet, seed=seed + 7, storm_s=storm_s)
        else:
            ChaosController(fleet, [
                ChaosEvent(at_s=0.4 * storm_s, action="stall",
                           replica="replica-1",
                           duration_s=params["stall_s"]),
            ])
        fleet.chaos.arm()
        report = asyncio.run(drive_flash_crowd(
            fleet, stream, params["base_qps"],
            spike_factor=params["spike_factor"],
            deadline_s=params["deadline_s"], seed=seed + 5,
            session_ids=range(len(stream)),
        ))
        summary = fleet.summary()
        replica_rows = fleet.replica_rows()
        chaos_log = fleet.chaos.log()
    finally:
        fleet.close()
    accounted = (report["completed"] + report["rejected_overload"]
                 + report["deadline_missed"])
    return {
        "mode": f"chaos_{action}",
        "replicas": params["fleet_size"],
        **report,
        "accounted": accounted,
        "lost": report["requests"] - accounted,
        "fleet_requests": summary["requests"],
        "failovers": summary["failovers"],
        "ejections": summary["ejections"],
        "dead_ejected": float(any(
            row["state"] == "ejected" and row["reason"] == "dead"
            for row in replica_rows
        )),
        "chaos_events": chaos_log,
    }


def run_bench(params, seed: int) -> dict:
    queries, services, stream = make_workload(params, seed)
    storm_stream = stream[: params["storm_requests"]]
    scaling_rows = run_scaling(queries, services, stream, params)
    qps = {row["replicas"]: row["sustained_qps"] for row in scaling_rows}
    base = qps[params["replica_counts"][0]]
    rows = list(scaling_rows)
    rows.append(run_degraded(queries, services, storm_stream, params, seed))
    rows.append(run_storm(queries, services, storm_stream, params, seed, "kill"))
    rows.append(run_storm(queries, services, storm_stream, params, seed, "stall"))
    return {
        "workload": dict(params, distribution="zipf(1.1)"),
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "results": rows,
        "qps_scaling_vs_single": {
            str(count): qps[count] / base for count in params["replica_counts"]
        },
    }


def _table_rows(payload: dict) -> list:
    keep = ("mode", "replicas", "requests", "completed", "rejected_overload",
            "deadline_missed", "sustained_qps", "p50_ms", "p99_ms")
    return [
        {key: row[key] for key in keep if key in row}
        for row in payload["results"]
    ]


def check_gates(payload: dict, params: dict, check) -> None:
    """The fleet contract, smoke and full alike (``check`` = require/assert)."""
    by_mode = {row["mode"]: row for row in payload["results"]}
    kill, stall = by_mode["chaos_kill"], by_mode["chaos_stall"]
    degraded = by_mode["degraded_slow"]
    check(kill["lost"] == 0,
          f"chaos kill lost {kill['lost']} requests (must be 0)")
    check(kill["fleet_requests"] == kill["completed"],
          "fleet telemetry must count each answered request exactly once")
    check(kill["dead_ejected"] == 1.0,
          "the killed replica must end the storm ejected as dead")
    check(stall["lost"] == 0,
          f"chaos stall lost {stall['lost']} requests (must be 0)")
    check(math.isfinite(stall["p99_ms"]) and stall["completed"] > 0,
          "p99 must stay finite with one replica stalled mid-storm")
    check(math.isfinite(degraded["p99_ms"]) and degraded["completed"] > 0,
          "p99 must stay finite with one replica slow-rolled")
    counts = params["replica_counts"]
    if (os.cpu_count() or 1) >= 2:
        ratio = payload["qps_scaling_vs_single"][str(counts[1])]
        check(ratio >= SCALING_FLOOR,
              f"{counts[1]}-replica QPS ratio {ratio:.3f} < {SCALING_FLOOR} "
              f"on {os.cpu_count()} cores")


def test_fleet_serving(benchmark):
    payload = benchmark.pedantic(run_bench, args=(FULL, 0), rounds=1,
                                 iterations=1)
    if (os.cpu_count() or 1) >= 2:
        ratio = payload["qps_scaling_vs_single"]["2"]
        if ratio < SCALING_FLOOR:
            # One retry separates a noisy neighbour from a regression.
            payload = run_bench(FULL, 0)
    print("\n" + format_float_table(
        _table_rows(payload),
        title=f"Fleet serving: {FULL['num_requests']} Zipf requests, "
              f"{FULL['num_services']} services, "
              f"replicas {FULL['replica_counts']}, K={FULL['top_k']}",
    ))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fleet_serving.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    def gate(condition, message):
        assert condition, message

    check_gates(payload, FULL, gate)


def main(argv=None):
    args = parse_bench_args("fleet_serving", __doc__, argv)
    params = SMOKE if args.smoke else FULL
    payload = run_bench(params, args.seed)
    if (os.cpu_count() or 1) >= 2:
        ratio = payload["qps_scaling_vs_single"][str(params["replica_counts"][1])]
        if ratio < SCALING_FLOOR:
            # One retry before failing the gate: CI neighbours are noisy.
            payload = run_bench(params, args.seed)
    label = "smoke" if args.smoke else "full"
    print(format_float_table(
        _table_rows(payload),
        title=f"Fleet serving ({label}): {params['num_requests']} Zipf "
              f"requests, {params['num_services']} services, "
              f"replicas {params['replica_counts']}, K={params['top_k']}",
    ))
    write_json(args.out, payload)
    print(f"wrote {args.out}")
    check_gates(payload, params, require)
    print("bench gates passed")


if __name__ == "__main__":
    main()
