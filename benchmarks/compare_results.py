"""CI bench-compare: diff each smoke payload against its tracked full result.

The ``bench-smoke`` job writes one ``<name>_smoke.json`` per bench next to
the tracked full-scale ``benchmarks/results/<name>.json``.  The smoke and
full payloads are built by the same ``build_payload`` function in each
bench, so their key shapes must agree — a bench refactor that renames or
drops a gate key would otherwise silently stop gating until the next
full-scale run noticed.  This script fails the job when:

* a smoke payload has no tracked full result (new bench without a
  committed baseline);
* a key present in the tracked payload is missing from the smoke payload
  (recursing through the ``gates`` dict, where the hard CI floors live);
* any numeric value anywhere in the smoke payload is non-finite (NaN or
  infinity — a division by a zero elapsed time or an empty window).  A
  deliberate not-applicable marker is tolerated: a NaN whose *key name*
  is also non-finite somewhere in the tracked baseline (e.g. the
  ``recall_at_k`` of a row that has no recall reference) — the list
  index may shift between smoke and full, so the match is by leaf name.

It always prints a per-bench markdown scorecard (shared scalar metrics,
smoke vs tracked full value) and appends it to ``$GITHUB_STEP_SUMMARY``
when that file is available, so the job summary shows how the PR's smoke
numbers sit against the tracked baselines.  Values are *reported*, not
thresholded — scale differs between smoke and full runs by design; the
hard floors live in each bench's own ``--smoke`` gates.

Runnable locally::

    python -m benchmarks.compare_results [--results-dir benchmarks/results]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import sys
from typing import Iterator, Optional, Sequence, Tuple

from benchmarks.bench_args import RESULTS_DIR

#: Keys whose sub-keys must match exactly between smoke and tracked
#: payloads — these are the dicts the CI floors read.
GATE_DICT_KEYS = ("gates",)


def numeric_leaves(value, path="") -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted_path, value)`` for every number in a JSON payload."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        yield path, float(value)
    elif isinstance(value, dict):
        for key, item in value.items():
            yield from numeric_leaves(item, f"{path}.{key}" if path else key)
    elif isinstance(value, list):
        for index, item in enumerate(value):
            yield from numeric_leaves(item, f"{path}[{index}]")


def leaf_name(path: str) -> str:
    """``results[3].concurrency`` -> ``concurrency`` (index-insensitive)."""
    return path.rsplit(".", 1)[-1].split("[", 1)[0]


def missing_keys(tracked: dict, smoke: dict) -> list:
    """Tracked keys the smoke payload dropped (one level + the gate dicts)."""
    missing = [key for key in tracked if key not in smoke]
    for gate_key in GATE_DICT_KEYS:
        if isinstance(tracked.get(gate_key), dict) and isinstance(
                smoke.get(gate_key), dict):
            missing.extend(
                f"{gate_key}.{key}" for key in tracked[gate_key]
                if key not in smoke[gate_key])
    return missing


def shared_scalars(tracked: dict, smoke: dict) -> list:
    """Top-level (and gate-dict) scalar metrics present in both payloads."""
    rows = []
    for source_key in ("",) + GATE_DICT_KEYS:
        tracked_src = tracked.get(source_key) if source_key else tracked
        smoke_src = smoke.get(source_key) if source_key else smoke
        if not (isinstance(tracked_src, dict) and isinstance(smoke_src, dict)):
            continue
        for key in tracked_src:
            t_val, s_val = tracked_src[key], smoke_src.get(key)
            if isinstance(t_val, bool) or not isinstance(t_val, (int, float)):
                continue
            if isinstance(s_val, bool) or not isinstance(s_val, (int, float)):
                continue
            label = f"{source_key}.{key}" if source_key else key
            if label in ("seed", "smoke"):
                continue
            rows.append((label, float(s_val), float(t_val)))
    return rows


def compare_one(smoke_path: pathlib.Path, results_dir: pathlib.Path):
    """Returns ``(bench_name, errors, scalar_rows)`` for one smoke payload."""
    name = smoke_path.stem.removesuffix("_smoke")
    tracked_path = results_dir / f"{name}.json"
    if not tracked_path.exists():
        return name, [f"no tracked full result at {tracked_path}"], []
    smoke = json.loads(smoke_path.read_text())
    tracked = json.loads(tracked_path.read_text())
    errors = [f"gate key missing from smoke payload: {key}"
              for key in missing_keys(tracked, smoke)]
    # NaN markers the tracked baseline itself carries are not-applicable
    # slots, not regressions; anything else non-finite fails.
    allowed_nan_names = {
        leaf_name(path) for path, value in numeric_leaves(tracked)
        if not math.isfinite(value)}
    errors.extend(
        f"non-finite metric in smoke payload: {path} = {value}"
        for path, value in numeric_leaves(smoke)
        if not math.isfinite(value) and leaf_name(path) not in allowed_nan_names)
    return name, errors, shared_scalars(tracked, smoke)


def scorecard(results) -> str:
    """Render the per-bench markdown scorecard."""
    lines = ["## Bench smoke vs tracked full results", ""]
    for name, errors, rows in results:
        status = "FAIL" if errors else "OK"
        lines.append(f"### `{name}` — {status}")
        lines.append("")
        for error in errors:
            lines.append(f"* **{error}**")
        if rows:
            lines.append("| metric | smoke | tracked full |")
            lines.append("|---|---:|---:|")
            for label, smoke_val, full_val in rows:
                lines.append(f"| `{label}` | {smoke_val:.4g} | {full_val:.4g} |")
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results-dir", type=pathlib.Path,
                        default=RESULTS_DIR,
                        help="directory holding both *_smoke.json and the "
                             "tracked full results (default: %(default)s)")
    args = parser.parse_args(argv)

    smoke_paths = sorted(args.results_dir.glob("*_smoke.json"))
    if not smoke_paths:
        print(f"ERROR: no *_smoke.json files under {args.results_dir}",
              file=sys.stderr)
        return 2

    results = [compare_one(path, args.results_dir) for path in smoke_paths]
    card = scorecard(results)
    print(card)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(card + "\n")

    failures = [(name, errors) for name, errors, _ in results if errors]
    if failures:
        for name, errors in failures:
            for error in errors:
                print(f"COMPARE FAILED [{name}]: {error}", file=sys.stderr)
        return 1
    print(f"compared {len(results)} benches against tracked results: all OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
