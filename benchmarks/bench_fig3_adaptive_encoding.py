"""Benchmark: regenerate Fig. 3 (adaptive encoding ablation).

Paper shape to reproduce: GARCIA (dual head/tail encoders) is at least
comparable to GARCIA-Share everywhere and better on most windows.
"""

import numpy as np

from benchmarks.conftest import report_result
from repro.experiments import fig3_adaptive_encoding


def test_fig3_adaptive_encoding_ablation(benchmark, bench_settings):
    result = benchmark.pedantic(
        lambda: fig3_adaptive_encoding.run(bench_settings), rounds=1, iterations=1
    )
    report_result(result)
    assert len(result.rows) == 3 * 2  # three windows × two variants
    assert all(np.isfinite(row["overall_auc"]) for row in result.rows)
