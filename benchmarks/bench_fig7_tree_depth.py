"""Benchmark: regenerate Fig. 7 (impact of the intention-tree depth H).

Paper shape to reproduce: incorporating the intention tree beats the
no-intention reference, with generally better results at larger H.
"""

import numpy as np

from benchmarks.conftest import report_result
from repro.experiments import fig7_tree_depth


def test_fig7_intention_tree_depth(benchmark, bench_settings):
    result = benchmark.pedantic(
        lambda: fig7_tree_depth.run(bench_settings), rounds=1, iterations=1
    )
    report_result(result)
    assert result.rows[0]["H"] == "none"  # the reference line
    assert [row["H"] for row in result.rows[1:]] == [1, 2, 3, 4, 5]
    assert all(np.isfinite(row["overall_auc"]) for row in result.rows)
