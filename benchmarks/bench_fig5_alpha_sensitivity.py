"""Benchmark: regenerate Fig. 5 (sensitivity of the SECL weight alpha)."""

import numpy as np

from benchmarks.conftest import report_result
from repro.experiments import fig5_alpha


def test_fig5_alpha_sensitivity(benchmark, bench_settings):
    result = benchmark.pedantic(
        lambda: fig5_alpha.run(bench_settings), rounds=1, iterations=1
    )
    report_result(result)
    assert [row["alpha"] for row in result.rows] == [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
    assert all(np.isfinite(row["overall_auc"]) for row in result.rows)
    # Per-epoch step curves are recorded for every alpha value.
    assert any(key.endswith("/tail_auc") for key in result.series)
