"""Benchmark: regenerate Fig. 11 (case study: tail-query ranked lists).

Paper shape to reproduce: for representative long-tail queries GARCIA's top-5
list carries higher-quality services (MAU / authoritative rating) than the
deployed baseline's list.
"""

import numpy as np

from benchmarks.conftest import report_result
from repro.experiments import fig11_case_study


def test_fig11_case_study_rankings(benchmark, bench_settings):
    result = benchmark.pedantic(
        lambda: fig11_case_study.run(
            bench_settings, baseline_model="KGAT", num_case_queries=2, top_k=5
        ),
        rounds=1,
        iterations=1,
    )
    report_result(result)
    assert len(result.rows) == 2 * 2 * 5  # two queries × two systems × top-5
    garcia_quality = [value[0] for key, value in result.series.items() if key.endswith("GARCIA/mean_quality")]
    baseline_quality = [value[0] for key, value in result.series.items() if key.endswith("BASELINE/mean_quality")]
    assert len(garcia_quality) == 2 and len(baseline_quality) == 2
    assert all(np.isfinite(value) for value in garcia_quality + baseline_quality)
