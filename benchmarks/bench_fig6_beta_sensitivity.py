"""Benchmark: regenerate Fig. 6 (sensitivity of the IGCL weight beta)."""

import numpy as np

from benchmarks.conftest import report_result
from repro.experiments import fig6_beta


def test_fig6_beta_sensitivity(benchmark, bench_settings):
    result = benchmark.pedantic(
        lambda: fig6_beta.run(bench_settings), rounds=1, iterations=1
    )
    report_result(result)
    assert [row["beta"] for row in result.rows] == [0.0, 0.01, 0.02, 0.03, 0.04, 0.05]
    assert all(np.isfinite(row["tail_auc"]) for row in result.rows)
