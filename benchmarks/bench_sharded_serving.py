"""Benchmark: sharded scatter/gather serving vs the single-process gateway.

The ROADMAP's scale-out item: `VersionedEmbeddingStore` already lays the
catalogue out in contiguous shards, so the sharded tier
(:mod:`repro.serving.sharded`) runs one worker per shard and merges per-shard
top-K lists exactly.  This bench pushes the same Zipf stream through

* the single-process exact gateway (the PR-1 baseline),
* the sharded exact gateway on all three worker backends (``serial`` /
  ``thread`` / ``process``; the process backend hands tables off through
  shared memory), and
* the IVF-PQ index single-process vs sharded (the recall-at-scale check),

reporting QPS, latency, recall@10, the sharded-vs-single QPS ratio per
backend and the per-shard latency/QPS telemetry breakdown.  Scatter/gather
parity is asserted, not assumed: the sharded exact rankings must equal the
single-process rankings bit for bit.

Expected shape: per-shard scans are cache-resident where the monolithic scan
is not, so even in-process sharding beats the single gateway; the process
backend needs >= 2 physical CPUs to amortise its IPC (the payload records
``cpu_count`` so results are interpretable).  Results are persisted to
``benchmarks/results/sharded_serving.json``.

Runnable standalone with the uniform bench flags::

    python -m benchmarks.bench_sharded_serving [--smoke] [--seed N] [--out P]

``--smoke`` is the CI perf gate: reduced catalogue, in-process backends
only, exact-parity + recall floors, and a sharded-vs-single QPS ratio floor
of 0.9 (sharding must never cost meaningful single-core throughput).
"""

import json
import os

from benchmarks.bench_args import RESULTS_DIR, parse_bench_args, require, write_json
from benchmarks.serving_load import drive, make_workload
from repro.eval.reporting import format_float_table
from repro.eval.serving_metrics import load_test_rows, summarize_gateway
from repro.serving.gateway import ServingGateway, VersionedEmbeddingStore
from repro.serving.sharded import ShardedGateway

FULL = dict(num_queries=2_000, num_services=12_000, dim=48,
            num_requests=4_096, batch_size=64, top_k=10, num_shards=4)
SMOKE = dict(num_queries=500, num_services=4_000, dim=48,
             num_requests=1_024, batch_size=64, top_k=10, num_shards=4)

BACKENDS = ("serial", "thread", "process")
SMOKE_BACKENDS = ("serial", "thread")
PARITY_SAMPLE = 128


def run_load_test(params=None, seed=0, backends=BACKENDS):
    """One pass over every mode; returns (summaries, per-shard rows)."""
    params = params or FULL
    queries, services, stream = make_workload(params, seed)
    batch_size, top_k = params["batch_size"], params["top_k"]
    num_shards = params["num_shards"]
    parity_ids = list(range(min(PARITY_SAMPLE, params["num_queries"])))
    summaries = []
    shard_rows = {}

    single = ServingGateway(
        VersionedEmbeddingStore(queries, services, num_shards=1),
        index="exact", top_k=top_k, max_batch_size=batch_size, cache_capacity=0,
    )
    elapsed = drive(single, stream, batch_size)
    single.recall_probe(k=top_k, num_queries=min(512, params["num_queries"]),
                        seed=seed + 2)
    summaries.append(summarize_gateway("single_exact", single, elapsed_s=elapsed))
    single_ranking = single.rank_batch(parity_ids, top_k)

    for backend in backends:
        store = VersionedEmbeddingStore(queries, services, num_shards=num_shards)
        gateway = ShardedGateway(
            store, index="exact", workers=backend, top_k=top_k,
            max_batch_size=batch_size, cache_capacity=0,
        )
        elapsed = drive(gateway, stream, batch_size)
        gateway.recall_probe(k=top_k,
                             num_queries=min(512, params["num_queries"]),
                             seed=seed + 2)
        summary = summarize_gateway(f"sharded_{backend}", gateway,
                                    elapsed_s=elapsed)
        summary.extras["exact_parity"] = float(
            gateway.rank_batch(parity_ids, top_k) == single_ranking
        )
        summary.extras["num_shards"] = float(num_shards)
        summaries.append(summary)
        shard_rows[backend] = gateway.telemetry.shard_rows()
        gateway.close()

    # Quantized sharding: IVF-PQ per shard with the published int8 tables.
    quant_store = VersionedEmbeddingStore(
        queries, services, num_shards=num_shards, quantization=("int8", "pq"),
    )
    gateway = ShardedGateway(quant_store, index="ivfpq", workers="serial",
                             top_k=top_k, max_batch_size=batch_size,
                             cache_capacity=0)
    elapsed = drive(gateway, stream, batch_size)
    gateway.recall_probe(k=top_k, num_queries=min(512, params["num_queries"]),
                         seed=seed + 2)
    summary = summarize_gateway("sharded_ivfpq", gateway, elapsed_s=elapsed)
    summary.extras["num_shards"] = float(num_shards)
    summaries.append(summary)
    gateway.close()
    return summaries, shard_rows


def build_payload(params, rows, shard_rows, by_mode, seed, smoke, backends):
    single_qps = by_mode["single_exact"].qps
    ratios = {
        backend: by_mode[f"sharded_{backend}"].qps / single_qps
        for backend in backends
    }
    best = max(ratios, key=ratios.get)
    return {
        "workload": dict(params, distribution="zipf(1.1)"),
        "seed": seed,
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "results": rows,
        "per_shard": shard_rows,
        "qps_ratio_sharded_vs_single": ratios,
        "best_backend": best,
        "best_qps_ratio": ratios[best],
        "sharded_ivfpq_recall_at_k": by_mode["sharded_ivfpq"].recall_at_k,
    }


def test_sharded_serving(benchmark):
    summaries, shard_rows = benchmark.pedantic(run_load_test, rounds=1,
                                               iterations=1)
    by_mode = {summary.mode: summary for summary in summaries}
    best_ratio = max(
        by_mode[f"sharded_{backend}"].qps for backend in BACKENDS
    ) / by_mode["single_exact"].qps
    if best_ratio < 1.0:
        # Wall-clock orderings can lose to a noisy neighbour; one retry
        # separates a loaded machine from a real regression.
        summaries, shard_rows = run_load_test()
        by_mode = {summary.mode: summary for summary in summaries}
    rows = load_test_rows(summaries)
    print("\n" + format_float_table(
        rows, title=f"Sharded serving: {FULL['num_requests']} Zipf requests, "
                    f"{FULL['num_services']} services, "
                    f"{FULL['num_shards']} shards, K={FULL['top_k']}"
    ))
    print("\n" + format_float_table(
        shard_rows["serial"], title="Per-shard breakdown (serial backend)"
    ))
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = build_payload(FULL, rows, shard_rows, by_mode, seed=0,
                            smoke=False, backends=BACKENDS)
    (RESULTS_DIR / "sharded_serving.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Scatter/gather must preserve single-process results exactly ...
    for backend in BACKENDS:
        assert by_mode[f"sharded_{backend}"].extras["exact_parity"] == 1.0
        assert by_mode[f"sharded_{backend}"].recall_at_k == 1.0
    # ... and sharding must pay for itself: per-shard scans are
    # cache-resident where the 12k-row monolith is not.
    assert payload["best_qps_ratio"] >= 1.0
    # Balanced IVF-PQ cells hold the recall contract behind shard workers.
    assert by_mode["sharded_ivfpq"].recall_at_k >= 0.94


def main(argv=None):
    args = parse_bench_args("sharded_serving", __doc__, argv)
    params = SMOKE if args.smoke else FULL
    backends = SMOKE_BACKENDS if args.smoke else BACKENDS
    summaries, shard_rows = run_load_test(params, seed=args.seed,
                                          backends=backends)
    by_mode = {summary.mode: summary for summary in summaries}
    ratio_floor = 0.9
    best_ratio = max(
        by_mode[f"sharded_{backend}"].qps for backend in backends
    ) / by_mode["single_exact"].qps
    if best_ratio < ratio_floor:
        # One retry before failing the gate: CI neighbours are noisy.
        summaries, shard_rows = run_load_test(params, seed=args.seed,
                                              backends=backends)
        by_mode = {summary.mode: summary for summary in summaries}
    rows = load_test_rows(summaries)
    label = "smoke" if args.smoke else "full"
    print(format_float_table(
        rows, title=f"Sharded serving ({label}): "
                    f"{params['num_requests']} Zipf requests, "
                    f"{params['num_services']} services, "
                    f"{params['num_shards']} shards, K={params['top_k']}"
    ))
    print("\n" + format_float_table(
        shard_rows[backends[0]],
        title=f"Per-shard breakdown ({backends[0]} backend)"
    ))
    payload = build_payload(params, rows, shard_rows, by_mode, seed=args.seed,
                            smoke=args.smoke, backends=backends)
    write_json(args.out, payload)
    print(f"wrote {args.out}")

    for backend in backends:
        require(by_mode[f"sharded_{backend}"].extras["exact_parity"] == 1.0,
                f"sharded {backend} must match single-process top-K exactly")
        require(by_mode[f"sharded_{backend}"].recall_at_k == 1.0,
                f"sharded {backend} exact recall must be 1.0")
    require(payload["best_qps_ratio"] >= ratio_floor,
            f"sharded/single QPS ratio {payload['best_qps_ratio']:.3f} "
            f"< {ratio_floor}")
    require(by_mode["sharded_ivfpq"].recall_at_k >= 0.9,
            f"sharded IVF-PQ recall {by_mode['sharded_ivfpq'].recall_at_k:.3f}"
            " < 0.9")
    print("bench gates passed")


if __name__ == "__main__":
    main()
