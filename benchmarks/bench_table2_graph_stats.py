"""Benchmark: regenerate Table II (graph and intention-tree statistics).

Paper shape to reproduce: the tail view of the service-search graph contains
more nodes and edges than the head view (tail queries are the vast majority),
and the intention forest is small relative to the graph.
"""

from benchmarks.conftest import report_result
from repro.experiments import table2_graphs


def test_table2_graph_statistics(benchmark, bench_settings):
    result = benchmark.pedantic(
        lambda: table2_graphs.run(bench_settings), rounds=1, iterations=1
    )
    report_result(result)
    assert len(result.rows) == 6
    for row in result.rows:
        assert row["tail_nodes"] > row["head_nodes"]
        assert row["tail_edges"] > row["head_edges"]
        assert row["intention_nodes"] > 0
